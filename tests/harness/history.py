"""History recording and Direct Serialization Graph (DSG) checking.

The recorder captures, for every *committed* transaction, its snapshot
timestamp, its commit timestamp (``None`` for read-only / writeless
transactions) and the sets of entities it read from committed state and
wrote.  Because the engine is multi-versioned with totally ordered commit
timestamps, the version each read observed is fully determined by the
timestamps: the newest commit on that entity at or below the reader's
snapshot.  That is what lets the checker rebuild the classic DSG edges
(Adya; in the spirit of DB-nets-style execution semantics, where the claim
is checked against the recorded run, not against hand-picked assertions):

* ``wr`` — T1 installed the version T2 read,
* ``ww`` — T1's version immediately precedes T2's in the entity's version
  order (= commit order under this engine), and
* ``rw`` — T2 read the version that T1's write superseded (the
  antidependency edge; the only edge snapshot isolation lets point
  "backwards").

Guarantees asserted per isolation level:

* ``SERIALIZABLE`` — the DSG is acyclic (:meth:`History.assert_serializable`).
* ``SNAPSHOT`` — no cycle with fewer than two rw-antidependency edges
  (:meth:`History.assert_snapshot_isolation`); write skew remains legal.
  This is the checkable necessary condition of Fekete et al.'s theorem
  that every SI cycle carries two consecutive rw edges.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

#: Pseudo commit timestamp of the initial (pre-history) version of a key.
INITIAL_TS = 0

Key = Hashable
Edge = Tuple[int, int, str]  # (from txn index, to txn index, kind)


@dataclass
class RecordedTransaction:
    """One committed transaction, as the recorder saw it."""

    name: str
    start_ts: int
    commit_ts: Optional[float]
    reads: Set[Key] = field(default_factory=set)
    writes: Set[Key] = field(default_factory=set)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "start_ts": self.start_ts,
            "commit_ts": self.commit_ts,
            "reads": sorted(map(repr, self.reads)),
            "writes": sorted(map(repr, self.writes)),
        }


class History:
    """A thread-safe log of committed transactions plus the DSG checker."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.committed: List[RecordedTransaction] = []

    def record(self, txn: RecordedTransaction) -> None:
        """Append one committed transaction (call only after its commit)."""
        with self._lock:
            self.committed.append(txn)

    def __len__(self) -> int:
        with self._lock:
            return len(self.committed)

    # ------------------------------------------------------------------
    # DSG construction
    # ------------------------------------------------------------------

    def _version_orders(self) -> Dict[Key, List[Tuple[float, int]]]:
        """Per-key version order: ``[(commit_ts, writer index), ...]`` sorted."""
        orders: Dict[Key, List[Tuple[float, int]]] = {}
        for index, txn in enumerate(self.committed):
            if txn.commit_ts is None:
                continue
            for key in txn.writes:
                orders.setdefault(key, []).append((txn.commit_ts, index))
        for versions in orders.values():
            versions.sort()
        return orders

    def edges(self) -> List[Edge]:
        """Every wr/ww/rw edge of the recorded history's DSG."""
        from bisect import bisect_right

        orders = self._version_orders()
        timestamp_lists = {
            key: [commit_ts for commit_ts, _ in versions]
            for key, versions in orders.items()
        }
        result: List[Edge] = []
        seen: Set[Edge] = set()

        def add(src: int, dst: int, kind: str) -> None:
            if src == dst:
                return
            edge = (src, dst, kind)
            if edge not in seen:
                seen.add(edge)
                result.append(edge)

        for versions in orders.values():
            for (_, earlier), (_, later) in zip(versions, versions[1:]):
                add(earlier, later, "ww")
        for index, txn in enumerate(self.committed):
            for key in txn.reads:
                versions = orders.get(key)
                if not versions:
                    continue
                # Index of the first version newer than the snapshot: the
                # version read is the one just before it (INITIAL if none),
                # and that newer version is the rw successor.
                cut = bisect_right(timestamp_lists[key], txn.start_ts)
                if cut > 0:
                    add(versions[cut - 1][1], index, "wr")
                if cut < len(versions):
                    add(index, versions[cut][1], "rw")
        return result

    # ------------------------------------------------------------------
    # cycle checking
    # ------------------------------------------------------------------

    def find_cycle(
        self, *, kinds: Optional[Set[str]] = None
    ) -> Optional[List[Edge]]:
        """A cycle using only edges of ``kinds`` (all kinds by default)."""
        adjacency: Dict[int, List[Edge]] = {}
        for edge in self.edges():
            if kinds is not None and edge[2] not in kinds:
                continue
            adjacency.setdefault(edge[0], []).append(edge)
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[int, int] = {}
        path: List[Edge] = []
        for root in list(adjacency):
            if colour.get(root, WHITE) != WHITE:
                continue
            # Iterative DFS (histories can hold tens of thousands of
            # transactions; recursion would overflow): each stack frame is
            # (node, iterator over its out-edges).
            colour[root] = GREY
            stack = [(root, iter(adjacency.get(root, ())))]
            while stack:
                node, edge_iter = stack[-1]
                advanced = False
                for edge in edge_iter:
                    target = edge[1]
                    state = colour.get(target, WHITE)
                    if state == GREY:
                        start = next(
                            (i for i, e in enumerate(path) if e[0] == target),
                            len(path),
                        )
                        return path[start:] + [edge]
                    if state == WHITE:
                        colour[target] = GREY
                        path.append(edge)
                        stack.append((target, iter(adjacency.get(target, ()))))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
                    if path:
                        path.pop()
        return None

    def find_si_forbidden_cycle(self) -> Optional[List[Edge]]:
        """A cycle with fewer than two rw edges (impossible under real SI).

        Two checks cover it exactly: a cycle of only wr/ww edges (zero rw),
        and an rw edge whose target reaches its source through wr/ww edges
        alone (exactly one rw).  An O(edges) screen keeps the large stress
        histories cheap: in a healthy MVCC history every wr/ww edge is
        *time-monotone* — the source's commit timestamp is at or below the
        target's snapshot (wr by the read rule; ww because first-updater-
        wins forbids concurrent committers of one key) — so a wr/ww path
        from ``b`` back to ``a`` forces ``commit(b) <= start(a)``, which an
        rw edge ``a -> b`` contradicts.  Only when the recorded timestamps
        themselves break monotonicity (i.e. the engine misbehaved) does the
        per-edge search actually run.
        """
        all_edges = self.edges()

        def arrive(index: int) -> float:
            return self.committed[index].start_ts

        def depart(index: int) -> float:
            txn = self.committed[index]
            return txn.commit_ts if txn.commit_ts is not None else txn.start_ts

        adjacency: Dict[int, List[Edge]] = {}
        rw_edges: List[Edge] = []
        monotone = True
        for edge in all_edges:
            if edge[2] == "rw":
                rw_edges.append(edge)
            else:
                adjacency.setdefault(edge[0], []).append(edge)
                if depart(edge[0]) > arrive(edge[1]):
                    monotone = False
        if monotone:
            # Monotone wr/ww edges cannot cycle (commit timestamps are
            # unique), and only an rw edge whose target departs at or
            # before its source's snapshot could close a one-rw cycle.
            candidates = [
                edge for edge in rw_edges if depart(edge[1]) <= arrive(edge[0])
            ]
        else:
            pure = self.find_cycle(kinds={"wr", "ww"})
            if pure is not None:
                return pure
            candidates = rw_edges
        for rw in candidates:
            # BFS from the rw target back to its source via wr/ww only.
            frontier = [rw[1]]
            parents: Dict[int, Edge] = {}
            visited = {rw[1]}
            while frontier:
                node = frontier.pop()
                for edge in adjacency.get(node, ()):
                    target = edge[1]
                    if target in visited:
                        continue
                    parents[target] = edge
                    if target == rw[0]:
                        chain: List[Edge] = []
                        cursor = target
                        while cursor != rw[1]:
                            edge_in = parents[cursor]
                            chain.append(edge_in)
                            cursor = edge_in[0]
                        chain.reverse()
                        return [rw] + chain
                    visited.add(target)
                    frontier.append(target)
        return None

    # ------------------------------------------------------------------
    # assertions and reporting
    # ------------------------------------------------------------------

    def describe_cycle(self, cycle: Sequence[Edge]) -> str:
        parts = [
            f"{self.committed[src].name} -{kind}-> {self.committed[dst].name}"
            for src, dst, kind in cycle
        ]
        return ", ".join(parts)

    def assert_serializable(self) -> None:
        """Fail if the DSG has any cycle (the ``SERIALIZABLE`` promise)."""
        cycle = self.find_cycle()
        assert cycle is None, (
            f"serializability violated: DSG cycle {self.describe_cycle(cycle)}"
        )

    def assert_snapshot_isolation(self) -> None:
        """Fail on a cycle with fewer than two rw edges (the SI promise)."""
        cycle = self.find_si_forbidden_cycle()
        assert cycle is None, (
            "snapshot isolation violated: DSG cycle with fewer than two "
            f"rw-antidependency edges: {self.describe_cycle(cycle)}"
        )

    def to_json(self) -> str:
        with self._lock:
            payload = {
                "committed": [txn.as_dict() for txn in self.committed],
                "edges": [
                    {
                        "from": self.committed[src].name,
                        "to": self.committed[dst].name,
                        "kind": kind,
                    }
                    for src, dst, kind in self.edges()
                ],
            }
        return json.dumps(payload, indent=2, sort_keys=True)

    def dump(self, path: str) -> None:
        """Write the recorded history (and its edges) as a JSON artifact."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())


class RecordingContext:
    """Read/write helpers over one open transaction, feeding the recorder.

    Keys are entity-level (node ids): the engine's write rule and SIREADs
    operate per entity, so entity granularity is what the DSG needs.  Reads
    of keys this transaction already wrote are read-your-own-writes and are
    not recorded (they create no inter-transaction dependency).
    """

    def __init__(self, tx, name: str) -> None:
        self.tx = tx
        self.name = name
        self.reads: Set[Key] = set()
        self.writes: Set[Key] = set()

    def read(self, node_id: int, prop: Optional[str] = None):
        node = self.tx.try_get_node(node_id)
        if node_id not in self.writes:
            self.reads.add(node_id)
        if node is None:
            return None
        return node if prop is None else node.get(prop)

    def write(self, node_id: int, prop: str, value) -> None:
        self.tx.set_node_property(node_id, prop, value)
        self.writes.add(node_id)

    def create(self, labels=(), properties=None) -> int:
        node = self.tx.create_node(labels=labels, properties=properties)
        self.writes.add(node.id)
        return node.id

    def finalize(self) -> RecordedTransaction:
        engine_txn = self.tx.engine_transaction
        return RecordedTransaction(
            name=self.name,
            start_ts=engine_txn.start_ts,
            commit_ts=getattr(engine_txn, "commit_ts", None),
            reads=set(self.reads),
            writes=set(self.writes),
        )


class Recorder:
    """Runs transactions against a database while recording their history."""

    def __init__(self, history: Optional[History] = None) -> None:
        self.history = history if history is not None else History()

    def run(
        self,
        db,
        name: str,
        fn,
        *,
        read_only: bool = False,
        deferrable: Optional[bool] = None,
    ):
        """Run ``fn(ctx)`` in one transaction; record it iff it commits.

        Conflict aborts propagate to the caller (who owns the retry loop);
        an aborted attempt leaves no trace in the history, exactly like an
        aborted transaction leaves no trace in the database.
        """
        tx = db.begin(read_only=read_only, deferrable=deferrable)
        ctx = RecordingContext(tx, name)
        try:
            result = fn(ctx)
            tx.commit()
        except BaseException:
            tx.rollback()
            raise
        self.history.record(ctx.finalize())
        return result
