"""Deterministic concurrency test harness.

Two pieces, usable together or alone:

* :mod:`tests.harness.history` — a thread-safe history recorder plus a
  Direct Serialization Graph (DSG) checker.  Committed transactions are
  recorded with their snapshot and commit timestamps and their read/write
  sets; the checker derives wr- (write-read), ww- (write-write) and rw-
  (antidependency) edges from the MVCC timestamps and asserts the guarantee
  each isolation level promises — full acyclicity under ``SERIALIZABLE``,
  "no cycle with fewer than two rw-antidependency edges" under ``SNAPSHOT``.

* :mod:`tests.harness.stepper` — a schedule-controlled stepper that drives
  N transactions through named interleaving points.  Each transaction is a
  generator that yields at its interleaving points; the schedule is the
  exact global order in which those points execute, which makes anomalies
  like the Fekete read-only-transaction anomaly reproducible on demand
  instead of a flake.
"""

from harness.history import History, RecordedTransaction, Recorder
from harness.stepper import Stepper

__all__ = ["History", "RecordedTransaction", "Recorder", "Stepper"]
