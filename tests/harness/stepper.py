"""Schedule-controlled transaction stepper.

Each participating transaction is written as a *generator function* taking a
:class:`~tests.harness.history.RecordingContext` and yielding at its named
interleaving points:

    def withdraw(ctx):
        balance = ctx.read(account, "balance")
        yield "after-read"            # <- named interleaving point
        ctx.write(account, "balance", balance - 10)

The stepper owns begin/commit and executes the transactions strictly in the
order the schedule dictates, one interleaving point at a time — the whole
run happens on the calling thread, so a schedule replays *identically* every
time.  A schedule is a list of transaction names (each entry advances that
transaction to its next yield, or commits it when the generator is
exhausted); an entry may also be ``(name, expected_point)`` to assert the
schedule reached the interleaving point it says it did, which keeps long
schedules self-documenting.

Aborts are outcomes, not crashes: a conflict abort raised while stepping or
committing marks the transaction's outcome and the schedule carries on,
which is how a test asserts *which* transaction the engine sacrificed.
Committed transactions are recorded into the shared
:class:`~tests.harness.history.History` for DSG checking.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import TransactionAbortedError

from harness.history import History, RecordingContext

#: Returned by :meth:`Stepper.step` when the transaction committed.
COMMITTED = "committed"
#: Returned by :meth:`Stepper.step` when the transaction was aborted.
ABORTED = "aborted"

ScheduleEntry = Union[str, Tuple[str, str]]


class _Participant:
    __slots__ = ("name", "fn", "read_only", "deferrable", "ctx", "gen", "outcome", "error")

    def __init__(self, name, fn, *, read_only: bool, deferrable: Optional[bool]) -> None:
        self.name = name
        self.fn = fn
        self.read_only = read_only
        self.deferrable = deferrable
        self.ctx: Optional[RecordingContext] = None
        self.gen = None
        self.outcome: Optional[str] = None
        self.error: Optional[BaseException] = None


class Stepper:
    """Drives N transactions through named interleaving points."""

    def __init__(self, db, history: Optional[History] = None) -> None:
        self.db = db
        self.history = history if history is not None else History()
        self._participants: Dict[str, _Participant] = {}

    def add(
        self,
        name: str,
        fn,
        *,
        read_only: bool = False,
        deferrable: Optional[bool] = None,
    ) -> "Stepper":
        """Register a transaction generator under ``name`` (begin is lazy)."""
        if name in self._participants:
            raise ValueError(f"duplicate participant {name!r}")
        self._participants[name] = _Participant(
            name, fn, read_only=read_only, deferrable=deferrable
        )
        return self

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------

    def step(self, name: str) -> str:
        """Advance one transaction to its next interleaving point.

        Begins the transaction on its first step; commits it when its
        generator is exhausted.  Returns the name of the point reached,
        ``COMMITTED``, or ``ABORTED`` (the abort error is kept on the
        outcome).  Stepping a finished transaction is an error — schedules
        must say exactly what runs when.
        """
        participant = self._participants[name]
        if participant.outcome is not None:
            raise RuntimeError(f"transaction {name!r} already {participant.outcome}")
        if participant.gen is None:
            tx = self.db.begin(
                read_only=participant.read_only, deferrable=participant.deferrable
            )
            participant.ctx = RecordingContext(tx, name)
            try:
                produced = participant.fn(participant.ctx)
            except TransactionAbortedError as exc:
                return self._aborted(participant, exc)
            if not hasattr(produced, "__next__"):
                # A plain function has no interleaving points: one step runs
                # it whole and commits.
                return self._commit(participant)
            participant.gen = produced
        try:
            point = next(participant.gen)
        except StopIteration:
            return self._commit(participant)
        except TransactionAbortedError as exc:
            return self._aborted(participant, exc)
        return str(point)

    def run(self, schedule: Iterable[ScheduleEntry]) -> Dict[str, str]:
        """Execute a whole schedule; returns each transaction's outcome.

        Entries are transaction names, or ``(name, expected_point)`` pairs
        asserting the interleaving point (or ``COMMITTED``/``ABORTED``)
        reached by that step.
        """
        for entry in schedule:
            if isinstance(entry, tuple):
                name, expected = entry
                reached = self.step(name)
                if reached != expected:
                    raise AssertionError(
                        f"schedule expected {name!r} to reach {expected!r} "
                        f"but it reached {reached!r}"
                    )
            else:
                self.step(entry)
        return self.outcomes()

    def finish(self, name: str) -> str:
        """Run one transaction to completion (all remaining points + commit)."""
        result = self.step(name)
        while result not in (COMMITTED, ABORTED):
            result = self.step(name)
        return result

    # ------------------------------------------------------------------
    # outcomes
    # ------------------------------------------------------------------

    def outcomes(self) -> Dict[str, str]:
        """Outcome per participant (``None`` entries omitted)."""
        return {
            name: participant.outcome
            for name, participant in self._participants.items()
            if participant.outcome is not None
        }

    def error_of(self, name: str) -> Optional[BaseException]:
        """The abort error of a transaction, if it aborted."""
        return self._participants[name].error

    def rollback_open(self) -> None:
        """Roll back every transaction the schedule left open (cleanup)."""
        for participant in self._participants.values():
            if participant.outcome is None and participant.ctx is not None:
                participant.ctx.tx.rollback()
                participant.outcome = ABORTED

    # ------------------------------------------------------------------
    # internal
    # ------------------------------------------------------------------

    def _commit(self, participant: _Participant) -> str:
        try:
            participant.ctx.tx.commit()
        except TransactionAbortedError as exc:
            return self._aborted(participant, exc)
        participant.outcome = COMMITTED
        self.history.record(participant.ctx.finalize())
        return COMMITTED

    def _aborted(self, participant: _Participant, exc: TransactionAbortedError) -> str:
        participant.ctx.tx.rollback()
        participant.outcome = ABORTED
        participant.error = exc
        return ABORTED
