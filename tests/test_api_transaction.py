"""Tests for the user-facing transaction API (runs under both isolation levels)."""

import pytest

from repro.errors import (
    ConstraintViolationError,
    InvalidPropertyValueError,
    NodeNotFoundError,
    RelationshipNotFoundError,
    ReservedNameError,
)
from repro.graph.entity import Direction


class TestNodeCrud:
    def test_create_and_get(self, any_db):
        with any_db.transaction() as tx:
            node = tx.create_node(["Person"], {"name": "Alice", "age": 30})
            node_id = node.id
        with any_db.transaction(read_only=True) as tx:
            loaded = tx.get_node(node_id)
            assert loaded["name"] == "Alice"
            assert loaded.get("age") == 30
            assert loaded.get("missing", "default") == "default"
            assert loaded.has_label("Person")
            assert loaded.labels == {"Person"}

    def test_get_missing_node_raises(self, any_db):
        with any_db.transaction(read_only=True) as tx:
            with pytest.raises(NodeNotFoundError):
                tx.get_node(999)
            assert tx.try_get_node(999) is None
            assert not tx.node_exists(999)

    def test_set_and_remove_property(self, any_db):
        with any_db.transaction() as tx:
            node = tx.create_node(["Person"], {"name": "Alice"})
            tx.set_node_property(node, "age", 30)
            tx.remove_node_property(node, "name")
            node_id = node.id
        with any_db.transaction(read_only=True) as tx:
            loaded = tx.get_node(node_id)
            assert loaded["age"] == 30
            assert loaded.get("name") is None

    def test_update_properties_merges(self, any_db):
        with any_db.transaction() as tx:
            node = tx.create_node(properties={"a": 1, "b": 2})
            tx.update_node_properties(node, {"b": 20, "c": 3})
            node_id = node.id
        with any_db.transaction(read_only=True) as tx:
            assert tx.get_node(node_id).properties == {"a": 1, "b": 20, "c": 3}

    def test_labels_add_remove(self, any_db):
        with any_db.transaction() as tx:
            node = tx.create_node(["Person"])
            tx.add_label(node, "Admin")
            tx.remove_label(node, "Person")
            node_id = node.id
        with any_db.transaction(read_only=True) as tx:
            assert tx.get_node(node_id).labels == {"Admin"}
            assert [n.id for n in tx.find_nodes(label="Admin")] == [node_id]
            assert tx.find_nodes(label="Person") == []

    def test_invalid_inputs_rejected(self, any_db):
        with any_db.transaction() as tx:
            with pytest.raises(ValueError):
                tx.create_node([""])
            with pytest.raises(ReservedNameError):
                tx.create_node(["_si_hidden"])
            with pytest.raises(InvalidPropertyValueError):
                tx.create_node(properties={"bad": {"nested": True}})
            with pytest.raises(ReservedNameError):
                tx.create_node(properties={"_si_commit_ts": 4})
            node = tx.create_node()
            with pytest.raises(InvalidPropertyValueError):
                tx.set_node_property(node, "value", None)
            tx.rollback()

    def test_delete_requires_detach_when_relationships_exist(self, any_db):
        with any_db.transaction() as tx:
            a = tx.create_node(["Person"])
            b = tx.create_node(["Person"])
            tx.create_relationship(a, b, "KNOWS")
            a_id, b_id = a.id, b.id
        with any_db.transaction() as tx:
            with pytest.raises(ConstraintViolationError):
                tx.delete_node(a_id)
            tx.rollback()
        with any_db.transaction() as tx:
            tx.delete_node(a_id, detach=True)
        with any_db.transaction(read_only=True) as tx:
            assert tx.try_get_node(a_id) is None
            assert tx.relationships_of(b_id) == []

    def test_node_handle_delegation(self, any_db):
        with any_db.transaction() as tx:
            node = tx.create_node(["Person"], {"name": "x"})
            node = node.set_property("age", 1)
            node = node.add_label("Admin")
            node = node.remove_label("Person")
            node = node.remove_property("name")
            assert node.degree() == 0
            node_id = node.id
        with any_db.transaction(read_only=True) as tx:
            loaded = tx.get_node(node_id)
            assert loaded.labels == {"Admin"}
            assert loaded.properties == {"age": 1}


class TestRelationshipCrud:
    def test_create_and_expand(self, any_db):
        with any_db.transaction() as tx:
            a = tx.create_node(["Person"], {"name": "a"})
            b = tx.create_node(["Person"], {"name": "b"})
            rel = tx.create_relationship(a, b, "KNOWS", {"since": 2016})
            a_id, b_id, rel_id = a.id, b.id, rel.id
        with any_db.transaction(read_only=True) as tx:
            rel = tx.get_relationship(rel_id)
            assert rel.type == "KNOWS"
            assert rel["since"] == 2016
            assert rel.start_node_id == a_id and rel.end_node_id == b_id
            assert rel.other_node_id(a_id) == b_id
            assert rel.start_node().id == a_id
            assert rel.end_node().id == b_id
            assert rel.other_node(a_id).id == b_id
            neighbours = tx.neighbours(a_id)
            assert [node.id for node in neighbours] == [b_id]
            assert tx.degree(a_id) == 1
            assert tx.degree(a_id, Direction.INCOMING) == 0
            pairs = list(tx.expand(a_id, Direction.OUTGOING))
            assert pairs[0][0].id == rel_id and pairs[0][1].id == b_id

    def test_endpoints_must_exist(self, any_db):
        with any_db.transaction() as tx:
            a = tx.create_node()
            with pytest.raises(NodeNotFoundError):
                tx.create_relationship(a, 12345, "KNOWS")
            tx.rollback()

    def test_type_must_be_non_empty(self, any_db):
        with any_db.transaction() as tx:
            a = tx.create_node()
            b = tx.create_node()
            with pytest.raises(ValueError):
                tx.create_relationship(a, b, "")
            tx.rollback()

    def test_relationship_properties_and_delete(self, any_db):
        with any_db.transaction() as tx:
            a = tx.create_node()
            b = tx.create_node()
            rel = tx.create_relationship(a, b, "KNOWS")
            tx.set_relationship_property(rel, "weight", 0.5)
            rel_id = rel.id
        with any_db.transaction() as tx:
            assert tx.get_relationship(rel_id)["weight"] == 0.5
            assert [r.id for r in tx.find_relationships("weight", 0.5)] == [rel_id]
            tx.remove_relationship_property(rel_id, "weight")
            tx.delete_relationship(rel_id)
        with any_db.transaction(read_only=True) as tx:
            assert tx.try_get_relationship(rel_id) is None
            with pytest.raises(RelationshipNotFoundError):
                tx.get_relationship(rel_id)

    def test_self_loop(self, any_db):
        with any_db.transaction() as tx:
            node = tx.create_node(["Thing"])
            rel = tx.create_relationship(node, node, "SELF")
            node_id, rel_id = node.id, rel.id
        with any_db.transaction(read_only=True) as tx:
            rels = tx.relationships_of(node_id)
            assert [r.id for r in rels] == [rel_id]
            assert rels[0].other_node_id(node_id) == node_id


class TestQueriesAndCounts:
    def test_find_nodes_combinations(self, any_db):
        with any_db.transaction() as tx:
            alice = tx.create_node(["Person"], {"city": "madrid"})
            bob = tx.create_node(["Person"], {"city": "lisbon"})
            site = tx.create_node(["Page"], {"city": "madrid"})
            ids = (alice.id, bob.id, site.id)
        with any_db.transaction(read_only=True) as tx:
            assert {n.id for n in tx.find_nodes(label="Person")} == {ids[0], ids[1]}
            assert {n.id for n in tx.find_nodes(key="city", value="madrid")} == {ids[0], ids[2]}
            assert [n.id for n in tx.find_nodes(label="Person", key="city", value="madrid")] == [ids[0]]
            assert len(tx.find_nodes()) == 3
            with pytest.raises(ValueError):
                tx.find_nodes(key="city")

    def test_counts(self, any_db):
        with any_db.transaction() as tx:
            a = tx.create_node()
            b = tx.create_node()
            tx.create_relationship(a, b, "KNOWS")
        assert any_db.node_count() == 2
        assert any_db.relationship_count() == 1
        with any_db.transaction(read_only=True) as tx:
            assert tx.node_count() == 2
            assert tx.relationship_count() == 1
            assert len(list(tx.relationships())) == 1


class TestTransactionLifecycle:
    def test_context_manager_commits_on_success(self, any_db):
        with any_db.transaction() as tx:
            node_id = tx.create_node(["Person"]).id
        with any_db.transaction(read_only=True) as tx:
            assert tx.node_exists(node_id)

    def test_context_manager_rolls_back_on_exception(self, any_db):
        with pytest.raises(RuntimeError):
            with any_db.transaction() as tx:
                tx.create_node(["Person"], {"name": "ghost"})
                raise RuntimeError("boom")
        with any_db.transaction(read_only=True) as tx:
            assert tx.find_nodes(label="Person") == []

    def test_explicit_commit_and_rollback(self, any_db):
        tx = any_db.begin()
        node = tx.create_node()
        tx.commit()
        assert not tx.is_open
        tx2 = any_db.begin()
        tx2.set_node_property(node.id, "x", 1)
        tx2.rollback()
        assert not tx2.is_open
        with any_db.transaction(read_only=True) as tx3:
            assert tx3.get_node(node.id).get("x") is None

    def test_transaction_exposes_metadata(self, any_db):
        tx = any_db.begin(read_only=True)
        assert tx.read_only
        assert tx.id > 0
        assert tx.engine_transaction is not None
        tx.rollback()
