"""Batch/row executor equivalence.

The vectorized batch executor is the default runtime; the row-at-a-time
executor is the semantic reference.  These tests pin them together: every
read template of the E10 workload mix must return byte-identical rows (same
values, same order) under batch sizes 1, 2 and 1024, with and without
morsel-parallel leaf scans — and the batch executor must preserve the
snapshot-consistency and SSI-abort behaviour the row executor exhibits,
including for the plans the batch runtime rewrites (unbound-target expands
and fused ``Expand -> count(r)`` aggregates).
"""

from __future__ import annotations

import random

import pytest

from repro import GraphDatabase, IsolationLevel, TransactionAbortedError
from repro.workload import READ_TEMPLATES, build_social_graph, person_names_of

#: Batch-executor configurations under test: every required batch size, each
#: with morsel-parallel leaf scans off and forced on (two workers, every scan
#: eligible).
BATCH_CONFIGS = [
    pytest.param({"query_batch_size": 1}, id="batch1"),
    pytest.param({"query_batch_size": 2}, id="batch2"),
    pytest.param({"query_batch_size": 1024}, id="batch1024"),
    pytest.param(
        {"query_batch_size": 1, "morsel_workers": 2, "morsel_threshold": 1},
        id="batch1-morsel",
    ),
    pytest.param(
        {"query_batch_size": 2, "morsel_workers": 2, "morsel_threshold": 1},
        id="batch2-morsel",
    ),
    pytest.param(
        {"query_batch_size": 1024, "morsel_workers": 2, "morsel_threshold": 1},
        id="batch1024-morsel",
    ),
]

PEOPLE = 60
AVG_FRIENDS = 4
GRAPH_SEED = 13


def _social_db(isolation: IsolationLevel, **options) -> GraphDatabase:
    db = GraphDatabase.in_memory(isolation=isolation, **options)
    build_social_graph(db, people=PEOPLE, avg_friends=AVG_FRIENDS, seed=GRAPH_SEED)
    return db


def _rows(db: GraphDatabase, text: str, params) -> list:
    with db.transaction(read_only=True) as tx:
        return [record.as_dict() for record in tx.execute(text, params).records()]


@pytest.fixture(params=BATCH_CONFIGS)
def batch_config(request):
    return request.param


class TestTemplateEquivalence:
    """Every E10 read template, row executor vs every batch configuration."""

    @pytest.fixture(scope="class")
    def row_db(self):
        db = _social_db(IsolationLevel.SNAPSHOT, query_executor="row")
        yield db
        db.close()

    @pytest.mark.parametrize(
        "template", READ_TEMPLATES, ids=[t.name for t in READ_TEMPLATES]
    )
    def test_template_rows_identical(self, template, batch_config, row_db):
        batch_db = _social_db(
            IsolationLevel.SNAPSHOT, query_executor="batch", **batch_config
        )
        names = person_names_of(row_db)
        try:
            # Several parameter draws per template, deterministic per run.
            rng = random.Random(97)
            for _ in range(4):
                params = template.params(rng, names)
                expected = _rows(row_db, template.text, params)
                actual = _rows(batch_db, template.text, params)
                assert actual == expected, (
                    f"{template.name} diverged under {batch_config}"
                )
        finally:
            batch_db.close()


ITEMS = 40


def _build_items(db, count=ITEMS):
    with db.transaction() as tx:
        for index in range(count):
            tx.create_node(["Item"], {"value": 0, "index": index})


def _commit_interference(db):
    with db.transaction() as tx:
        for index in range(10):
            tx.create_node(["Item"], {"value": 1, "index": 1000 + index})
        for node in tx.find_nodes(label="Item", key="value", value=0):
            tx.set_node_property(node, "value", 1)


class TestBatchSnapshotConsistency:
    """The snapshot guarantees of ``test_query_snapshot`` hold per batch size."""

    def test_long_query_sees_one_snapshot(self, batch_config):
        db = GraphDatabase.in_memory(
            isolation=IsolationLevel.SNAPSHOT, **batch_config
        )
        try:
            _build_items(db)
            with db.begin(read_only=True) as tx:
                iterator = iter(tx.execute("MATCH (n:Item) RETURN n.value AS v"))
                head = [next(iterator) for _ in range(5)]
                _commit_interference(db)
                tail = list(iterator)
            values = [record["v"] for record in head + tail]
            assert values == [0] * ITEMS
        finally:
            db.close()

    def test_aggregate_spanning_commit(self, batch_config):
        db = GraphDatabase.in_memory(
            isolation=IsolationLevel.SNAPSHOT, **batch_config
        )
        try:
            _build_items(db)
            with db.begin(read_only=True) as tx:
                iterator = iter(
                    tx.execute("MATCH (n:Item) RETURN n.index AS i ORDER BY i")
                )
                first = next(iterator)
                _commit_interference(db)
                rest = [record["i"] for record in iterator]
                assert tx.execute("MATCH (n:Item) RETURN count(*)").value() == ITEMS
                assert (
                    tx.execute(
                        "MATCH (n:Item) WHERE n.value = 1 RETURN count(*)"
                    ).value()
                    == 0
                )
            assert [first["i"]] + rest == list(range(ITEMS))
        finally:
            db.close()

    def test_var_length_traversal_spanning_commit(self, batch_config):
        db = GraphDatabase.in_memory(
            isolation=IsolationLevel.SNAPSHOT, **batch_config
        )
        try:
            with db.transaction() as tx:
                previous = None
                for index in range(8):
                    node = tx.create_node(["Step"], {"pos": index})
                    if previous is not None:
                        tx.create_relationship(previous, node, "NEXT")
                    previous = node.id
            with db.begin(read_only=True) as tx:
                iterator = iter(
                    tx.execute(
                        "MATCH (s:Step {pos: 0})-[:NEXT*1..20]->(x) "
                        "RETURN x.pos AS pos"
                    )
                )
                first = next(iterator)
                with db.transaction() as wtx:
                    start = wtx.find_nodes(label="Step", key="pos", value=0)[0]
                    branch = wtx.create_node(["Step"], {"pos": 100})
                    wtx.create_relationship(start, branch, "NEXT")
                rest = [record["pos"] for record in iterator]
            assert sorted([first["pos"]] + rest) == list(range(1, 8))
        finally:
            db.close()


def _write_skew_outcome(db: GraphDatabase) -> tuple:
    """Run a query-driven write skew; returns each side's commit outcome."""
    with db.transaction() as tx:
        tx.execute("CREATE (:Acct {k: 'a', v: 100})", {})
        tx.execute("CREATE (:Acct {k: 'b', v: 100})", {})
    t1 = db.begin()
    t2 = db.begin()
    assert t1.execute("MATCH (n:Acct) RETURN sum(n.v)").value() == 200
    assert t2.execute("MATCH (n:Acct) RETURN sum(n.v)").value() == 200
    t1.execute("MATCH (n:Acct {k: 'a'}) SET n.v = n.v - 150", {})
    t2.execute("MATCH (n:Acct {k: 'b'}) SET n.v = n.v - 150", {})
    outcomes = []
    for txn in (t1, t2):
        try:
            txn.commit()
            outcomes.append("committed")
        except TransactionAbortedError:
            outcomes.append("aborted")
    return tuple(outcomes)


def _adjacency_skew_outcome(db: GraphDatabase) -> tuple:
    """Cross rw-antidependency through adjacency predicate reads.

    Each side counts the other's future write target with the exact shape
    the batch runtime optimises (anonymous terminal target, fused
    ``count(r)``) — if either rewrite dropped the predicate or SIREAD
    registration, the dangerous structure would go undetected and both
    sides would commit.
    """
    with db.transaction() as tx:
        tx.execute("CREATE (:P {k: 'x'})", {})
        tx.execute("CREATE (:P {k: 'y'})", {})
        tx.execute("CREATE (:P {k: 'z'})", {})
    t1 = db.begin()
    t2 = db.begin()
    assert (
        t1.execute("MATCH (n:P {k: 'x'})-[r:KNOWS]-() RETURN count(r)").value() == 0
    )
    assert (
        t2.execute("MATCH (n:P {k: 'y'})-[r:KNOWS]-() RETURN count(r)").value() == 0
    )
    t1.execute(
        "MATCH (a:P {k: 'y'}), (b:P {k: 'z'}) CREATE (a)-[:KNOWS]->(b)", {}
    )
    t2.execute(
        "MATCH (a:P {k: 'x'}), (b:P {k: 'z'}) CREATE (a)-[:KNOWS]->(b)", {}
    )
    outcomes = []
    for txn in (t1, t2):
        try:
            txn.commit()
            outcomes.append("committed")
        except TransactionAbortedError:
            outcomes.append("aborted")
    return tuple(outcomes)


class TestSSIAbortEquivalence:
    """Identical serialization aborts from both executors, per batch config."""

    def test_write_skew_outcome_matches_row_executor(self, batch_config):
        row_db = GraphDatabase.in_memory(
            isolation=IsolationLevel.SERIALIZABLE, query_executor="row"
        )
        batch_db = GraphDatabase.in_memory(
            isolation=IsolationLevel.SERIALIZABLE, **batch_config
        )
        try:
            expected = _write_skew_outcome(row_db)
            actual = _write_skew_outcome(batch_db)
            assert expected == ("committed", "aborted")
            assert actual == expected
        finally:
            row_db.close()
            batch_db.close()

    def test_adjacency_skew_outcome_matches_row_executor(self, batch_config):
        row_db = GraphDatabase.in_memory(
            isolation=IsolationLevel.SERIALIZABLE, query_executor="row"
        )
        batch_db = GraphDatabase.in_memory(
            isolation=IsolationLevel.SERIALIZABLE, **batch_config
        )
        try:
            expected = _adjacency_skew_outcome(row_db)
            actual = _adjacency_skew_outcome(batch_db)
            assert expected == ("committed", "aborted")
            assert actual == expected
        finally:
            row_db.close()
            batch_db.close()
