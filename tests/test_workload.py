"""Tests for the workload package (generators, runner, metrics)."""

import pytest

from repro.workload.anomaly import AnomalyCounters
from repro.workload.generators import (
    build_account_graph,
    build_chain_graph,
    build_grid_graph,
    build_social_graph,
)
from repro.workload.metrics import LatencyRecorder, WorkloadResult
from repro.workload.operations import (
    add_friendship,
    scan_label,
    transfer_between_accounts,
    traverse_neighbourhood,
    update_node_property,
)
from repro.workload.runner import ConcurrentWorkloadRunner, WorkerOutcome


class TestGenerators:
    def test_social_graph_shape(self, si_db):
        graph = build_social_graph(si_db, people=30, avg_friends=2, cities=3, seed=1)
        assert len(graph.group("people")) == 30
        assert len(graph.group("cities")) == 3
        with si_db.transaction(read_only=True) as tx:
            assert len(tx.find_nodes(label="Person")) == 30
            assert len(tx.find_nodes(label="City")) == 3
            # every person lives somewhere
            somebody = graph.group("people")[0]
            assert tx.relationships_of(somebody, rel_types=["LIVES_IN"])

    def test_social_graph_is_deterministic(self, si_db, rc_db):
        first = build_social_graph(si_db, people=20, avg_friends=3, seed=5)
        second = build_social_graph(rc_db, people=20, avg_friends=3, seed=5)
        assert first.relationship_count == second.relationship_count
        assert first.node_count == second.node_count

    def test_chain_graph(self, si_db):
        graph = build_chain_graph(si_db, length=10)
        assert graph.node_count == 10
        assert graph.relationship_count == 9

    def test_grid_graph(self, si_db):
        graph = build_grid_graph(si_db, width=3, height=4)
        assert graph.node_count == 12
        # EAST: 2 per row * 4 rows, SOUTH: 3 per column * 3 rows
        assert graph.relationship_count == 2 * 4 + 3 * 3

    def test_account_graph(self, si_db):
        graph = build_account_graph(si_db, accounts=10, initial_balance=500, seed=2)
        assert len(graph.group("accounts")) == 10
        with si_db.transaction(read_only=True) as tx:
            balances = [tx.get_node(a)["balance"] for a in graph.group("accounts")]
            assert balances == [500] * 10
            owners = tx.find_nodes(label="Customer")
            assert owners


class TestOperations:
    def test_update_and_scan(self, si_db):
        graph = build_social_graph(si_db, people=10, avg_friends=1, seed=3)
        import random
        rng = random.Random(1)
        with si_db.transaction() as tx:
            assert update_node_property(tx, graph.group("people")[0], "score", rng)
            assert not update_node_property(tx, 10_000, "score", rng)
        with si_db.transaction(read_only=True) as tx:
            assert len(scan_label(tx, "Person")) == 10
            assert traverse_neighbourhood(tx, graph.group("people")[0], depth=2) >= 1

    def test_transfer_and_friendship(self, si_db):
        graph = build_account_graph(si_db, accounts=4, seed=4)
        accounts = graph.group("accounts")
        with si_db.transaction() as tx:
            assert transfer_between_accounts(tx, accounts[0], accounts[1], 100)
            assert not transfer_between_accounts(tx, accounts[0], 99_999, 100)
        with si_db.transaction(read_only=True) as tx:
            assert tx.get_node(accounts[0])["balance"] == 900
            assert tx.get_node(accounts[1])["balance"] == 1100
        import random
        with si_db.transaction() as tx:
            assert add_friendship(tx, graph.group("customers"), random.Random(0)) is not None


class TestMetrics:
    def test_latency_recorder_percentiles(self):
        recorder = LatencyRecorder()
        recorder.extend([0.001 * value for value in range(1, 101)])
        assert recorder.count() == 100
        assert recorder.percentile(0.0) == pytest.approx(0.001)
        assert recorder.percentile(1.0) == pytest.approx(0.1)
        assert recorder.percentile(0.5) == pytest.approx(0.05, rel=0.05)
        assert 0.0 < recorder.mean() < 0.1
        summary = recorder.summary()
        assert summary["count"] == 100 and summary["p95"] >= summary["p50"]

    def test_empty_recorder(self):
        recorder = LatencyRecorder()
        assert recorder.percentile(0.5) == 0.0
        assert recorder.mean() == 0.0

    def test_workload_result_aggregation(self):
        result = WorkloadResult(workers=2, duration_seconds=2.0)
        result.merge_worker(operations=10, committed=8, aborted=2, conflicts=2,
                            latencies=[0.01] * 10, anomalies=AnomalyCounters(phantom_reads=1, checks=5))
        result.merge_worker(operations=10, committed=10, aborted=0)
        assert result.operations == 20
        assert result.committed == 18
        assert result.throughput == pytest.approx(9.0)
        assert result.abort_rate == pytest.approx(2 / 20)
        assert result.anomalies.phantom_reads == 1
        row = result.as_dict()
        assert row["workers"] == 2 and "latency_p95" in row and "anomaly_rate" in row

    def test_anomaly_counters(self):
        counters = AnomalyCounters(unrepeatable_reads=1, checks=4)
        counters.merge(AnomalyCounters(phantom_reads=2, checks=6))
        assert counters.total() == 3
        assert counters.rate() == pytest.approx(0.3)
        assert counters.as_dict()["checks"] == 10


class TestRunner:
    def test_runner_aggregates_outcomes(self, si_db):
        graph = build_social_graph(si_db, people=10, avg_friends=1, seed=7)
        people = graph.group("people")

        def work(db, rng, worker_id, iteration):
            outcome = WorkerOutcome()
            with db.transaction(read_only=True) as tx:
                tx.get_node(rng.choice(people))
            outcome.extra["reads"] = 1
            return outcome

        runner = ConcurrentWorkloadRunner(si_db, workers=3, operations_per_worker=5, seed=1)
        result = runner.run(work)
        assert result.operations == 15
        assert result.committed == 15
        assert result.aborted == 0
        assert result.extra["reads"] == 15
        assert result.latencies.count() == 15
        assert result.duration_seconds > 0

    def test_runner_counts_conflicts_instead_of_crashing(self, si_db):
        with si_db.transaction() as tx:
            hot = tx.create_node(["Counter"], {"value": 0}).id

        def work(db, rng, worker_id, iteration):
            with db.transaction() as tx:
                node = tx.get_node(hot)
                tx.set_node_property(hot, "value", int(node["value"]) + 1)
            return WorkerOutcome()

        runner = ConcurrentWorkloadRunner(si_db, workers=4, operations_per_worker=10, seed=2)
        result = runner.run(work)
        assert result.committed + result.aborted == 40
        assert result.conflicts == result.aborted

    def test_runner_propagates_programming_errors(self, si_db):
        def work(db, rng, worker_id, iteration):
            raise ValueError("bug in the work function")

        runner = ConcurrentWorkloadRunner(si_db, workers=2, operations_per_worker=1, seed=3)
        with pytest.raises(ValueError):
            runner.run(work)

    def test_runner_requires_workers(self, si_db):
        with pytest.raises(ValueError):
            ConcurrentWorkloadRunner(si_db, workers=0)
