"""Integration tests for the snapshot-isolation engine (the paper's mechanisms)."""

import pytest

from repro.core.conflict import ConflictPolicy
from repro.core.si_manager import COMMIT_TS_PROPERTY, SnapshotIsolationEngine
from repro.errors import WriteWriteConflictError
from repro.graph.entity import EntityKey, NodeData, RelationshipData
from repro.graph.store_manager import StoreManager


@pytest.fixture
def engine():
    store = StoreManager(None, reuse_entity_ids=False)
    si = SnapshotIsolationEngine(store)
    yield si
    store.close()


def create_node(engine, labels=("Person",), **props):
    txn = engine.begin()
    node_id = engine.allocate_node_id()
    txn.put_node(NodeData(node_id, frozenset(labels), props), create=True)
    txn.commit()
    return node_id


def create_relationship(engine, start, end, rel_type="KNOWS", **props):
    txn = engine.begin()
    rel_id = engine.allocate_relationship_id()
    txn.put_relationship(RelationshipData(rel_id, rel_type, start, end, props), create=True)
    txn.commit()
    return rel_id


class TestSnapshotReads:
    def test_reader_keeps_its_snapshot(self, engine):
        node_id = create_node(engine, balance=100)
        reader = engine.begin(read_only=True)
        assert reader.read_node(node_id).properties["balance"] == 100

        writer = engine.begin()
        writer.put_node(writer.read_node(node_id).with_property("balance", 7))
        writer.commit()

        # The paper's read rule: still the value as of the reader's start.
        assert reader.read_node(node_id).properties["balance"] == 100
        fresh = engine.begin(read_only=True)
        assert fresh.read_node(node_id).properties["balance"] == 7

    def test_entity_created_after_snapshot_is_invisible(self, engine):
        reader = engine.begin(read_only=True)
        node_id = create_node(engine, name="late")
        assert reader.read_node(node_id) is None
        assert node_id not in reader.find_nodes_by_label("Person")

    def test_delete_invisible_to_older_snapshot(self, engine):
        node_id = create_node(engine)
        reader = engine.begin(read_only=True)
        deleter = engine.begin()
        deleter.delete_node(node_id)
        deleter.commit()
        assert reader.read_node(node_id) is not None
        assert engine.begin(read_only=True).read_node(node_id) is None

    def test_read_your_own_writes(self, engine):
        node_id = create_node(engine, balance=1)
        txn = engine.begin()
        txn.put_node(txn.read_node(node_id).with_property("balance", 2))
        assert txn.read_node(node_id).properties["balance"] == 2
        created = engine.allocate_node_id()
        txn.put_node(NodeData(created, {"Person"}), create=True)
        assert txn.read_node(created) is not None
        assert created in txn.find_nodes_by_label("Person")
        assert created in {node.node_id for node in txn.iter_nodes()}
        txn.rollback()
        assert engine.begin().read_node(created) is None

    def test_uncommitted_writes_invisible_to_others(self, engine):
        node_id = create_node(engine, balance=1)
        writer = engine.begin()
        writer.put_node(writer.read_node(node_id).with_property("balance", 99))
        other = engine.begin(read_only=True)
        assert other.read_node(node_id).properties["balance"] == 1
        writer.rollback()


class TestWriteRule:
    def test_first_updater_wins_active_conflict(self, engine):
        node_id = create_node(engine, counter=0)
        first = engine.begin()
        second = engine.begin()
        first.put_node(first.read_node(node_id).with_property("counter", 1))
        with pytest.raises(WriteWriteConflictError):
            second.put_node(second.read_node(node_id).with_property("counter", 2))
        second.rollback()
        first.commit()
        assert engine.begin().read_node(node_id).properties["counter"] == 1

    def test_conflict_with_already_committed_concurrent_update(self, engine):
        node_id = create_node(engine, counter=0)
        stale = engine.begin()
        stale.read_node(node_id)
        winner = engine.begin()
        winner.put_node(winner.read_node(node_id).with_property("counter", 1))
        winner.commit()
        with pytest.raises(WriteWriteConflictError):
            stale.put_node(NodeData(node_id, {"Person"}, {"counter": 99}))
        stale.rollback()

    def test_lost_update_prevented(self, engine):
        node_id = create_node(engine, counter=0)
        t1 = engine.begin()
        t2 = engine.begin()
        value1 = t1.read_node(node_id).properties["counter"]
        _value2 = t2.read_node(node_id).properties["counter"]
        t1.put_node(t1.read_node(node_id).with_property("counter", value1 + 1))
        t1.commit()
        with pytest.raises(WriteWriteConflictError):
            t2.put_node(t2.read_node(node_id).with_property("counter", 99))
        t2.rollback()
        assert engine.begin().read_node(node_id).properties["counter"] == 1

    def test_disjoint_writes_both_commit(self, engine):
        node_a = create_node(engine, value=0)
        node_b = create_node(engine, value=0)
        t1 = engine.begin()
        t2 = engine.begin()
        t1.put_node(t1.read_node(node_a).with_property("value", 1))
        t2.put_node(t2.read_node(node_b).with_property("value", 2))
        t1.commit()
        t2.commit()
        check = engine.begin()
        assert check.read_node(node_a).properties["value"] == 1
        assert check.read_node(node_b).properties["value"] == 2

    def test_first_committer_wins_policy(self):
        store = StoreManager(None, reuse_entity_ids=False)
        engine = SnapshotIsolationEngine(
            store, conflict_policy=ConflictPolicy.FIRST_COMMITTER_WINS
        )
        node_id = create_node(engine, counter=0)
        t1 = engine.begin()
        t2 = engine.begin()
        # Under first-committer-wins both writes are accepted at write time...
        t1.put_node(t1.read_node(node_id).with_property("counter", 1))
        t2.put_node(t2.read_node(node_id).with_property("counter", 2))
        t1.commit()
        # ...and the loser is the one that commits second.
        with pytest.raises(WriteWriteConflictError):
            t2.commit()
        assert engine.begin().read_node(node_id).properties["counter"] == 1
        store.close()

    def test_structural_conflict_relationship_to_deleted_node(self, engine):
        node_a = create_node(engine)
        node_b = create_node(engine)
        deleter = engine.begin()
        linker = engine.begin()
        deleter.delete_node(node_b)
        deleter.commit()
        rel_id = engine.allocate_relationship_id()
        linker.put_relationship(
            RelationshipData(rel_id, "KNOWS", node_a, node_b), create=True
        )
        with pytest.raises(WriteWriteConflictError):
            linker.commit()

    def test_structural_conflict_delete_node_with_new_relationship(self, engine):
        node_a = create_node(engine)
        node_b = create_node(engine)
        deleter = engine.begin()
        deleter.read_node(node_b)
        linker = engine.begin()
        rel_id = engine.allocate_relationship_id()
        linker.put_relationship(
            RelationshipData(rel_id, "KNOWS", node_a, node_b), create=True
        )
        linker.commit()
        deleter.delete_node(node_b)
        with pytest.raises(WriteWriteConflictError):
            deleter.commit()


class TestIndexesAndIterators:
    def test_label_scan_is_snapshot_consistent(self, engine):
        ids = [create_node(engine, labels=("Person",)) for _ in range(3)]
        reader = engine.begin(read_only=True)
        create_node(engine, labels=("Person",))
        assert reader.find_nodes_by_label("Person") == set(ids)
        assert engine.begin().find_nodes_by_label("Person") == set(ids) | {max(ids) + 1}

    def test_property_scan_reflects_updates_per_snapshot(self, engine):
        node_id = create_node(engine, city="madrid")
        reader = engine.begin(read_only=True)
        writer = engine.begin()
        writer.put_node(writer.read_node(node_id).with_property("city", "lisbon"))
        writer.commit()
        assert node_id in reader.find_nodes_by_property("city", "madrid")
        fresh = engine.begin(read_only=True)
        assert node_id not in fresh.find_nodes_by_property("city", "madrid")
        assert node_id in fresh.find_nodes_by_property("city", "lisbon")

    def test_relationship_type_and_property_lookup(self, engine):
        node_a = create_node(engine)
        node_b = create_node(engine)
        rel_id = create_relationship(engine, node_a, node_b, "KNOWS", since=2016)
        txn = engine.begin()
        assert rel_id in txn.find_relationships_by_type("KNOWS")
        assert rel_id in txn.find_relationships_by_property("since", 2016)

    def test_relationships_of_respects_snapshots(self, engine):
        node_a = create_node(engine)
        node_b = create_node(engine)
        rel_id = create_relationship(engine, node_a, node_b)
        reader = engine.begin(read_only=True)
        deleter = engine.begin()
        deleter.delete_relationship(rel_id)
        deleter.commit()
        assert [rel.rel_id for rel in reader.relationships_of(node_a)] == [rel_id]
        assert engine.begin().relationships_of(node_a) == []

    def test_iterator_merges_store_cache_and_own_writes(self, engine):
        persisted = create_node(engine, origin="store")
        txn = engine.begin()
        own = engine.allocate_node_id()
        txn.put_node(NodeData(own, {"Person"}, {"origin": "own"}), create=True)
        visible_ids = {node.node_id for node in txn.iter_nodes()}
        assert visible_ids == {persisted, own}
        txn.rollback()


class TestPersistence:
    def test_only_newest_committed_version_is_persisted(self, engine):
        node_id = create_node(engine, value=0)
        pinner = engine.begin(read_only=True)  # keeps old versions alive in cache
        for value in range(1, 4):
            writer = engine.begin()
            writer.put_node(writer.read_node(node_id).with_property("value", value))
            writer.commit()
        stored = engine.store.read_node(node_id)
        assert stored.properties["value"] == 3
        assert stored.properties[COMMIT_TS_PROPERTY] == engine.oracle.latest_commit_ts
        # History lives only in the version chain, never in the store.
        chain = engine.versions.get_chain(EntityKey.node(node_id))
        assert chain.version_count() == 4
        pinner.rollback()

    def test_committed_delete_removes_persistent_record(self, engine):
        node_id = create_node(engine)
        deleter = engine.begin()
        deleter.delete_node(node_id)
        deleter.commit()
        assert engine.store.read_node(node_id) is None

    def test_reserved_property_stripped_from_reads(self, engine):
        node_id = create_node(engine, name="x")
        txn = engine.begin()
        assert COMMIT_TS_PROPERTY not in txn.read_node(node_id).properties

    def test_engine_reopen_preserves_snapshot_timestamps(self, disk_db_path):
        store = StoreManager(disk_db_path, reuse_entity_ids=False)
        engine = SnapshotIsolationEngine(store)
        node_id = create_node(engine, name="persisted")
        store.close()

        store2 = StoreManager(disk_db_path, reuse_entity_ids=False)
        engine2 = SnapshotIsolationEngine(store2)
        txn = engine2.begin()
        assert txn.read_node(node_id).properties["name"] == "persisted"
        assert node_id in txn.find_nodes_by_label("Person")
        store2.close()


class TestEngineBookkeeping:
    def test_statistics_shape(self, engine):
        create_node(engine)
        stats = engine.statistics()
        assert stats["transactions"]["committed"] == 1
        assert "versions" in stats and "gc" in stats and "oracle" in stats

    def test_empty_transaction_commit_is_cheap(self, engine):
        txn = engine.begin()
        txn.commit()
        assert engine.stats.committed == 1
        assert engine.store.stats.batches_applied == 0

    def test_read_only_transaction_rejects_writes(self, engine):
        node_id = create_node(engine)
        reader = engine.begin(read_only=True)
        from repro.errors import ReadOnlyTransactionError

        with pytest.raises(ReadOnlyTransactionError):
            reader.put_node(NodeData(node_id, {"Person"}))

    def test_create_and_delete_in_same_transaction_leaves_no_trace(self, engine):
        txn = engine.begin()
        node_id = engine.allocate_node_id()
        txn.put_node(NodeData(node_id, {"Temp"}), create=True)
        txn.delete_node(node_id)
        txn.commit()
        assert engine.begin().read_node(node_id) is None
        assert engine.store.read_node(node_id) is None
