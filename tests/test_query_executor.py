"""End-to-end executor tests, parametrised over both engines."""

from __future__ import annotations

import pytest

from repro import Node, Relationship
from repro.errors import QueryExecutionError


@pytest.fixture
def social(any_db):
    """A small fixed social graph: 4 people, a city, and KNOWS edges."""
    db = any_db
    db.execute(
        "CREATE (a:Person {name: 'alice', age: 30}),"
        " (b:Person {name: 'bob', age: 40}),"
        " (c:Person {name: 'carol', age: 50}),"
        " (d:Person {name: 'dave', age: 60}),"
        " (m:City {name: 'madrid'})"
    )
    db.execute(
        "MATCH (a:Person {name:'alice'}), (b:Person {name:'bob'}) "
        "CREATE (a)-[:KNOWS {since: 2010}]->(b)"
    )
    db.execute(
        "MATCH (b:Person {name:'bob'}), (c:Person {name:'carol'}) "
        "CREATE (b)-[:KNOWS {since: 2012}]->(c)"
    )
    db.execute(
        "MATCH (c:Person {name:'carol'}), (d:Person {name:'dave'}) "
        "CREATE (c)-[:KNOWS {since: 2014}]->(d)"
    )
    db.execute(
        "MATCH (p:Person), (m:City) CREATE (p)-[:LIVES_IN]->(m)"
    )
    return db


class TestReadQueries:
    def test_match_all_with_order(self, social):
        rows = social.execute(
            "MATCH (p:Person) RETURN p.name ORDER BY p.name"
        ).rows()
        assert rows == [["alice"], ["bob"], ["carol"], ["dave"]]

    def test_where_filters(self, social):
        rows = social.execute(
            "MATCH (p:Person) WHERE p.age >= 40 AND p.name <> 'dave' "
            "RETURN p.name ORDER BY p.name"
        ).rows()
        assert rows == [["bob"], ["carol"]]

    def test_directed_expand(self, social):
        rows = social.execute(
            "MATCH (a:Person {name: 'bob'})-[:KNOWS]->(b) RETURN b.name"
        ).rows()
        assert rows == [["carol"]]

    def test_incoming_expand(self, social):
        rows = social.execute(
            "MATCH (a:Person {name: 'bob'})<-[:KNOWS]-(b) RETURN b.name"
        ).rows()
        assert rows == [["alice"]]

    def test_undirected_expand(self, social):
        rows = social.execute(
            "MATCH (a:Person {name: 'bob'})-[:KNOWS]-(b) "
            "RETURN b.name ORDER BY b.name"
        ).rows()
        assert rows == [["alice"], ["carol"]]

    def test_relationship_properties(self, social):
        rows = social.execute(
            "MATCH (:Person {name:'alice'})-[r:KNOWS]->() RETURN r.since"
        ).rows()
        assert rows == [[2010]]

    def test_relationship_property_pattern_filter(self, social):
        rows = social.execute(
            "MATCH (a)-[:KNOWS {since: 2012}]->(b) RETURN a.name, b.name"
        ).rows()
        assert rows == [["bob", "carol"]]

    def test_var_length_path(self, social):
        rows = social.execute(
            "MATCH (a:Person {name:'alice'})-[:KNOWS*1..3]->(x) "
            "RETURN x.name ORDER BY x.name"
        ).rows()
        assert rows == [["bob"], ["carol"], ["dave"]]

    def test_var_length_binds_relationship_list(self, social):
        record = social.execute(
            "MATCH (a:Person {name:'alice'})-[r:KNOWS*2..2]->(x) RETURN r, x.name"
        ).single()
        rels = record["r"]
        assert isinstance(rels, list) and len(rels) == 2
        assert all(isinstance(rel, Relationship) for rel in rels)
        assert record["x.name"] == "carol"

    def test_two_hop_chain_pattern(self, social):
        rows = social.execute(
            "MATCH (a)-[:KNOWS]->(b)-[:KNOWS]->(c) "
            "RETURN a.name, c.name ORDER BY a.name"
        ).rows()
        assert rows == [["alice", "carol"], ["bob", "dave"]]

    def test_cycle_pattern_requires_distinct_relationships(self, social):
        # a-[r1]-b-[r2]-a would need r1 == r2; isomorphism forbids it.
        rows = social.execute(
            "MATCH (a:Person {name:'alice'})-[:KNOWS]-(b)-[:KNOWS]-(a) RETURN b.name"
        ).rows()
        assert rows == []

    def test_multiple_patterns_cartesian(self, social):
        rows = social.execute(
            "MATCH (a:Person {name:'alice'}), (c:City) RETURN a.name, c.name"
        ).rows()
        assert rows == [["alice", "madrid"]]

    def test_node_handles_in_results(self, social):
        record = social.execute(
            "MATCH (p:Person {name: 'alice'}) RETURN p"
        ).single()
        node = record["p"]
        assert isinstance(node, Node)
        assert node.get("name") == "alice"

    def test_parameters_mapping_and_kwargs(self, social):
        by_mapping = social.execute(
            "MATCH (p:Person {name: $who}) RETURN p.age", {"who": "bob"}
        ).value()
        by_kwargs = social.execute(
            "MATCH (p:Person {name: $who}) RETURN p.age", who="bob"
        ).value()
        assert by_mapping == by_kwargs == 40

    def test_missing_parameter(self, social):
        with pytest.raises(QueryExecutionError):
            social.execute("MATCH (p:Person {name: $who}) RETURN p")

    def test_skip_limit(self, social):
        rows = social.execute(
            "MATCH (p:Person) RETURN p.name ORDER BY p.age SKIP 1 LIMIT 2"
        ).rows()
        assert rows == [["bob"], ["carol"]]

    def test_order_by_non_returned_expression(self, social):
        rows = social.execute(
            "MATCH (p:Person) RETURN p.name ORDER BY p.age DESC LIMIT 2"
        ).rows()
        assert rows == [["dave"], ["carol"]]

    def test_distinct(self, social):
        rows = social.execute(
            "MATCH (:Person)-[:LIVES_IN]->(c:City) RETURN DISTINCT c.name"
        ).rows()
        assert rows == [["madrid"]]

    def test_with_pipeline(self, social):
        rows = social.execute(
            "MATCH (p:Person) WITH p.name AS name, p.age AS age "
            "WHERE age > 35 RETURN name ORDER BY name"
        ).rows()
        assert rows == [["bob"], ["carol"], ["dave"]]

    def test_functions(self, social):
        record = social.execute(
            "MATCH (p:Person {name:'alice'})-[r:KNOWS]->() "
            "RETURN id(p), labels(p), type(r), size(p.name), "
            "coalesce(p.missing, 'fallback')"
        ).single()
        assert isinstance(record[0], int)
        assert record[1] == ["Person"]
        assert record[2] == "KNOWS"
        assert record[3] == 5
        assert record[4] == "fallback"

    def test_null_semantics(self, social):
        assert social.execute(
            "MATCH (p:Person) WHERE p.missing = 1 RETURN count(*)"
        ).value() == 0
        assert social.execute(
            "MATCH (p:Person) WHERE p.missing IS NULL RETURN count(*)"
        ).value() == 4

    def test_integer_division_is_exact_beyond_float_precision(self, any_db):
        value = any_db.execute("RETURN 36028797018963969 / 3").value()
        assert value == 12009599006321323
        assert any_db.execute("RETURN -7 / 2").value() == -3  # truncate to zero

    def test_arithmetic(self, social):
        record = social.execute(
            "MATCH (p:Person {name:'alice'}) "
            "RETURN p.age + 1, p.age * 2, p.age / 7, p.age % 7, -p.age"
        ).single()
        assert record.values() == [31, 60, 4, 2, -30]

    def test_string_operators(self, social):
        rows = social.execute(
            "MATCH (p:Person) WHERE p.name STARTS WITH 'c' OR p.name CONTAINS 'av' "
            "RETURN p.name ORDER BY p.name"
        ).rows()
        assert rows == [["carol"], ["dave"]]


class TestAggregates:
    def test_count_star_and_grouping(self, social):
        rows = social.execute(
            "MATCH (p:Person)-[:LIVES_IN]->(c:City) "
            "RETURN c.name AS city, count(*) AS n"
        ).rows()
        assert rows == [["madrid", 4]]

    def test_grouped_aggregate(self, social):
        rows = social.execute(
            "MATCH (p:Person)-[r:KNOWS]-() WITH p, count(r) AS degree "
            "RETURN p.name, degree ORDER BY degree DESC, p.name LIMIT 2"
        ).rows()
        assert rows == [["bob", 2], ["carol", 2]]

    def test_numeric_aggregates(self, social):
        record = social.execute(
            "MATCH (p:Person) RETURN sum(p.age), min(p.age), max(p.age), avg(p.age)"
        ).single()
        assert record.values() == [180, 30, 60, 45.0]

    def test_collect(self, social):
        value = social.execute(
            "MATCH (p:Person) WHERE p.age < 45 RETURN collect(p.name)"
        ).value()
        assert sorted(value) == ["alice", "bob"]

    def test_order_by_aggregate_expression(self, social):
        # The canonical top-N idiom: sorting by the aggregate itself, not an
        # alias; the planner rewrites it to the Aggregate output column.
        rows = social.execute(
            "MATCH (p:Person)-[r:KNOWS]-() "
            "RETURN p.name, count(r) ORDER BY count(r) DESC, p.name LIMIT 2"
        ).rows()
        assert rows == [["bob", 2], ["carol", 2]]

    def test_order_by_unprojected_aggregate_rejected(self, social):
        from repro.errors import QuerySyntaxError

        with pytest.raises(QuerySyntaxError):
            social.execute(
                "MATCH (p:Person) RETURN p.name ORDER BY count(*) DESC"
            )

    def test_order_by_group_key_expression(self, social):
        rows = social.execute(
            "MATCH (p:Person)-[:LIVES_IN]->(c:City) "
            "RETURN c.name, count(p) ORDER BY c.name"
        ).rows()
        assert rows == [["madrid", 4]]

    def test_count_distinct(self, social):
        value = social.execute(
            "MATCH (:Person)-[:LIVES_IN]->(c) RETURN count(DISTINCT c)"
        ).value()
        assert value == 1

    def test_aggregate_over_empty_input(self, social):
        record = social.execute(
            "MATCH (p:Person {name: 'nobody'}) RETURN count(p), sum(p.age)"
        ).single()
        assert record.values() == [0, 0]


class TestWriteQueries:
    def test_create_returns_stats(self, any_db):
        result = any_db.execute(
            "CREATE (a:Thing {x: 1})-[:REL {w: 2}]->(b:Thing {x: 2})"
        )
        assert result.stats.nodes_created == 2
        assert result.stats.relationships_created == 1
        assert result.stats.properties_set == 3
        assert result.stats.labels_added == 2
        assert result.stats.contains_updates

    def test_match_create(self, social):
        social.execute(
            "MATCH (a:Person {name:'dave'}), (b:Person {name:'alice'}) "
            "CREATE (a)-[:KNOWS {since: 2016}]->(b)"
        )
        assert social.execute(
            "MATCH (:Person {name:'dave'})-[r:KNOWS]->(:Person {name:'alice'}) "
            "RETURN r.since"
        ).value() == 2016

    def test_set_property_and_label(self, social):
        result = social.execute(
            "MATCH (p:Person {name:'alice'}) SET p.age = 31, p:VIP RETURN p.age"
        )
        assert result.value() == 31
        assert result.stats.properties_set == 1
        assert result.stats.labels_added == 1
        assert social.execute("MATCH (p:VIP) RETURN p.name").value() == "alice"

    def test_set_null_removes_property(self, social):
        social.execute("MATCH (p:Person {name:'alice'}) SET p.age = null")
        assert social.execute(
            "MATCH (p:Person {name:'alice'}) RETURN p.age IS NULL"
        ).value() is True

    def test_set_refreshes_sibling_bindings_of_same_node(self, any_db):
        any_db.execute("CREATE (:P {n: 'a'})")
        record = any_db.execute(
            "MATCH (a:P {n: 'a'}), (b:P {n: 'a'}) SET a.x = 5 RETURN b.x, a.x"
        ).single()
        assert record.values() == [5, 5]

    def test_set_computed_from_own_property(self, social):
        social.execute("MATCH (p:Person) SET p.age = p.age + 100")
        rows = social.execute(
            "MATCH (p:Person) RETURN p.age ORDER BY p.age"
        ).rows()
        assert rows == [[130], [140], [150], [160]]

    def test_delete_relationship(self, social):
        result = social.execute(
            "MATCH (:Person {name:'alice'})-[r:KNOWS]->() DELETE r"
        )
        assert result.stats.relationships_deleted == 1
        assert social.execute(
            "MATCH (:Person {name:'alice'})-[r:KNOWS]->() RETURN count(r)"
        ).value() == 0

    def test_delete_node_with_relationships_requires_detach(self, social):
        from repro.errors import ConstraintViolationError

        with pytest.raises(ConstraintViolationError):
            social.execute("MATCH (p:Person {name:'bob'}) DELETE p")

    def test_detach_delete(self, social):
        result = social.execute(
            "MATCH (p:Person {name:'bob'}) DETACH DELETE p"
        )
        assert result.stats.nodes_deleted == 1
        assert result.stats.relationships_deleted == 3  # 2 KNOWS + LIVES_IN
        assert social.execute("MATCH (p:Person) RETURN count(*)").value() == 3

    def test_create_per_matched_row(self, social):
        result = social.execute(
            "MATCH (p:Person) CREATE (s:Shadow {of: p.name})"
        )
        assert result.stats.nodes_created == 4
        assert social.execute("MATCH (s:Shadow) RETURN count(*)").value() == 4


class TestResultApi:
    def test_record_access(self, social):
        record = social.execute(
            "MATCH (p:Person {name:'alice'}) RETURN p.name AS name, p.age AS age"
        ).single()
        assert record["name"] == "alice"
        assert record[1] == 30
        assert record.as_dict() == {"name": "alice", "age": 30}
        assert record.keys() == ["name", "age"]
        with pytest.raises(KeyError):
            record["nope"]

    def test_values_column(self, social):
        names = social.execute(
            "MATCH (p:Person) RETURN p.name ORDER BY p.name"
        ).values()
        assert names == ["alice", "bob", "carol", "dave"]

    def test_single_raises_on_many(self, social):
        with pytest.raises(ValueError):
            social.execute("MATCH (p:Person) RETURN p").single()

    def test_lazy_result_can_be_partially_consumed(self, social):
        with social.begin(read_only=True) as tx:
            result = tx.execute("MATCH (p:Person) RETURN p.name ORDER BY p.name")
            iterator = iter(result)
            first = next(iterator)
            assert first["p.name"] == "alice"
            rest = [record["p.name"] for record in iterator]
            assert rest == ["bob", "carol", "dave"]

    def test_tx_execute_sees_own_writes(self, any_db):
        with any_db.transaction() as tx:
            tx.execute("CREATE (n:Tmp {v: 1})")
            assert tx.execute("MATCH (n:Tmp) RETURN count(*)").value() == 1
        assert any_db.execute("MATCH (n:Tmp) RETURN count(*)").value() == 1

    def test_db_execute_rolls_back_on_error(self, any_db):
        with pytest.raises(QueryExecutionError):
            any_db.execute("CREATE (n:Oops {v: 1}) RETURN n.v / 0")
        assert any_db.execute("MATCH (n:Oops) RETURN count(*)").value() == 0
