"""Metrics registry: instruments, labels, sharded merge, flattening."""

import math
import threading

import pytest

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    flatten_statistics,
    sanitize_metric_name,
)
from repro.workload.metrics import LatencyRecorder


class TestCounter:
    def test_increments_and_reads(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "ops")
        counter.inc()
        counter.inc(5)
        assert counter.value() == 6.0

    def test_get_or_create_dedupes_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("c_total") is registry.counter("c_total")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")

    def test_labelled_children_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("aborts_total", labelnames=("reason",))
        counter.labels(reason="deadlock").inc()
        counter.labels(reason="deadlock").inc()
        counter.labels(reason="ww").inc()
        assert counter.labels(reason="deadlock").value() == 2.0
        assert counter.labels(reason="ww").value() == 1.0

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c_total").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value() == 7.0

    def test_function_gauge_reads_callback(self):
        registry = MetricsRegistry()
        backing = {"value": 3}
        gauge = registry.gauge("live")
        gauge.set_function(lambda: backing["value"])
        assert gauge.value() == 3.0
        backing["value"] = 9
        assert gauge.value() == 9.0

    def test_failing_callback_reads_nan(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("broken")
        gauge.set_function(lambda: 1 / 0)
        assert math.isnan(gauge.value())


class TestHistogram:
    def test_bucketing_and_totals(self):
        histogram = Histogram(buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count() == 3
        assert histogram.sum() == 55.5
        assert histogram.bucket_counts() == [1, 1, 1]  # <=1, <=10, +Inf

    def test_default_buckets_span_latency_range(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-5)
        assert DEFAULT_LATENCY_BUCKETS[-1] == pytest.approx(100.0)
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)

    def test_exact_mode_percentiles_interpolate(self):
        histogram = Histogram(track_samples=True)
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.percentile(0.50) == pytest.approx(50.5)
        assert histogram.percentile(0.99) == pytest.approx(99.01)
        assert histogram.percentile(1.0) == pytest.approx(100.0)
        assert histogram.percentile(0.0) == pytest.approx(1.0)

    def test_bucket_mode_percentile_is_bounded_by_bucket(self):
        histogram = Histogram(buckets=(0.1, 1.0, 10.0))
        for _ in range(100):
            histogram.observe(0.5)
        p50 = histogram.percentile(0.50)
        assert 0.1 <= p50 <= 1.0

    def test_summary_keys(self):
        histogram = Histogram(track_samples=True)
        histogram.observe(2.0)
        summary = histogram.summary()
        assert set(summary) == {"count", "mean", "p50", "p95", "p99", "max"}
        assert summary["count"] == 1
        assert summary["max"] == 2.0


class TestShardedMerge:
    """The lock-free shard design must never lose increments."""

    def test_concurrent_increments_with_concurrent_reads(self):
        registry = MetricsRegistry()
        counter = registry.counter("hammered_total")
        histogram = registry.histogram("timed_seconds")
        threads_n, per_thread = 8, 5_000
        start = threading.Barrier(threads_n + 2)  # writers + watcher + main
        stop_reading = threading.Event()
        errors = []

        def writer():
            try:
                start.wait()
                for _ in range(per_thread):
                    counter.inc()
                    histogram.observe(0.001)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)

        def reader():
            try:
                start.wait()
                while not stop_reading.is_set():
                    # Merges must see a monotonically consistent view and
                    # never raise while writers mutate their shards.
                    assert counter.value() >= 0
                    registry.snapshot()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)

        writers = [threading.Thread(target=writer) for _ in range(threads_n)]
        watcher = threading.Thread(target=reader)
        for thread in writers:
            thread.start()
        watcher.start()
        start.wait()
        for thread in writers:
            thread.join(timeout=60)
        stop_reading.set()
        watcher.join(timeout=60)
        assert not errors
        assert counter.value() == threads_n * per_thread
        assert histogram.count() == threads_n * per_thread

    def test_counts_survive_thread_death(self):
        registry = MetricsRegistry()
        counter = registry.counter("short_lived_total")

        def worker():
            counter.inc(10)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert counter.value() == 10.0


class TestCollectorsAndSnapshot:
    def test_collector_output_in_snapshot(self):
        registry = MetricsRegistry()
        registry.register_collector(lambda: {"extra_metric": 42.0})
        snapshot = registry.snapshot()
        assert snapshot["collected"]["extra_metric"] == 42.0

    def test_failing_collector_skipped(self):
        registry = MetricsRegistry()
        registry.register_collector(lambda: 1 / 0)
        registry.register_collector(lambda: {"fine": 1.0})
        assert registry.snapshot()["collected"] == {"fine": 1.0}

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help here").inc(3)
        registry.histogram("h_seconds").observe(0.02)
        snapshot = registry.snapshot()
        counter_info = snapshot["instruments"]["c_total"]
        assert counter_info["type"] == "counter"
        assert counter_info["help"] == "help here"
        assert counter_info["samples"][0]["value"] == 3.0
        histogram_info = snapshot["instruments"]["h_seconds"]
        sample = histogram_info["samples"][0]
        assert sample["count"] == 1
        assert "+Inf" in sample["buckets"]


class TestFlattening:
    def test_numeric_leaves_flattened_with_prefix(self):
        flat = flatten_statistics(
            {"engine": {"transactions": {"committed": 4, "rate": 0.5}},
             "name": "ignored-string"}
        )
        assert flat["repro_stat_engine_transactions_committed"] == 4.0
        assert flat["repro_stat_engine_transactions_rate"] == 0.5
        assert not any("name" in key for key in flat)

    def test_booleans_become_zero_one(self):
        flat = flatten_statistics({"wal": {"enabled": True}})
        assert flat["repro_stat_wal_enabled"] == 1.0

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("a-b.c d") == "a_b_c_d"
        assert sanitize_metric_name("9lives") == "_9lives"


class TestLatencyRecorderRegression:
    """The bench recorder pins the interpolated percentile definition."""

    def test_percentiles_pinned(self):
        recorder = LatencyRecorder()
        recorder.extend([float(v) for v in range(1, 101)])
        assert recorder.count() == 100
        assert recorder.percentile(0.50) == pytest.approx(50.5)
        assert recorder.percentile(0.95) == pytest.approx(95.05)
        assert recorder.percentile(0.99) == pytest.approx(99.01)
        assert recorder.mean() == pytest.approx(50.5)

    def test_summary_matches_histogram_summary(self):
        recorder = LatencyRecorder()
        for value in (0.1, 0.2, 0.3):
            recorder.record(value)
        summary = recorder.summary()
        assert summary["count"] == 3
        assert summary["p50"] == pytest.approx(0.2)
        assert summary["max"] == pytest.approx(0.3)

    def test_empty_recorder_is_all_zeros(self):
        recorder = LatencyRecorder()
        assert recorder.percentile(0.99) == 0.0
        assert recorder.mean() == 0.0
        assert recorder.samples() == []
