"""Tests for the GraphDatabase facade."""

import pytest

from repro import ConflictPolicy, GraphDatabase, IsolationLevel, ReproError


class TestConstruction:
    def test_isolation_accepts_strings(self):
        db = GraphDatabase.in_memory(isolation="read_committed")
        assert db.isolation_level is IsolationLevel.READ_COMMITTED
        assert not db.is_snapshot_isolation
        db.close()

    def test_serializable_accepted(self):
        db = GraphDatabase.in_memory(isolation="serializable")
        assert db.isolation_level is IsolationLevel.SERIALIZABLE
        assert db.is_snapshot_isolation  # SSI runs the MVCC engine
        db.close()

    def test_unknown_isolation_rejected(self):
        with pytest.raises(ValueError):
            GraphDatabase.in_memory(isolation="chaos_mode")

    def test_unknown_conflict_policy_rejected(self):
        with pytest.raises(ValueError):
            GraphDatabase.in_memory(conflict_policy="last_writer_wins")

    def test_conflict_policy_accepts_string(self):
        db = GraphDatabase.in_memory(conflict_policy="first_committer_wins")
        assert db.engine.conflicts.policy is ConflictPolicy.FIRST_COMMITTER_WINS
        db.close()

    def test_context_manager_closes(self):
        with GraphDatabase.in_memory() as db:
            with db.transaction() as tx:
                tx.create_node(["Person"])
        with pytest.raises(ReproError):
            db.begin()

    def test_close_is_idempotent(self, si_db):
        si_db.close()
        si_db.close()


class TestMaintenance:
    def test_statistics_shape(self, any_db):
        with any_db.transaction() as tx:
            tx.create_node(["Person"])
        stats = any_db.statistics()
        assert stats["isolation"] == any_db.isolation_level.value
        assert "store" in stats and "page_cache" in stats and "engine" in stats

    def test_run_gc_only_for_snapshot(self, si_db, rc_db):
        assert si_db.run_gc() is not None
        assert rc_db.run_gc() is None
        with pytest.raises(ReproError):
            rc_db.create_vacuum_collector()
        assert si_db.create_vacuum_collector() is not None

    def test_checkpoint(self, any_db):
        with any_db.transaction() as tx:
            tx.create_node(["Person"])
        any_db.checkpoint()
        assert any_db.store.wal.size_bytes() == 0

    def test_gc_every_n_commits(self):
        db = GraphDatabase.in_memory(gc_every_n_commits=2)
        with db.transaction() as tx:
            node = tx.create_node(["Item"], {"v": 0})
        for value in range(3):
            with db.transaction() as tx:
                tx.set_node_property(node.id, "v", value)
        assert db.engine.gc.collections_run >= 1
        db.close()

    def test_read_only_commits_never_trigger_gc(self):
        db = GraphDatabase.in_memory(gc_every_n_commits=1)
        with db.transaction() as tx:
            node = tx.create_node(["Item"], {"v": 0})
        passes_after_write = db.engine.gc.collections_run
        # A read-heavy workload has nothing for GC to reclaim, so no-write
        # commits must not count toward the trigger.
        for _ in range(5):
            with db.transaction(read_only=True) as tx:
                tx.get_node(node.id)
        assert db.engine.gc.collections_run == passes_after_write
        with db.transaction() as tx:
            tx.set_node_property(node.id, "v", 1)
        assert db.engine.gc.collections_run == passes_after_write + 1
        db.close()


class TestPersistence:
    @pytest.mark.parametrize("isolation", [IsolationLevel.SNAPSHOT, IsolationLevel.READ_COMMITTED])
    def test_reopen_from_disk(self, disk_db_path, isolation):
        db = GraphDatabase.open(disk_db_path, isolation=isolation)
        with db.transaction() as tx:
            alice = tx.create_node(["Person"], {"name": "Alice"})
            bob = tx.create_node(["Person"], {"name": "Bob"})
            tx.create_relationship(alice, bob, "KNOWS", {"since": 2016})
        db.close()

        reopened = GraphDatabase.open(disk_db_path, isolation=isolation)
        with reopened.transaction(read_only=True) as tx:
            people = tx.find_nodes(label="Person")
            assert {p["name"] for p in people} == {"Alice", "Bob"}
            rels = tx.relationships_of(people[0].id)
            assert rels[0]["since"] == 2016
        reopened.close()

    def test_snapshot_semantics_survive_reopen(self, disk_db_path):
        db = GraphDatabase.open(disk_db_path)
        with db.transaction() as tx:
            node_id = tx.create_node(["Item"], {"v": 1}).id
        db.close()

        reopened = GraphDatabase.open(disk_db_path)
        reader = reopened.begin(read_only=True)
        with reopened.transaction() as tx:
            tx.set_node_property(node_id, "v", 2)
        assert reader.get_node(node_id)["v"] == 1
        reader.rollback()
        with reopened.transaction(read_only=True) as tx:
            assert tx.get_node(node_id)["v"] == 2
        reopened.close()
