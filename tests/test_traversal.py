"""Tests for the traversal framework."""

import pytest

from repro.api.traversal import (
    Order,
    TraversalDescription,
    Uniqueness,
    reachable_node_ids,
    shortest_path,
    two_step_neighbourhood,
)
from repro.graph.entity import Direction
from repro.workload.generators import build_chain_graph, build_grid_graph


@pytest.fixture
def chain(si_db):
    return build_chain_graph(si_db, length=6)


class TestTraversalDescription:
    def test_breadth_first_visits_by_depth(self, si_db, chain):
        with si_db.transaction(read_only=True) as tx:
            paths = list(TraversalDescription().traverse(tx, chain.node_ids[0]))
            depths = [path.length for path in paths]
            assert depths == sorted(depths)
            assert {path.end_node.id for path in paths} == set(chain.node_ids)

    def test_depth_first_order(self, si_db, chain):
        with si_db.transaction(read_only=True) as tx:
            description = TraversalDescription().depth_first()
            assert description.order is Order.DEPTH_FIRST
            paths = list(description.traverse(tx, chain.node_ids[0]))
            assert {path.end_node.id for path in paths} == set(chain.node_ids)

    def test_max_depth_limits_expansion(self, si_db, chain):
        with si_db.transaction(read_only=True) as tx:
            paths = list(TraversalDescription().limit_depth(2).traverse(tx, chain.node_ids[0]))
            assert max(path.length for path in paths) == 2
            assert len(paths) == 3

    def test_min_depth_filters_results(self, si_db, chain):
        with si_db.transaction(read_only=True) as tx:
            paths = list(TraversalDescription().from_depth(2).traverse(tx, chain.node_ids[0]))
            assert all(path.length >= 2 for path in paths)

    def test_direction_and_type_filters(self, si_db, chain):
        with si_db.transaction(read_only=True) as tx:
            start = chain.node_ids[3]
            outgoing = TraversalDescription().relationships("NEXT", direction=Direction.OUTGOING)
            reached = {path.end_node.id for path in outgoing.traverse(tx, start)}
            assert reached == set(chain.node_ids[3:])
            wrong_type = TraversalDescription().relationships("MISSING")
            assert [p.end_node.id for p in wrong_type.traverse(tx, start)] == [start]

    def test_evaluator_controls_inclusion_and_expansion(self, si_db, chain):
        with si_db.transaction(read_only=True) as tx:
            def only_even_positions(path):
                include = path.end_node.get("position", 0) % 2 == 0
                return include, path.length < 3
            description = TraversalDescription().evaluate_with(only_even_positions)
            positions = [path.end_node["position"] for path in description.traverse(tx, chain.node_ids[0])]
            assert positions == [0, 2]

    def test_uniqueness_none_still_terminates(self, si_db, chain):
        with si_db.transaction(read_only=True) as tx:
            description = TraversalDescription().unique(Uniqueness.NONE).limit_depth(3)
            paths = list(description.traverse(tx, chain.node_ids[0]))
            assert paths  # terminates and yields something

    def test_nodes_helper(self, si_db, chain):
        with si_db.transaction(read_only=True) as tx:
            nodes = list(TraversalDescription().nodes(tx, chain.node_ids[0]))
            assert {node.id for node in nodes} == set(chain.node_ids)

    def test_path_properties(self, si_db, chain):
        with si_db.transaction(read_only=True) as tx:
            longest = max(TraversalDescription().traverse(tx, chain.node_ids[0]), key=len)
            assert longest.start_node.id == chain.node_ids[0]
            assert longest.end_node.id == chain.node_ids[-1]
            assert longest.length == 5
            assert longest.node_ids() == chain.node_ids


class TestDerivedAlgorithms:
    def test_reachable_node_ids_with_depth(self, si_db, chain):
        with si_db.transaction(read_only=True) as tx:
            assert reachable_node_ids(tx, chain.node_ids[0], max_depth=2) == set(chain.node_ids[:3])
            assert reachable_node_ids(tx, chain.node_ids[0]) == set(chain.node_ids)

    def test_shortest_path_on_grid(self, si_db):
        grid = build_grid_graph(si_db, width=4, height=4)
        with si_db.transaction(read_only=True) as tx:
            corner_a = grid.node_ids[0]
            corner_b = grid.node_ids[-1]
            path = shortest_path(tx, corner_a, corner_b)
            assert path is not None
            assert path.length == 6  # manhattan distance on a 4x4 grid
            assert shortest_path(tx, corner_a, corner_a).length == 0

    def test_shortest_path_missing(self, si_db):
        with si_db.transaction() as tx:
            a = tx.create_node().id
            b = tx.create_node().id
        with si_db.transaction(read_only=True) as tx:
            assert shortest_path(tx, a, b) is None

    def test_two_step_neighbourhood(self, si_db):
        with si_db.transaction() as tx:
            hub = tx.create_node(["Person"], {"name": "hub"})
            friends = [tx.create_node(["Person"]) for _ in range(3)]
            fofs = [tx.create_node(["Person"]) for _ in range(2)]
            for friend in friends:
                tx.create_relationship(hub, friend, "KNOWS")
            tx.create_relationship(friends[0], fofs[0], "KNOWS")
            tx.create_relationship(friends[1], fofs[1], "KNOWS")
            hub_id = hub.id
            friend_ids = {f.id for f in friends}
            fof_ids = {f.id for f in fofs}
        with si_db.transaction(read_only=True) as tx:
            first, second = two_step_neighbourhood(tx, hub_id, rel_types=["KNOWS"])
            assert first == friend_ids
            assert second == fof_ids
