"""Unit tests for the write-ahead log."""

import os

from repro.graph.wal import WriteAheadLog


class TestWriteAheadLogInMemory:
    def test_append_and_replay(self):
        wal = WriteAheadLog(None)
        wal.append_commit(1, [{"op": "write_node", "node_id": 1}])
        wal.append_commit(2, [{"op": "write_node", "node_id": 2}, {"op": "delete_node", "node_id": 1}])
        batches = list(wal.replay())
        assert len(batches) == 2
        assert batches[0] == [{"op": "write_node", "node_id": 1}]
        assert len(batches[1]) == 2

    def test_checkpoint_clears_log(self):
        wal = WriteAheadLog(None)
        wal.append_commit(1, [{"op": "write_node", "node_id": 1}])
        wal.checkpoint()
        assert list(wal.replay()) == []
        assert wal.size_bytes() == 0

    def test_entry_count(self):
        wal = WriteAheadLog(None)
        wal.append_commit(1, [{"op": "a"}, {"op": "b"}])
        # BEGIN + 2 operations + COMMIT
        assert wal.entry_count() == 4

    def test_empty_batch_replay(self):
        wal = WriteAheadLog(None)
        wal.append_commit(5, [])
        assert list(wal.replay()) == [[]]


class TestWriteAheadLogOnDisk:
    def test_persists_across_instances(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append_commit(1, [{"op": "write_node", "node_id": 7}])
        wal.close()

        reopened = WriteAheadLog(path)
        batches = list(reopened.replay())
        assert batches == [[{"op": "write_node", "node_id": 7}]]
        reopened.close()

    def test_torn_tail_is_ignored(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append_commit(1, [{"op": "write_node", "node_id": 1}])
        wal.append_commit(2, [{"op": "write_node", "node_id": 2}])
        wal.close()

        # Truncate mid-way through the second batch to simulate a crash while
        # appending.
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 7)

        reopened = WriteAheadLog(path)
        batches = list(reopened.replay())
        assert batches == [[{"op": "write_node", "node_id": 1}]]
        reopened.close()

    def test_corrupted_entry_stops_replay(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append_commit(1, [{"op": "first"}])
        first_size = wal.size_bytes()
        wal.append_commit(2, [{"op": "second"}])
        wal.close()

        # Flip a byte inside the second batch.
        with open(path, "r+b") as handle:
            handle.seek(first_size + 3)
            handle.write(b"\xff")

        reopened = WriteAheadLog(path)
        batches = list(reopened.replay())
        assert batches == [[{"op": "first"}]]
        reopened.close()

    def test_batch_without_commit_not_replayed(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append_commit(1, [{"op": "keep"}])
        wal.close()
        # Append a BEGIN+OPERATION with no COMMIT by crafting a partial batch:
        # easiest is appending a full batch and chopping off the commit frame.
        wal2 = WriteAheadLog(path)
        before = wal2.size_bytes()
        wal2.append_commit(2, [{"op": "drop"}])
        wal2.close()
        after = os.path.getsize(path)
        with open(path, "r+b") as handle:
            # The COMMIT frame is the last 18 bytes (header + crc, no payload).
            handle.truncate(after - 18)
        reopened = WriteAheadLog(path)
        assert list(reopened.replay()) == [[{"op": "keep"}]]
        reopened.close()
        assert before > 0
