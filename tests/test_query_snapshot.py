"""Query snapshot consistency: a long query observes exactly one snapshot.

The satellite requirement for the query subsystem: a query iterated lazily
while a concurrent writer commits must return results from exactly one
snapshot under snapshot isolation (zero phantoms, zero torn reads), and must
at least complete under read committed (where the anomaly is expected and is
what experiments E1/E2 measure).
"""

from __future__ import annotations

import threading

import pytest

from repro import GraphDatabase, IsolationLevel


ITEMS = 60


def _build_items(db, count=ITEMS):
    with db.transaction() as tx:
        for index in range(count):
            tx.create_node(["Item"], {"value": 0, "index": index})


def _commit_interference(db):
    """A committed writer: inserts phantoms and updates every existing Item."""
    with db.transaction() as tx:
        for index in range(20):
            tx.create_node(["Item"], {"value": 1, "index": 1000 + index})
        for node in tx.find_nodes(label="Item", key="value", value=0):
            tx.set_node_property(node, "value", 1)


class TestSnapshotConsistency:
    def test_si_long_query_sees_one_snapshot(self, si_db):
        _build_items(si_db)
        with si_db.begin(read_only=True) as tx:
            result = tx.execute("MATCH (n:Item) RETURN n.value AS v")
            iterator = iter(result)
            head = [next(iterator) for _ in range(10)]
            # A full write transaction commits mid-iteration.
            _commit_interference(si_db)
            tail = list(iterator)
        values = [record["v"] for record in head + tail]
        # Zero phantoms: exactly the pre-existing items, all pre-update values.
        assert len(values) == ITEMS
        assert values == [0] * ITEMS

    def test_si_aggregate_spanning_commit(self, si_db):
        _build_items(si_db)
        with si_db.begin(read_only=True) as tx:
            result = tx.execute("MATCH (n:Item) RETURN n.index AS i ORDER BY i")
            iterator = iter(result)
            first = next(iterator)
            _commit_interference(si_db)
            rest = list(iterator)
            # A second query in the same transaction sees the same snapshot:
            # no phantoms even though the writer has committed.
            assert tx.execute("MATCH (n:Item) RETURN count(*)").value() == ITEMS
            assert (
                tx.execute(
                    "MATCH (n:Item) WHERE n.value = 1 RETURN count(*)"
                ).value()
                == 0
            )
        assert [first["i"]] + [record["i"] for record in rest] == list(range(ITEMS))

    def test_si_var_length_traversal_spanning_commit(self, si_db):
        # A chain a0 -> a1 -> ... -> a9; mid-iteration, a writer inserts a
        # branch; the traversal must not see the new relationships.
        with si_db.transaction() as tx:
            previous = None
            first_id = None
            for index in range(10):
                node = tx.create_node(["Step"], {"pos": index})
                if first_id is None:
                    first_id = node.id
                if previous is not None:
                    tx.create_relationship(previous, node, "NEXT")
                previous = node.id
        with si_db.begin(read_only=True) as tx:
            result = tx.execute(
                "MATCH (s:Step {pos: 0})-[:NEXT*1..20]->(x) RETURN x.pos AS pos"
            )
            iterator = iter(result)
            first = next(iterator)
            with si_db.transaction() as wtx:
                start = wtx.find_nodes(label="Step", key="pos", value=0)[0]
                branch = wtx.create_node(["Step"], {"pos": 100})
                wtx.create_relationship(start, branch, "NEXT")
            rest = [record["pos"] for record in iterator]
        positions = sorted([first["pos"]] + rest)
        assert positions == list(range(1, 10))  # no pos=100 phantom

    def test_rc_long_query_completes(self, rc_db):
        # Read committed gives no snapshot guarantee — the paper's baseline.
        # The query must still complete and return at least the stable rows.
        _build_items(rc_db)
        with rc_db.begin(read_only=True) as tx:
            result = tx.execute("MATCH (n:Item) RETURN n.value AS v")
            iterator = iter(result)
            head = [next(iterator) for _ in range(10)]
            _commit_interference(rc_db)
            tail = list(iterator)
        assert len(head) + len(tail) >= 10

    def test_rc_repeated_count_can_phantom(self, rc_db):
        # Demonstrates the anomaly the SI engine removes: two counts in one
        # read-committed transaction straddling a commit disagree.
        _build_items(rc_db)
        with rc_db.begin(read_only=True) as tx:
            before = tx.execute("MATCH (n:Item) RETURN count(*)").value()
            _commit_interference(rc_db)
            after = tx.execute("MATCH (n:Item) RETURN count(*)").value()
        assert before == ITEMS
        assert after == ITEMS + 20  # the phantom, visible by design

    def test_si_query_against_racing_writers(self, si_db):
        """Stress variant: many commits race a slowly-iterated query."""
        _build_items(si_db)
        stop = threading.Event()

        def writer():
            index = 0
            while not stop.is_set():
                with si_db.transaction() as tx:
                    tx.create_node(["Item"], {"value": 2, "index": 2000 + index})
                index += 1

        thread = threading.Thread(target=writer, daemon=True)
        with si_db.begin(read_only=True) as tx:
            result = tx.execute("MATCH (n:Item) RETURN n.value AS v")
            iterator = iter(result)
            collected = [next(iterator)]
            thread.start()
            try:
                collected.extend(iterator)
            finally:
                stop.set()
                thread.join()
        assert len(collected) == ITEMS
        assert all(record["v"] == 0 for record in collected)
