"""Unit tests for the token registries."""

import pytest

from repro.errors import ReservedNameError
from repro.graph.tokens import TokenRegistry, TokenSet


class TestTokenRegistry:
    def test_ids_are_dense_and_stable(self):
        registry = TokenRegistry("label")
        assert registry.get_or_create("Person") == 0
        assert registry.get_or_create("City") == 1
        assert registry.get_or_create("Person") == 0
        assert len(registry) == 2

    def test_name_lookup(self):
        registry = TokenRegistry("label")
        registry.get_or_create("Person")
        assert registry.name_of(0) == "Person"
        assert registry.maybe_id("Person") == 0
        assert registry.maybe_id("Missing") is None

    def test_unknown_id_raises(self):
        registry = TokenRegistry("label")
        with pytest.raises(KeyError):
            registry.name_of(3)

    def test_contains_and_iteration(self):
        registry = TokenRegistry("label")
        registry.get_or_create("A")
        registry.get_or_create("B")
        assert "A" in registry
        assert list(registry) == ["A", "B"]
        assert registry.names() == ["A", "B"]

    def test_on_create_callback_fires_once_per_token(self):
        created = []
        registry = TokenRegistry("label", on_create=lambda tid, name: created.append((tid, name)))
        registry.get_or_create("A")
        registry.get_or_create("A")
        registry.get_or_create("B")
        assert created == [(0, "A"), (1, "B")]

    def test_load_requires_dense_ids(self):
        registry = TokenRegistry("label")
        registry.load(0, "A")
        with pytest.raises(ValueError):
            registry.load(2, "C")

    def test_load_rejects_duplicate_names(self):
        registry = TokenRegistry("label")
        registry.load(0, "A")
        with pytest.raises(ValueError):
            registry.load(1, "A")

    def test_load_does_not_fire_callback(self):
        created = []
        registry = TokenRegistry("label", on_create=lambda tid, name: created.append(name))
        registry.load(0, "A")
        assert created == []

    def test_invalid_names_rejected(self):
        registry = TokenRegistry("label")
        with pytest.raises(ValueError):
            registry.get_or_create("")
        with pytest.raises(ValueError):
            registry.get_or_create(123)

    def test_reserved_prefix_rejected_when_configured(self):
        registry = TokenRegistry("label", reserved_prefix="_si_")
        with pytest.raises(ReservedNameError):
            registry.get_or_create("_si_internal")


class TestTokenSet:
    def test_bundles_three_registries(self):
        tokens = TokenSet()
        tokens.labels.get_or_create("Person")
        tokens.relationship_types.get_or_create("KNOWS")
        tokens.property_keys.get_or_create("name")
        tokens.property_keys.get_or_create("age")
        assert tokens.snapshot_counts() == {
            "labels": 1,
            "relationship_types": 1,
            "property_keys": 2,
        }
