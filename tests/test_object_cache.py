"""Unit tests for the object cache."""

import pytest

from repro.graph.entity import EntityKey
from repro.graph.object_cache import ObjectCache


class TestObjectCache:
    def test_put_get(self):
        cache = ObjectCache(capacity=4)
        key = EntityKey.node(1)
        cache.put(key, "value")
        assert cache.get(key) == "value"
        assert key in cache
        assert len(cache) == 1

    def test_miss_returns_none_and_counts(self):
        cache = ObjectCache(capacity=4)
        assert cache.get(EntityKey.node(9)) is None
        assert cache.stats.misses == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ObjectCache(capacity=0)

    def test_lru_eviction(self):
        cache = ObjectCache(capacity=2)
        keys = [EntityKey.node(index) for index in range(3)]
        cache.put(keys[0], "a")
        cache.put(keys[1], "b")
        cache.get(keys[0])  # make key0 most recently used
        cache.put(keys[2], "c")
        assert keys[1] not in cache
        assert keys[0] in cache
        assert cache.stats.evictions == 1

    def test_pinned_entries_survive_eviction(self):
        cache = ObjectCache(capacity=2)
        pinned = EntityKey.node(0)
        cache.put(pinned, "keep me")
        cache.pin(pinned)
        for index in range(1, 5):
            cache.put(EntityKey.node(index), index)
        assert pinned in cache
        assert cache.pinned_count() == 1
        cache.unpin(pinned)
        assert cache.pinned_count() == 0

    def test_evictable_predicate_respected(self):
        cache = ObjectCache(capacity=2, evictable=lambda key, value: value != "sticky")
        cache.put(EntityKey.node(0), "sticky")
        for index in range(1, 5):
            cache.put(EntityKey.node(index), "normal")
        assert cache.get(EntityKey.node(0)) == "sticky"

    def test_get_or_create(self):
        cache = ObjectCache(capacity=4)
        key = EntityKey.node(1)
        created = cache.get_or_create(key, lambda: ["fresh"])
        again = cache.get_or_create(key, lambda: ["other"])
        assert created is again

    def test_invalidate(self):
        cache = ObjectCache(capacity=4)
        key = EntityKey.node(1)
        cache.put(key, 1)
        cache.invalidate(key)
        assert key not in cache

    def test_clear(self):
        cache = ObjectCache(capacity=4)
        cache.put(EntityKey.node(1), 1)
        cache.pin(EntityKey.node(1))
        cache.clear()
        assert len(cache) == 0
        assert cache.pinned_count() == 0

    def test_items_and_keys_are_snapshots(self):
        cache = ObjectCache(capacity=4)
        cache.put(EntityKey.node(1), "a")
        items = list(cache.items())
        keys = list(cache.keys())
        assert items == [(EntityKey.node(1), "a")]
        assert keys == [EntityKey.node(1)]

    def test_hit_ratio(self):
        cache = ObjectCache(capacity=4)
        key = EntityKey.node(1)
        cache.put(key, 1)
        cache.get(key)
        cache.get(EntityKey.node(2))
        assert 0.0 < cache.stats.hit_ratio() < 1.0
        assert "hit_ratio" in cache.stats.as_dict()
