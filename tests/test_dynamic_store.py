"""Unit tests for the dynamic (chained block) store."""

import pytest

from repro.graph.dynamic_store import DynamicStore
from repro.graph.paging import InMemoryBackend, PageCache, PagedFile
from repro.graph.records import NULL_REF, DynamicRecord


def make_dynamic_store():
    cache = PageCache(capacity_pages=128, page_size=256)
    return DynamicStore(PagedFile(InMemoryBackend(), cache), "test-dynamic")


class TestDynamicStore:
    def test_small_payload_roundtrip(self):
        store = make_dynamic_store()
        ref = store.write_bytes(b"hello")
        assert store.read_bytes(ref) == b"hello"
        assert store.blocks_in_use() == 1

    def test_empty_payload_gets_a_block(self):
        store = make_dynamic_store()
        ref = store.write_bytes(b"")
        assert ref != NULL_REF
        assert store.read_bytes(ref) == b""

    def test_null_ref_reads_empty(self):
        store = make_dynamic_store()
        assert store.read_bytes(NULL_REF) == b""

    def test_large_payload_spans_blocks(self):
        store = make_dynamic_store()
        payload = bytes(range(256)) * 3
        ref = store.write_bytes(payload)
        assert store.read_bytes(ref) == payload
        assert store.blocks_in_use() > 1

    def test_free_chain_releases_blocks_for_reuse(self):
        store = make_dynamic_store()
        payload = b"x" * (DynamicRecord.PAYLOAD_SIZE * 2 + 3)
        ref = store.write_bytes(payload)
        blocks_before = store.blocks_in_use()
        freed = store.free_chain(ref)
        assert freed == blocks_before
        assert store.blocks_in_use() == 0
        # New writes reuse the freed block ids.
        new_ref = store.write_bytes(b"abc")
        assert new_ref == ref or new_ref < blocks_before

    def test_free_null_chain_is_noop(self):
        store = make_dynamic_store()
        assert store.free_chain(NULL_REF) == 0

    def test_rewrite_chain_replaces_content(self):
        store = make_dynamic_store()
        ref = store.write_bytes(b"old content that is long enough" * 4)
        new_ref = store.rewrite_chain(ref, b"new")
        assert store.read_bytes(new_ref) == b"new"

    def test_multiple_independent_chains(self):
        store = make_dynamic_store()
        refs = [store.write_bytes(f"payload-{index}".encode() * 10) for index in range(5)]
        for index, ref in enumerate(refs):
            assert store.read_bytes(ref) == f"payload-{index}".encode() * 10
