"""Unit tests for record formats and the generic record store."""

import pytest

from repro.errors import StoreCorruptionError
from repro.graph.paging import InMemoryBackend, PageCache, PagedFile
from repro.graph.records import (
    NULL_REF,
    DynamicRecord,
    NodeRecord,
    PropertyRecord,
    RecordStore,
    RelationshipRecord,
    TokenRecord,
)


def make_store(record_class, name="test"):
    cache = PageCache(capacity_pages=64, page_size=256)
    return RecordStore(PagedFile(InMemoryBackend(), cache), record_class, name)


class TestRecordRoundTrips:
    def test_node_record(self):
        record = NodeRecord(in_use=True, first_rel=12, first_prop=34, label_ref=56)
        packed = record.pack()
        assert len(packed) == NodeRecord.RECORD_SIZE
        assert NodeRecord.unpack(packed) == record

    def test_node_record_defaults(self):
        packed = NodeRecord().pack()
        restored = NodeRecord.unpack(packed)
        assert not restored.in_use
        assert restored.first_rel == NULL_REF

    def test_relationship_record(self):
        record = RelationshipRecord(
            in_use=True,
            start_node=1,
            end_node=2,
            type_id=3,
            start_prev=4,
            start_next=5,
            end_prev=6,
            end_next=7,
            first_prop=8,
        )
        assert len(record.pack()) == RelationshipRecord.RECORD_SIZE
        assert RelationshipRecord.unpack(record.pack()) == record

    def test_property_record(self):
        record = PropertyRecord(
            in_use=True,
            key_id=9,
            value_type=2,
            inline_value=b"\x01\x02",
            prev_prop=NULL_REF,
            next_prop=77,
        )
        restored = PropertyRecord.unpack(record.pack())
        assert restored.key_id == 9
        assert restored.inline_value[:2] == b"\x01\x02"
        assert restored.next_prop == 77

    def test_dynamic_record(self):
        record = DynamicRecord(in_use=True, length=5, next_block=3, payload=b"hello")
        restored = DynamicRecord.unpack(record.pack())
        assert restored.payload == b"hello"
        assert restored.next_block == 3

    def test_dynamic_record_rejects_oversized_length(self):
        corrupted = DynamicRecord(in_use=True, length=5, payload=b"hello").pack()
        # Overwrite the length field with something larger than the payload area.
        bad = bytearray(corrupted)
        bad[1:5] = (10_000).to_bytes(4, "little")
        with pytest.raises(StoreCorruptionError):
            DynamicRecord.unpack(bytes(bad))

    def test_token_record(self):
        record = TokenRecord(in_use=True, name_ref=42)
        assert TokenRecord.unpack(record.pack()) == record


class TestRecordStore:
    def test_unwritten_slot_reads_as_not_in_use(self):
        store = make_store(NodeRecord)
        assert not store.read(17).in_use

    def test_write_read_roundtrip(self):
        store = make_store(NodeRecord)
        store.write(3, NodeRecord(in_use=True, first_rel=9))
        assert store.read(3).first_rel == 9
        assert store.high_water_mark() == 4

    def test_negative_id_rejected(self):
        store = make_store(NodeRecord)
        with pytest.raises(ValueError):
            store.read(-1)
        with pytest.raises(ValueError):
            store.write(-1, NodeRecord())

    def test_mark_not_in_use(self):
        store = make_store(NodeRecord)
        store.write(0, NodeRecord(in_use=True))
        store.mark_not_in_use(0)
        assert not store.read(0).in_use

    def test_iter_used_ids(self):
        store = make_store(NodeRecord)
        for record_id in (0, 2, 5):
            store.write(record_id, NodeRecord(in_use=True))
        assert list(store.iter_used_ids()) == [0, 2, 5]
        assert store.count_in_use() == 3
        assert store.used_ids() == [0, 2, 5]

    def test_records_straddle_page_boundaries(self):
        # Page size 256 with 64-byte relationship records: 4 records per page.
        store = make_store(RelationshipRecord)
        for record_id in range(10):
            store.write(
                record_id,
                RelationshipRecord(in_use=True, start_node=record_id, end_node=record_id + 1),
            )
        for record_id in range(10):
            assert store.read(record_id).start_node == record_id

    def test_header_detects_wrong_record_size(self):
        cache = PageCache(capacity_pages=64, page_size=256)
        paged = PagedFile(InMemoryBackend(), cache)
        RecordStore(paged, NodeRecord, "first")
        with pytest.raises(StoreCorruptionError):
            RecordStore(paged, RelationshipRecord, "second")
