"""The session layer: one conversation's worth of transactions.

A :class:`~repro.api.session.Session` is what the network server maps each
connection onto, so these tests pin the state machine the wire protocol
relies on: at most one open transaction, session defaults applied to every
transaction, auto-commit for statements outside an explicit transaction,
and the read-your-writes token.
"""

import pytest

from repro import GraphDatabase, Session
from repro.errors import ReadOnlyTransactionError, SessionStateError


class TestTransactionStateMachine:
    def test_begin_twice_is_a_session_error(self, si_db):
        with si_db.session() as session:
            session.begin()
            with pytest.raises(SessionStateError):
                session.begin()

    def test_commit_without_transaction_is_a_session_error(self, si_db):
        with si_db.session() as session:
            with pytest.raises(SessionStateError):
                session.commit()
            with pytest.raises(SessionStateError):
                session.rollback()

    def test_commit_clears_the_transaction(self, si_db):
        session = si_db.session()
        session.begin()
        assert session.in_transaction
        session.commit()
        assert not session.in_transaction
        session.begin()  # a fresh one is allowed now
        session.rollback()
        session.close()

    def test_aborted_transaction_frees_the_slot(self, si_db):
        # A transaction that dies underneath the session (e.g. a write
        # conflict rolled back via the context manager) must not wedge it.
        with si_db.session() as session:
            tx = session.begin()
            tx.rollback()
            assert not session.in_transaction
            session.begin()

    def test_closed_session_refuses_work(self, si_db):
        session = si_db.session()
        session.close()
        session.close()  # idempotent
        for call in (session.begin, session.commit, lambda: session.execute("RETURN 1")):
            with pytest.raises(SessionStateError):
                call()

    def test_close_rolls_back_the_open_transaction(self, si_db):
        session = si_db.session()
        tx = session.begin()
        tx.create_node(labels=["Doomed"])
        session.close()
        assert not tx.is_open
        with si_db.begin(read_only=True) as check:
            assert list(check.find_nodes(label="Doomed")) == []


class TestExecute:
    def test_autocommit_outside_a_transaction(self, si_db):
        with si_db.session() as session:
            session.execute("CREATE (:Person {name: 'Alice'})")
            result = session.execute("MATCH (n:Person) RETURN n.name AS name")
            assert [record["name"] for record in result.records()] == ["Alice"]

    def test_execute_joins_the_open_transaction(self, si_db):
        with si_db.session() as session:
            session.begin()
            session.execute("CREATE (:Person {name: 'Bob'})")
            # Not visible to other transactions until the session commits.
            with si_db.begin(read_only=True) as other:
                assert list(other.find_nodes(label="Person")) == []
            session.commit()
        with si_db.begin(read_only=True) as other:
            assert len(list(other.find_nodes(label="Person"))) == 1

    def test_read_your_writes_token(self, si_db):
        with si_db.session() as session:
            assert session.last_commit_ts is None
            session.execute("CREATE (:Person {name: 'Carol'})")
            first = session.last_commit_ts
            assert first is not None
            session.execute("MATCH (n:Person) RETURN n")  # reads keep the token
            assert session.last_commit_ts == first
            session.begin()
            session.execute("CREATE (:Person {name: 'Dave'})")
            ts = session.commit()
            assert ts == session.last_commit_ts
            assert ts > first


class TestSessionDefaults:
    def test_read_only_session_begins_read_only_transactions(self, si_db):
        with si_db.session(read_only=True) as session:
            tx = session.begin()
            assert tx.read_only
            session.rollback()
            # Explicit override per transaction still wins.
            tx = session.begin(read_only=False)
            assert not tx.read_only
            session.rollback()

    def test_read_only_session_rejects_writes(self, si_db):
        with si_db.session(read_only=True) as session:
            with pytest.raises(ReadOnlyTransactionError):
                session.execute("CREATE (:Person {name: 'Eve'})")

    def test_run_applies_session_defaults(self, si_db):
        with si_db.session(read_only=True) as session:
            assert session.run(lambda tx: tx.read_only) is True

    def test_run_refuses_while_a_transaction_is_open(self, si_db):
        with si_db.session() as session:
            session.begin()
            with pytest.raises(SessionStateError):
                session.run(lambda tx: None)


class TestIdentity:
    def test_sessions_get_distinct_ids(self, si_db):
        with si_db.session() as a, si_db.session() as b:
            assert a.session_id != b.session_id
            assert a.database is si_db

    def test_session_class_is_exported(self, si_db):
        assert isinstance(si_db.session(), Session)
