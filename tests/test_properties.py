"""Unit tests for property value validation."""

import pytest

from repro.errors import InvalidPropertyValueError, ReservedNameError
from repro.graph.properties import (
    RESERVED_PROPERTY_PREFIX,
    properties_equal,
    validate_properties,
    validate_property_key,
    validate_property_value,
)


class TestValidatePropertyValue:
    def test_scalars_pass_through(self):
        assert validate_property_value(True) is True
        assert validate_property_value(42) == 42
        assert validate_property_value(3.5) == 3.5
        assert validate_property_value("hello") == "hello"

    def test_empty_string_is_allowed(self):
        assert validate_property_value("") == ""

    def test_integer_overflow_rejected(self):
        with pytest.raises(InvalidPropertyValueError):
            validate_property_value(2 ** 63)
        with pytest.raises(InvalidPropertyValueError):
            validate_property_value(-(2 ** 63) - 1)

    def test_boundary_integers_accepted(self):
        assert validate_property_value(2 ** 63 - 1) == 2 ** 63 - 1
        assert validate_property_value(-(2 ** 63)) == -(2 ** 63)

    def test_homogeneous_lists_allowed(self):
        assert validate_property_value([1, 2, 3]) == [1, 2, 3]
        assert validate_property_value(["a", "b"]) == ["a", "b"]
        assert validate_property_value((1.0, 2.0)) == [1.0, 2.0]
        assert validate_property_value([True, False]) == [True, False]

    def test_empty_list_allowed(self):
        assert validate_property_value([]) == []

    def test_mixed_lists_rejected(self):
        with pytest.raises(InvalidPropertyValueError):
            validate_property_value([1, "two"])

    def test_bool_and_int_not_interchangeable_in_arrays(self):
        with pytest.raises(InvalidPropertyValueError):
            validate_property_value([True, 1])

    def test_nested_lists_rejected(self):
        with pytest.raises(InvalidPropertyValueError):
            validate_property_value([[1], [2]])

    def test_none_rejected(self):
        with pytest.raises(InvalidPropertyValueError):
            validate_property_value(None)

    def test_unsupported_types_rejected(self):
        with pytest.raises(InvalidPropertyValueError):
            validate_property_value({"a": 1})
        with pytest.raises(InvalidPropertyValueError):
            validate_property_value(object())


class TestValidatePropertyKey:
    def test_plain_keys_accepted(self):
        assert validate_property_key("name") == "name"

    def test_non_string_rejected(self):
        with pytest.raises(InvalidPropertyValueError):
            validate_property_key(42)

    def test_empty_rejected(self):
        with pytest.raises(InvalidPropertyValueError):
            validate_property_key("")

    def test_reserved_prefix_rejected(self):
        with pytest.raises(ReservedNameError):
            validate_property_key(RESERVED_PROPERTY_PREFIX + "commit_ts")

    def test_reserved_prefix_allowed_when_requested(self):
        key = RESERVED_PROPERTY_PREFIX + "commit_ts"
        assert validate_property_key(key, allow_reserved=True) == key


class TestValidateProperties:
    def test_none_becomes_empty_dict(self):
        assert validate_properties(None) == {}

    def test_copies_input(self):
        source = {"a": 1}
        result = validate_properties(source)
        result["b"] = 2
        assert "b" not in source

    def test_none_value_rejected(self):
        with pytest.raises(InvalidPropertyValueError):
            validate_properties({"a": None})

    def test_reserved_key_rejected(self):
        with pytest.raises(ReservedNameError):
            validate_properties({RESERVED_PROPERTY_PREFIX + "deleted": True})


class TestPropertiesEqual:
    def test_equal_maps(self):
        assert properties_equal({"a": 1, "b": "x"}, {"a": 1, "b": "x"})

    def test_different_keys(self):
        assert not properties_equal({"a": 1}, {"b": 1})

    def test_different_values(self):
        assert not properties_equal({"a": 1}, {"a": 2})

    def test_arrays_compare_elementwise_across_list_and_tuple(self):
        assert properties_equal({"a": [1, 2]}, {"a": (1, 2)})
        assert not properties_equal({"a": [1, 2]}, {"a": (2, 1)})

    def test_type_sensitive_for_scalars(self):
        assert not properties_equal({"a": 1}, {"a": True})
