"""Lexer and parser tests for the Cypher-subset query language."""

from __future__ import annotations

import pytest

from repro.errors import QuerySyntaxError
from repro.query import ast
from repro.query.lexer import tokenize
from repro.query.parser import parse


class TestLexer:
    def test_keywords_are_case_insensitive(self):
        tokens = tokenize("match RETURN wHeRe")
        assert all(t.kind == "KEYWORD" for t in tokens[:-1])
        assert tokens[0].is_keyword("MATCH")
        assert tokens[1].is_keyword("RETURN")
        assert tokens[2].is_keyword("WHERE")
        # Keywords keep their spelling so they can serve as names.
        assert [t.text for t in tokens[:-1]] == ["match", "RETURN", "wHeRe"]

    def test_identifiers_keep_case(self):
        tokens = tokenize("Person KNOWS myVar")
        assert [t.text for t in tokens[:-1]] == ["Person", "KNOWS", "myVar"]

    def test_numbers(self):
        tokens = tokenize("42 3.14 1e3 2.5e-1")
        assert [(t.kind, t.text) for t in tokens[:-1]] == [
            ("INTEGER", "42"),
            ("FLOAT", "3.14"),
            ("FLOAT", "1e3"),
            ("FLOAT", "2.5e-1"),
        ]

    def test_range_does_not_eat_float(self):
        tokens = tokenize("*1..3")
        assert [t.text for t in tokens[:-1]] == ["*", "1", "..", "3"]

    def test_strings_with_escapes(self):
        tokens = tokenize("'it\\'s' \"two\"")
        assert tokens[0].text == "it's"
        assert tokens[1].text == "two"

    def test_unterminated_string(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("'oops")

    def test_parameters(self):
        tokens = tokenize("$name $p_2")
        assert [(t.kind, t.text) for t in tokens[:-1]] == [
            ("PARAMETER", "name"),
            ("PARAMETER", "p_2"),
        ]

    def test_bad_parameter(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("$ name")

    def test_comments_are_skipped(self):
        tokens = tokenize("MATCH // a comment\nRETURN")
        assert [t.text for t in tokens[:-1]] == ["MATCH", "RETURN"]

    def test_unexpected_character(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("MATCH ~")


class TestParser:
    def test_simple_match_return(self):
        query = parse("MATCH (n:Person) RETURN n")
        assert len(query.clauses) == 2
        match, projection = query.clauses
        assert isinstance(match, ast.MatchClause)
        node = match.patterns[0].nodes[0]
        assert node.variable == "n"
        assert node.labels == ("Person",)
        assert isinstance(projection, ast.ProjectionClause)
        assert projection.items[0].alias == "n"

    def test_property_map_and_parameters(self):
        query = parse("MATCH (n:Person {name: $who, age: 30}) RETURN n.name")
        node = query.clauses[0].patterns[0].nodes[0]
        assert node.properties[0] == ("name", ast.Parameter("who"))
        assert node.properties[1] == ("age", ast.Literal(30))

    def test_relationship_directions(self):
        out = parse("MATCH (a)-[:KNOWS]->(b) RETURN a").clauses[0].patterns[0]
        assert out.rels[0].direction == "OUT"
        inc = parse("MATCH (a)<-[:KNOWS]-(b) RETURN a").clauses[0].patterns[0]
        assert inc.rels[0].direction == "IN"
        both = parse("MATCH (a)-[:KNOWS]-(b) RETURN a").clauses[0].patterns[0]
        assert both.rels[0].direction == "BOTH"

    def test_relationship_type_alternatives(self):
        pattern = parse("MATCH (a)-[r:KNOWS|LIKES]->(b) RETURN r").clauses[0].patterns[0]
        assert pattern.rels[0].types == ("KNOWS", "LIKES")
        assert pattern.rels[0].variable == "r"

    def test_bare_relationship(self):
        pattern = parse("MATCH (a)--(b) RETURN a").clauses[0].patterns[0]
        assert pattern.rels[0].types == ()
        assert pattern.rels[0].direction == "BOTH"
        arrow = parse("MATCH (a)-->(b) RETURN a").clauses[0].patterns[0]
        assert arrow.rels[0].direction == "OUT"

    def test_var_length_ranges(self):
        def hops(text):
            rel = parse(f"MATCH (a)-[:T{text}]->(b) RETURN a").clauses[0].patterns[0].rels[0]
            return rel.min_hops, rel.max_hops, rel.var_length

        assert hops("*") == (1, None, True)
        assert hops("*2") == (2, 2, True)
        assert hops("*1..3") == (1, 3, True)
        assert hops("*..3") == (1, 3, True)
        assert hops("*2..") == (2, None, True)
        assert hops("") == (1, 1, False)

    def test_empty_var_length_range_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse("MATCH (a)-[:T*3..1]->(b) RETURN a")

    def test_where_precedence(self):
        query = parse("MATCH (n) WHERE n.a = 1 OR n.b = 2 AND NOT n.c = 3 RETURN n")
        where = query.clauses[0].where
        assert isinstance(where, ast.BooleanOp) and where.op == "OR"
        right = where.operands[1]
        assert isinstance(right, ast.BooleanOp) and right.op == "AND"
        assert isinstance(right.operands[1], ast.Not)

    def test_string_predicates(self):
        query = parse(
            "MATCH (n) WHERE n.name STARTS WITH 'a' AND n.name ENDS WITH 'z' "
            "AND n.name CONTAINS 'm' RETURN n"
        )
        ops = [c.op for c in query.clauses[0].where.operands]
        assert ops == ["STARTS WITH", "ENDS WITH", "CONTAINS"]

    def test_is_null(self):
        where = parse("MATCH (n) WHERE n.x IS NULL RETURN n").clauses[0].where
        assert isinstance(where, ast.IsNull) and not where.negated
        where = parse("MATCH (n) WHERE n.x IS NOT NULL RETURN n").clauses[0].where
        assert where.negated

    def test_return_modifiers(self):
        query = parse(
            "MATCH (n) RETURN DISTINCT n.name AS name "
            "ORDER BY n.age DESC, n.name SKIP 2 LIMIT 5"
        )
        projection = query.clauses[-1]
        assert projection.distinct
        assert projection.items[0].alias == "name"
        assert not projection.order_by[0].ascending
        assert projection.order_by[1].ascending
        assert projection.skip == ast.Literal(2)
        assert projection.limit == ast.Literal(5)

    def test_aggregates(self):
        query = parse("MATCH (n) RETURN count(*), count(DISTINCT n.city), avg(n.age)")
        items = query.clauses[-1].items
        assert items[0].expression.star
        assert items[1].expression.distinct
        assert items[2].expression.name == "avg"
        assert ast.contains_aggregate(items[2].expression)

    def test_unknown_function_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse("MATCH (n) RETURN shenanigans(n)")

    def test_with_where(self):
        query = parse("MATCH (n) WITH n.age AS age WHERE age > 30 RETURN age")
        with_clause = query.clauses[1]
        assert not with_clause.is_return
        assert with_clause.where is not None

    def test_create_requires_direction(self):
        with pytest.raises(QuerySyntaxError):
            parse("CREATE (a)-[:T]-(b)")

    def test_create_requires_single_type(self):
        with pytest.raises(QuerySyntaxError):
            parse("CREATE (a)-[:T|U]->(b)")

    def test_delete_and_detach(self):
        clause = parse("MATCH (n) DETACH DELETE n").clauses[-1]
        assert isinstance(clause, ast.DeleteClause)
        assert clause.detach and clause.variables == ("n",)

    def test_set_items(self):
        clause = parse("MATCH (n) SET n.age = 40, n:VIP:Gold").clauses[-1]
        prop, labels = clause.items
        assert isinstance(prop, ast.SetProperty) and prop.key == "age"
        assert isinstance(labels, ast.SetLabels) and labels.labels == ("VIP", "Gold")

    def test_explain_and_profile_prefixes(self):
        explained = parse("EXPLAIN MATCH (n) RETURN n")
        assert explained.explain and not explained.profile
        profiled = parse("PROFILE MATCH (n) RETURN n")
        assert profiled.profile and not profiled.explain
        plain = parse("MATCH (n) RETURN n")
        assert not plain.explain and not plain.profile

    def test_clause_order_validation(self):
        with pytest.raises(QuerySyntaxError):
            parse("RETURN 1 MATCH (n) RETURN n")
        with pytest.raises(QuerySyntaxError):
            parse("MATCH (n) WITH n")
        with pytest.raises(QuerySyntaxError):
            parse("MATCH (n)")
        with pytest.raises(QuerySyntaxError):
            parse("")

    def test_arithmetic_vs_arrow_ambiguity(self):
        # '<' followed by '-' must stay a comparison with unary minus.
        where = parse("MATCH (n) WHERE n.x < -1 RETURN n").clauses[0].where
        assert where.op == "<"
        assert isinstance(where.right, ast.Negate)

    def test_keywords_as_names(self):
        # Labels, relationship types and property keys have their own
        # namespaces: reserved words are fine there (e.g. a LIVES `IN` edge).
        query = parse(
            "MATCH (a:Match {limit: 1})-[:IN]->(b) SET a.skip = b.order"
        )
        node = query.clauses[0].patterns[0].nodes[0]
        assert node.labels == ("Match",)
        assert node.properties[0][0] == "limit"
        assert query.clauses[0].patterns[0].rels[0].types == ("IN",)
        item = query.clauses[1].items[0]
        assert item.key == "skip"
        assert item.value == ast.PropertyAccess(ast.Variable("b"), "order")

    def test_parse_is_pure(self):
        first = parse("MATCH (n:Person) RETURN n.name")
        second = parse("MATCH (n:Person) RETURN n.name")
        assert first == second
