"""Serializable Snapshot Isolation: the pluggable CC policy closes write skew.

Covers the tentpole guarantees of the SSI policy:

* write skew is observable under ``SNAPSHOT`` and prevented under
  ``SERIALIZABLE`` for the same interleaving (via ``WriteSkewProbe``),
* phantoms through index/label-scan predicate reads are caught,
* single rw-antidependencies (no dangerous structure) do not abort,
* read-only transactions register nothing and are never aborted, and
* SIREAD tracking state is reclaimed by garbage collection.
"""

import pytest

from repro import (
    GraphDatabase,
    IsolationLevel,
    SerializationError,
    TransactionAbortedError,
)
from repro.workload.anomaly import AnomalyCounters, WriteSkewProbe


def _make_accounts(db, balance=100):
    with db.transaction() as tx:
        a = tx.create_node(labels=["Account"], properties={"name": "a", "balance": balance})
        b = tx.create_node(labels=["Account"], properties={"name": "b", "balance": balance})
    return a.id, b.id


def _run_skew_interleaving(db, probe):
    """Both transactions read both balances, then each withdraws from one.

    Returns the number of transactions that committed.  Under snapshot
    isolation both commit (writing disjoint keys, so the write rule is
    silent) and the combined-balance constraint breaks; under serializable
    the second committer completes a dangerous structure and aborts.
    """
    t1 = db.begin()
    t2 = db.begin()
    committed = 0
    try:
        assert probe.withdraw(t1, probe.account_a)
        assert probe.withdraw(t2, probe.account_b)
        for txn in (t1, t2):
            try:
                txn.commit()
                committed += 1
            except TransactionAbortedError:
                pass
    finally:
        for txn in (t1, t2):
            txn.rollback()
    return committed


class TestWriteSkew:
    def test_skew_under_snapshot_prevented_under_serializable(self):
        """The acceptance interleaving, probed under both levels in one test."""
        counters = {}
        for isolation in (IsolationLevel.SNAPSHOT, IsolationLevel.SERIALIZABLE):
            db = GraphDatabase.in_memory(isolation=isolation)
            a, b = _make_accounts(db, balance=100)
            probe = WriteSkewProbe(a, b, withdraw_amount=150)
            committed = _run_skew_interleaving(db, probe)
            anomalies = AnomalyCounters(checks=1)
            with db.transaction(read_only=True) as tx:
                if probe.constraint_violated(tx):
                    anomalies.write_skew += 1
            counters[isolation] = (committed, anomalies.write_skew)
            db.close()
        si_committed, si_skew = counters[IsolationLevel.SNAPSHOT]
        ssi_committed, ssi_skew = counters[IsolationLevel.SERIALIZABLE]
        assert si_committed == 2 and si_skew >= 1  # SI permits the anomaly
        assert ssi_committed == 1 and ssi_skew == 0  # SSI aborts one of the two

    def test_second_committer_gets_serialization_error(self):
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        a, b = _make_accounts(db)
        probe = WriteSkewProbe(a, b, withdraw_amount=150)
        t1 = db.begin()
        t2 = db.begin()
        probe.withdraw(t1, a)
        probe.withdraw(t2, b)
        t1.commit()
        with pytest.raises(SerializationError):
            t2.commit()
        assert db.statistics()["engine"]["transactions"]["abort_reasons"][
            "rw-antidependency"
        ] == 1
        db.close()

    def test_retry_after_serialization_abort_succeeds(self):
        """The aborted withdrawal, retried on fresh state, sees t1's write."""
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        a, b = _make_accounts(db, balance=100)
        probe = WriteSkewProbe(a, b, withdraw_amount=150)
        committed = _run_skew_interleaving(db, probe)
        assert committed == 1
        with db.transaction() as tx:
            # Combined balance is now 50: the retried withdrawal must refuse.
            assert not probe.withdraw(tx, b)
        with db.transaction(read_only=True) as tx:
            assert not probe.constraint_violated(tx)
        db.close()


class TestDangerousStructureOnly:
    """SSI aborts dangerous structures, not every rw-antidependency."""

    def test_single_rw_edge_commits(self):
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        with db.transaction() as tx:
            x = tx.create_node(properties={"k": "x", "v": 0})
            y = tx.create_node(properties={"k": "y", "v": 0})
        reader = db.begin()
        reader.get_node(x.id)  # SIREAD on x
        with db.transaction() as tx:  # concurrent writer of x commits
            tx.set_node_property(x.id, "v", 1)
        # reader -> writer is one rw edge; reader writes y (nobody reads it),
        # so no second edge exists and the commit must succeed.
        reader.set_node_property(y.id, "v", 1)
        reader.commit()
        assert db.statistics()["engine"]["transactions"]["abort_reasons"][
            "rw-antidependency"
        ] == 0
        db.close()

    def test_serial_transactions_never_abort(self):
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        a, b = _make_accounts(db)
        for _ in range(5):
            with db.transaction() as tx:
                balance = tx.get_node(a).get("balance")
                tx.set_node_property(a, "balance", balance - 1)
            with db.transaction() as tx:
                balance = tx.get_node(b).get("balance")
                tx.set_node_property(b, "balance", balance - 1)
        assert db.statistics()["engine"]["transactions"]["aborted"] == 0
        db.close()


class TestPhantomPrevention:
    def test_phantom_via_label_scan_caught(self):
        """Two transactions scan an empty label and both insert into it."""
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        with db.transaction() as tx:
            tx.create_node(labels=["Seed"])  # make the label index warm
        t1 = db.begin()
        t2 = db.begin()
        assert t1.find_nodes(label="Pending") == []
        assert t2.find_nodes(label="Pending") == []
        t1.create_node(labels=["Pending"], properties={"who": "t1"})
        t2.create_node(labels=["Pending"], properties={"who": "t2"})
        t1.commit()
        with pytest.raises(SerializationError):
            t2.commit()
        with db.transaction(read_only=True) as tx:
            assert len(tx.find_nodes(label="Pending")) == 1
        db.close()

    def test_phantom_permitted_under_snapshot(self):
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SNAPSHOT)
        t1 = db.begin()
        t2 = db.begin()
        assert t1.find_nodes(label="Pending") == []
        assert t2.find_nodes(label="Pending") == []
        t1.create_node(labels=["Pending"])
        t2.create_node(labels=["Pending"])
        t1.commit()
        t2.commit()  # SI lets the duplicate insert through
        with db.transaction(read_only=True) as tx:
            assert len(tx.find_nodes(label="Pending")) == 2
        db.close()

    def test_phantom_via_property_index_scan_caught(self):
        """Unique-email style check-then-insert under a property predicate."""
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        with db.transaction() as tx:
            tx.create_node(labels=["User"], properties={"email": "seed@x"})
        t1 = db.begin()
        t2 = db.begin()
        assert t1.find_nodes(key="email", value="a@x") == []
        assert t2.find_nodes(key="email", value="a@x") == []
        t1.create_node(labels=["User"], properties={"email": "a@x"})
        t2.create_node(labels=["User"], properties={"email": "a@x"})
        t1.commit()
        with pytest.raises(SerializationError):
            t2.commit()
        with db.transaction(read_only=True) as tx:
            assert len(tx.find_nodes(key="email", value="a@x")) == 1
        db.close()

    def test_phantom_via_relationship_adjacency_caught(self):
        """Degree-constraint skew: both cap-check a node's degree, both attach."""
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        with db.transaction() as tx:
            hub = tx.create_node(labels=["Hub"])
            s1 = tx.create_node()
            s2 = tx.create_node()
        t1 = db.begin()
        t2 = db.begin()
        assert t1.degree(hub.id) == 0  # adjacency predicate read
        assert t2.degree(hub.id) == 0
        t1.create_relationship(s1.id, hub.id, "LINK")
        t2.create_relationship(s2.id, hub.id, "LINK")
        t1.commit()
        with pytest.raises(SerializationError):
            t2.commit()
        db.close()


class TestReadOnlyOptimization:
    def test_read_only_transactions_register_nothing(self):
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        a, b = _make_accounts(db)
        db.run_gc()  # drop the setup transaction's tracking record
        with db.transaction(read_only=True) as tx:
            tx.get_node(a)
            tx.find_nodes(label="Account")
            tx.degree(a)
        cc = db.statistics()["engine"]["concurrency_control"]
        assert cc["tracked_transactions"] == 0
        assert cc["siread_entries"] == 0
        assert cc["predicate_readers"] == 0
        db.close()

    def test_read_only_transaction_survives_write_skew_storm(self):
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        a, b = _make_accounts(db)
        probe = WriteSkewProbe(a, b, withdraw_amount=150)
        observer = db.begin(read_only=True)
        observer.get_node(a)
        observer.get_node(b)
        _run_skew_interleaving(db, probe)
        # The observer overlapped both writers and read both accounts, yet is
        # never part of any dangerous structure bookkeeping.
        observer.get_node(a)
        observer.commit()
        db.close()


class TestSireadReclamation:
    def test_gc_reclaims_tracking_state_when_quiescent(self):
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        a, b = _make_accounts(db)
        for _ in range(3):
            with db.transaction() as tx:
                tx.set_node_property(a, "balance", tx.get_node(a).get("balance") + 1)
        cc = db.statistics()["engine"]["concurrency_control"]
        assert cc["tracked_transactions"] > 0
        assert cc["siread_entries"] > 0
        stats = db.run_gc()
        assert stats.cc_entries_reclaimed > 0
        cc = db.statistics()["engine"]["concurrency_control"]
        assert cc["tracked_transactions"] == 0
        assert cc["siread_entries"] == 0
        assert cc["write_registry_entries"] == 0
        assert cc["commit_log_entries"] == 0
        db.close()

    def test_active_snapshot_pins_tracking_state(self):
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        a, b = _make_accounts(db)
        pinner = db.begin()
        pinner.get_node(a)  # SIREAD held by an active transaction
        with db.transaction() as tx:  # concurrent commit on a disjoint key
            tx.set_node_property(b, "balance", 7)
        db.run_gc()
        cc = db.statistics()["engine"]["concurrency_control"]
        # The active reader's record and the concurrent committer's registry
        # entries must survive: an edge could still form between them.
        assert cc["tracked_transactions"] >= 2
        assert cc["siread_entries"] >= 1
        assert cc["write_registry_entries"] >= 1
        pinner.commit()
        db.run_gc()
        cc = db.statistics()["engine"]["concurrency_control"]
        assert cc["tracked_transactions"] == 0
        assert cc["write_registry_entries"] == 0
        db.close()

    def test_writeless_workload_state_stays_bounded_without_gc(self):
        """Read-write-opened but writeless transactions must not leak records.

        Their pseudo commit timestamps sit above the watermark forever in a
        pure-read workload, so reclamation falls back to the begin-ordered
        transaction id — driven opportunistically from the commit path, with
        no explicit ``run_gc`` call anywhere.
        """
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        a, _b = _make_accounts(db)
        for _ in range(300):
            with db.transaction() as tx:  # reads only, never writes
                tx.get_node(a)
        cc = db.statistics()["engine"]["concurrency_control"]
        assert cc["tracked_transactions"] <= 64, cc
        db.close()

    def test_mixed_commit_workload_state_stays_bounded_without_gc(self):
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        a, _b = _make_accounts(db)
        for _ in range(200):
            with db.transaction() as tx:
                tx.set_node_property(a, "balance", tx.get_node(a).get("balance") + 1)
        cc = db.statistics()["engine"]["concurrency_control"]
        assert cc["commit_log_entries"] <= 64, cc
        assert cc["tracked_transactions"] <= 64, cc
        db.close()

    def test_vacuum_also_reclaims_tracking_state(self):
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        a, _b = _make_accounts(db)
        with db.transaction() as tx:
            tx.set_node_property(a, "balance", tx.get_node(a).get("balance") - 1)
        vacuum = db.create_vacuum_collector()
        stats = vacuum.collect()
        assert stats.cc_entries_reclaimed > 0
        assert db.statistics()["engine"]["concurrency_control"]["siread_entries"] == 0
        db.close()


class TestAbortReasonBreakdown:
    def test_ww_conflict_counted_under_snapshot(self):
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SNAPSHOT)
        a, _b = _make_accounts(db)
        t1 = db.begin()
        t2 = db.begin()
        t1.set_node_property(a, "balance", 1)
        with pytest.raises(TransactionAbortedError):
            t2.set_node_property(a, "balance", 2)  # first-updater-wins
        t2.rollback()
        t1.commit()
        reasons = db.statistics()["engine"]["transactions"]["abort_reasons"]
        assert reasons["ww-conflict"] == 1
        assert reasons["rw-antidependency"] == 0
        db.close()

    def test_breakdown_present_for_all_levels(self):
        for isolation in IsolationLevel:
            db = GraphDatabase.in_memory(isolation=isolation)
            reasons = db.statistics()["engine"]["transactions"]["abort_reasons"]
            assert set(reasons) == {
                "ww-conflict",
                "rw-antidependency",
                "safe-snapshot",
                "deadlock",
                "io-error",
                "degraded-mode",
            }
            policy = db.statistics()["engine"]["concurrency_control"]["policy"]
            expected = {
                IsolationLevel.READ_COMMITTED: "2pl",
                IsolationLevel.SNAPSHOT: "si-write-rule",
                IsolationLevel.SERIALIZABLE: "ssi",
            }[isolation]
            assert policy == expected
            db.close()


class TestPolicyInjection:
    def test_injected_policy_without_detector_keeps_statistics_surface(self):
        """The documented ``cc_policy=`` injection point must not assume a
        ``ConflictDetector``-hosting policy."""
        from repro.core.cc_policy import TwoPhaseLockingPolicy
        from repro.core.si_manager import SnapshotIsolationEngine
        from repro.graph.store_manager import StoreManager
        from repro.locking.lock_manager import LockManager

        store = StoreManager(None)
        locks = LockManager()
        engine = SnapshotIsolationEngine(
            store, lock_manager=locks, cc_policy=TwoPhaseLockingPolicy(locks)
        )
        try:
            stats = engine.statistics()
            assert stats["transactions"]["abort_reasons"]["ww-conflict"] == 0
            assert stats["conflicts"] == {"write_time": 0, "commit_time": 0}
            assert engine.abort_reasons()["rw-antidependency"] == 0
            assert engine.conflicts is None  # no detector behind this policy
        finally:
            engine.close()
            store.close()


class TestSerializableIsStillSnapshot:
    """SSI keeps SI's read behaviour for everything SI already guarantees."""

    def test_repeatable_reads_and_own_writes(self):
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        a, _b = _make_accounts(db, balance=10)
        reader = db.begin()
        assert reader.get_node(a).get("balance") == 10
        with db.transaction() as tx:
            tx.set_node_property(a, "balance", 99)
        assert reader.get_node(a).get("balance") == 10  # snapshot holds
        reader.rollback()
        with db.transaction() as tx:
            tx.set_node_property(a, "note", "mine")
            assert tx.get_node(a).get("note") == "mine"  # read-your-own-writes
        db.close()

    def test_transaction_reports_isolation_level(self):
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        with db.transaction() as tx:
            assert tx.isolation_level is IsolationLevel.SERIALIZABLE
        db.close()

    def test_queries_run_under_serializable(self):
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        db.execute("CREATE (:Person {name: 'Ada'})-[:KNOWS]->(:Person {name: 'Bob'})")
        result = db.execute(
            "MATCH (p:Person {name: $name})-[:KNOWS]-(f) RETURN f.name", name="Ada"
        )
        assert [record["f.name"] for record in result.records()] == ["Bob"]
        db.close()

    def test_db_execute_routes_pure_reads_through_read_only_path(self):
        """Ad-hoc read statements get the free read-only SSI path."""
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        db.execute("CREATE (:Person {name: 'Ada'})")
        db.run_gc()  # drop the setup transaction's tracking record
        for _ in range(10):
            db.execute("MATCH (p:Person) RETURN p.name")
            db.execute("EXPLAIN CREATE (:Person)")  # EXPLAIN never writes
        cc = db.statistics()["engine"]["concurrency_control"]
        assert cc["tracked_transactions"] == 0, cc
        assert cc["siread_entries"] == 0 and cc["predicate_readers"] == 0, cc
        # ... while actual write statements still go read-write.
        db.execute("CREATE (:Person {name: 'Bob'})")
        assert len(db.execute("MATCH (p:Person) RETURN p.name").records()) == 2
        db.close()
