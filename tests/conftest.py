"""Shared pytest fixtures."""

from __future__ import annotations

import pytest

from repro import GraphDatabase, IsolationLevel
from repro.graph.store_manager import StoreManager


@pytest.fixture
def store():
    """An in-memory store manager, closed after the test."""
    manager = StoreManager(None)
    yield manager
    manager.close()


@pytest.fixture
def si_db():
    """An in-memory database under snapshot isolation."""
    db = GraphDatabase.in_memory(isolation=IsolationLevel.SNAPSHOT)
    yield db
    db.close()


@pytest.fixture
def rc_db():
    """An in-memory database under read committed."""
    db = GraphDatabase.in_memory(isolation=IsolationLevel.READ_COMMITTED)
    yield db
    db.close()


@pytest.fixture(params=[IsolationLevel.SNAPSHOT, IsolationLevel.READ_COMMITTED],
                ids=["snapshot", "read_committed"])
def any_db(request):
    """An in-memory database, parametrised over both isolation levels."""
    db = GraphDatabase.in_memory(isolation=request.param)
    yield db
    db.close()


@pytest.fixture
def disk_db_path(tmp_path):
    """A directory for an on-disk database."""
    return str(tmp_path / "graph-db")
