"""End-to-end observability: traces, slow queries, exposition, compat parity."""

import json
import urllib.request

import pytest

from repro import GraphDatabase, IsolationLevel, WriteWriteConflictError
from repro.errors import TransactionAbortedError
from repro.obs import JsonLinesSink, flatten_statistics
from repro.obs.tracing import PHASES

from prometheus_parser import parse_prometheus_text


def traced_db(**options):
    options.setdefault("tracing", True)
    return GraphDatabase.in_memory(isolation=IsolationLevel.SNAPSHOT, **options)


def counter_value(db, name, **labels):
    samples = db.metrics_snapshot()["instruments"][name]["samples"]
    for sample in samples:
        if sample["labels"] == labels:
            return sample["value"]
    return 0.0


class TestTransactionTracing:
    def test_write_commit_marks_every_phase(self):
        db = traced_db()
        with db.transaction() as tx:
            tx.create_node(["Person"], {"name": "a"})
        trace = db.recent_traces()[-1]
        assert trace.outcome == "committed"
        assert [name for name, _ in trace.phases] == list(PHASES)
        assert trace.annotations["stripes"] >= 1
        assert trace.annotations["writes"] >= 1
        db.close()

    def test_phase_durations_sum_to_wall_time(self):
        db = traced_db()
        with db.transaction() as tx:
            for index in range(20):
                tx.create_node(["Person"], {"n": index})
        trace = db.recent_traces()[-1]
        phase_sum = sum(seconds for _, seconds in trace.phases)
        # Phases cover begin -> publish; finish() adds only the sealing
        # perf_counter call beyond the last mark.
        assert phase_sum <= trace.wall_seconds
        assert trace.wall_seconds - phase_sum < 0.05
        assert all(seconds >= 0.0 for _, seconds in trace.phases)
        db.close()

    def test_disabled_tracing_records_nothing(self):
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SNAPSHOT)
        for _ in range(5):
            with db.transaction() as tx:
                tx.create_node(["Person"])
        assert db.recent_traces() == []
        assert db.observability.tracer.stats()["recorded"] == 0
        # No per-transaction observations leak into the sampled histograms.
        snapshot = db.metrics_snapshot()
        assert snapshot["instruments"]["repro_txn_seconds"]["samples"][0]["count"] == 0
        assert snapshot["instruments"]["repro_txn_phase_seconds"]["samples"] == []
        # The lifecycle counters still work without tracing.
        assert counter_value(db, "repro_txn_committed_total") == 5.0
        db.close()

    def test_sampling_is_deterministic(self):
        db = traced_db(trace_sample_rate=0.5)
        for _ in range(10):
            with db.transaction() as tx:
                tx.create_node(["Person"])
        stats = db.observability.tracer.stats()
        assert stats["sample_every"] == 2
        assert stats["recorded"] == 5
        assert stats["dropped_by_sampling"] == 5
        db.close()

    def test_aborted_transaction_traced_with_reason(self):
        db = traced_db()
        with db.transaction() as tx:
            node = tx.create_node(["Person"], {"v": 0})
        # Write-time conflict (first-updater-wins), surfaced mid-block and
        # classified by the context manager's rollback.
        first = db.begin()
        first.set_node_property(node.id, "v", 1)
        with pytest.raises((WriteWriteConflictError, TransactionAbortedError)):
            with db.transaction() as second:
                first.commit()  # lands after second's snapshot
                second.set_node_property(node.id, "v", 2)
        aborted = [t for t in db.recent_traces() if t.outcome == "aborted"]
        assert aborted
        assert aborted[-1].reason == "ww-conflict"
        assert counter_value(db, "repro_txn_aborts_total", reason="ww-conflict") >= 1.0
        db.close()

    def test_explicit_rollback_traced_as_rollback(self):
        db = traced_db()
        tx = db.begin()
        tx.create_node(["Person"])
        tx.rollback()
        trace = db.recent_traces()[-1]
        assert trace.outcome == "aborted"
        assert trace.reason == "rollback"
        assert counter_value(db, "repro_txn_aborts_total", reason="rollback") == 1.0
        db.close()

    def test_read_only_trace_skips_write_phases(self):
        db = traced_db()
        with db.transaction() as tx:
            tx.create_node(["Person"])
        with db.transaction(read_only=True) as tx:
            list(tx.find_nodes(label="Person"))
        trace = db.recent_traces()[-1]
        assert trace.read_only is True
        names = [name for name, _ in trace.phases]
        assert "wal" not in names and "stripe_wait" not in names
        db.close()

    def test_json_lines_sink(self, tmp_path):
        path = str(tmp_path / "traces.jsonl")
        db = traced_db()
        sink = JsonLinesSink(path)
        db.observability.tracer.add_sink(sink)
        with db.transaction() as tx:
            tx.create_node(["Person"])
        sink.close()
        lines = [json.loads(line) for line in open(path, encoding="utf-8")]
        assert lines and lines[-1]["outcome"] == "committed"
        assert "wal" in lines[-1]["phases"]
        db.close()


class TestSlowQueryLog:
    def test_threshold_zero_captures_everything(self):
        db = traced_db(slow_query_seconds=0.0)
        with db.transaction() as tx:
            tx.execute("CREATE (:Person {name: $n})", {"n": "a"})
        entries = db.slow_queries()
        assert entries
        entry = entries[-1].as_dict()
        assert entry["text"].startswith("CREATE")
        assert entry["parameters"] == {"n": "a"}
        assert entry["plan"] is not None
        assert entry["snapshot_ts"] is not None
        assert entry["read_only"] is False
        db.close()

    def test_parameters_redacted_but_named(self):
        db = traced_db(slow_query_seconds=0.0, redact_parameters=True)
        with db.transaction() as tx:
            tx.execute("CREATE (:Person {name: $secret})", {"secret": "hunter2"})
        entry = db.slow_queries()[-1].as_dict()
        assert entry["parameters"] == {"secret": "<redacted>"}
        db.close()

    def test_disabled_by_default(self):
        db = traced_db()
        with db.transaction() as tx:
            tx.execute("CREATE (:Person)")
        assert db.slow_queries() == []
        assert db.statistics()["observability"]["slow_query_log"]["enabled"] is False
        db.close()

    def test_capacity_bounds_buffer_not_total(self):
        db = traced_db(slow_query_seconds=0.0, slow_query_capacity=2)
        with db.transaction() as tx:
            for index in range(5):
                tx.execute("CREATE (:Person {i: $i})", {"i": index})
        assert len(db.slow_queries()) == 2
        assert db.statistics()["observability"]["slow_query_log"]["total"] == 5
        db.close()


class TestStatisticsCompat:
    """Exposition must reproduce every counter ``statistics()`` ever had."""

    def workload(self, db):
        with db.transaction() as tx:
            alice = tx.create_node(["Person"], {"name": "a"})
            bob = tx.create_node(["Person"], {"name": "b"})
            tx.create_relationship(alice, bob, "KNOWS")
        with db.transaction(read_only=True) as tx:
            tx.execute("MATCH (n:Person) RETURN n.name").consume()

    def test_every_statistics_leaf_in_snapshot(self):
        db = traced_db()
        self.workload(db)
        flat = flatten_statistics(db.statistics())
        collected = db.metrics_snapshot()["collected"]
        missing = {k for k in flat if k not in collected}
        assert not missing
        db.close()

    def test_every_statistics_leaf_in_prometheus_text(self):
        db = traced_db()
        self.workload(db)
        flat = flatten_statistics(db.statistics())
        parsed = parse_prometheus_text(db.prometheus_metrics())
        exposed = {name for name, _ in parsed}
        missing = {k for k in flat if k not in exposed}
        assert not missing
        # Spot-check one value survives the round trip exactly.
        committed = flat["repro_stat_engine_transactions_committed"]
        assert parsed[("repro_stat_engine_transactions_committed", ())] == committed
        db.close()

    def test_engine_stats_still_integer_properties(self):
        db = traced_db()
        self.workload(db)
        transactions = db.statistics()["engine"]["transactions"]
        assert isinstance(transactions["committed"], int)
        assert transactions["committed"] >= 2
        db.close()


class TestPrometheusExposition:
    def test_renders_parseable_text_with_histograms(self):
        db = traced_db()
        with db.transaction() as tx:
            tx.execute("CREATE (:Person)")
        text = db.prometheus_metrics()
        parsed = parse_prometheus_text(text)
        assert parsed[("repro_txn_committed_total", ())] == 1.0
        inf_key = ("repro_query_seconds_bucket", (("le", "+Inf"),))
        count_key = ("repro_query_seconds_count", ())
        assert parsed[inf_key] == parsed[count_key] >= 1.0
        assert "# TYPE repro_txn_seconds histogram" in text
        db.close()

    def test_bucket_counts_are_cumulative(self):
        db = traced_db()
        with db.transaction() as tx:
            tx.execute("CREATE (:Person)")
        parsed = parse_prometheus_text(db.prometheus_metrics())
        buckets = sorted(
            (float(labels[0][1]) if labels[0][1] != "+Inf" else float("inf"), value)
            for (name, labels), value in parsed.items()
            if name == "repro_query_seconds_bucket"
        )
        values = [value for _, value in buckets]
        assert values == sorted(values)
        db.close()


class TestMetricsExporter:
    def test_scrape_endpoint_serves_metrics(self):
        db = traced_db()
        with db.transaction() as tx:
            tx.execute("CREATE (:Person)")
        exporter = db.serve_metrics()
        try:
            with urllib.request.urlopen(f"{exporter.url}/metrics", timeout=10) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith("text/plain")
                parsed = parse_prometheus_text(resp.read().decode("utf-8"))
            assert parsed[("repro_txn_committed_total", ())] == 1.0
            with urllib.request.urlopen(
                f"{exporter.url}/metrics.json", timeout=10
            ) as resp:
                payload = json.load(resp)
            assert "repro_txn_committed_total" in payload["instruments"]
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"{exporter.url}/nope", timeout=10)
        finally:
            exporter.stop()
            db.close()
