"""Unit tests for the timestamp oracle."""

from repro.core.timestamps import TimestampOracle


class TestTimestampOracle:
    def test_begin_returns_monotonic_txn_ids(self):
        oracle = TimestampOracle()
        txn1, _ = oracle.begin_transaction()
        txn2, _ = oracle.begin_transaction()
        assert txn2 > txn1

    def test_start_ts_tracks_latest_published_commit(self):
        oracle = TimestampOracle()
        _, start_before = oracle.begin_transaction()
        assert start_before == 0
        commit_ts = oracle.issue_commit_timestamp()
        # Not yet published: new transactions still see the old snapshot.
        _, start_mid = oracle.begin_transaction()
        assert start_mid == 0
        oracle.publish_commit(999, commit_ts)
        _, start_after = oracle.begin_transaction()
        assert start_after == commit_ts

    def test_commit_timestamps_are_strictly_increasing(self):
        oracle = TimestampOracle()
        first = oracle.issue_commit_timestamp()
        second = oracle.issue_commit_timestamp()
        assert second == first + 1

    def test_watermark_with_no_active_transactions(self):
        oracle = TimestampOracle()
        ts = oracle.issue_commit_timestamp()
        oracle.publish_commit(1, ts)
        assert oracle.watermark() == ts

    def test_watermark_pinned_by_oldest_active(self):
        oracle = TimestampOracle()
        old_txn, old_start = oracle.begin_transaction()
        ts = oracle.issue_commit_timestamp()
        oracle.publish_commit(99, ts)
        _new_txn, _ = oracle.begin_transaction()
        assert oracle.watermark() == old_start
        oracle.retire_transaction(old_txn)
        assert oracle.watermark() >= old_start

    def test_retire_and_active_tracking(self):
        oracle = TimestampOracle()
        txn, start = oracle.begin_transaction()
        assert oracle.is_active(txn)
        assert oracle.start_ts_of(txn) == start
        assert oracle.active_count() == 1
        assert oracle.active_start_timestamps() == {txn: start}
        oracle.retire_transaction(txn)
        assert not oracle.is_active(txn)
        assert oracle.start_ts_of(txn) is None

    def test_publish_commit_retires_transaction(self):
        oracle = TimestampOracle()
        txn, _ = oracle.begin_transaction()
        ts = oracle.issue_commit_timestamp()
        oracle.publish_commit(txn, ts)
        assert not oracle.is_active(txn)
        assert oracle.latest_commit_ts == ts

    def test_advance_to(self):
        oracle = TimestampOracle()
        oracle.advance_to(100)
        assert oracle.latest_commit_ts == 100
        assert oracle.issue_commit_timestamp() == 101
        # advance_to never goes backwards
        oracle.advance_to(50)
        assert oracle.latest_commit_ts == 100

    def test_counters(self):
        oracle = TimestampOracle()
        oracle.begin_transaction()
        oracle.issue_commit_timestamp()
        assert oracle.transactions_started == 1
        assert oracle.commits_issued == 1


class TestOutOfOrderPublication:
    """The sharded pipeline's publish protocol: watermark = contiguous prefix."""

    def test_out_of_order_publish_waits_for_the_gap(self):
        oracle = TimestampOracle()
        first = oracle.issue_commit_timestamp()
        second = oracle.issue_commit_timestamp()
        # The younger commit finishes installing first.
        oracle.publish_commit(102, second)
        assert oracle.latest_commit_ts == 0
        _, start_ts = oracle.begin_transaction()
        assert start_ts == 0  # neither commit is coverable yet
        assert oracle.pending_commit_count() == 1
        # Closing the gap exposes both at once.
        oracle.publish_commit(101, first)
        assert oracle.latest_commit_ts == second
        _, start_ts = oracle.begin_transaction()
        assert start_ts == second
        assert oracle.pending_commit_count() == 0

    def test_stalled_commit_pins_snapshot_watermark(self):
        oracle = TimestampOracle()
        stalled = oracle.issue_commit_timestamp()
        for txn_id in range(3):
            ts = oracle.issue_commit_timestamp()
            oracle.publish_commit(200 + txn_id, ts)
        # Three younger commits are fully published, but the snapshot
        # watermark must not pass the stalled commit.
        assert oracle.latest_commit_ts == stalled - 1
        assert oracle.pending_commit_count() >= 1
        oracle.publish_commit(199, stalled)
        assert oracle.latest_commit_ts == stalled + 3
        assert oracle.pending_commit_count() == 0

    def test_gc_watermark_never_passes_a_pending_commit(self):
        oracle = TimestampOracle()
        ts = oracle.issue_commit_timestamp()
        later = oracle.issue_commit_timestamp()
        oracle.publish_commit(300, later)
        # No active transactions: the GC watermark equals the snapshot
        # watermark, which the pending commit holds below both timestamps.
        assert oracle.watermark() < ts
        oracle.publish_commit(301, ts)
        assert oracle.watermark() == later

    def test_double_publish_is_idempotent(self):
        oracle = TimestampOracle()
        ts = oracle.issue_commit_timestamp()
        oracle.publish_commit(400, ts)
        oracle.publish_commit(400, ts)
        assert oracle.latest_commit_ts == ts
        assert oracle.pending_commit_count() == 0
