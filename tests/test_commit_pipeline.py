"""Tests for the sharded commit pipeline.

Covers the properties the refactor must preserve and the new ones it adds:

* multi-threaded bank transfers keep every snapshot's total constant, whether
  the committers' write sets land on disjoint or overlapping stripes,
* a committer stalled mid-install pins the snapshot watermark — later commits
  stay invisible to new snapshots until the gap closes (no torn snapshots),
* ``commit_stripes=1`` degenerates to the seed's fully-serialised behaviour,
* ``pause_commits`` (the stop-the-world vacuum hook) still excludes every
  committer, and
* group commit coalesces concurrent committers into fewer WAL flushes without
  losing any batch.
"""

from __future__ import annotations

import threading

import pytest

from repro import GraphDatabase, IsolationLevel, WriteWriteConflictError
from repro.core.si_manager import SnapshotIsolationEngine
from repro.graph.entity import NodeData
from repro.graph.store_manager import StoreManager

ACCOUNTS = 16
INITIAL_BALANCE = 100
TOTAL = ACCOUNTS * INITIAL_BALANCE


def _open_bank(**options) -> tuple:
    db = GraphDatabase.in_memory(isolation=IsolationLevel.SNAPSHOT, **options)
    with db.transaction() as tx:
        account_ids = [
            tx.create_node(labels=["Account"], properties={"balance": INITIAL_BALANCE}).id
            for _ in range(ACCOUNTS)
        ]
    return db, account_ids


def _transfer(db, source: int, target: int, amount: int) -> bool:
    """Move ``amount`` between two accounts; False when the commit conflicts."""
    try:
        with db.transaction() as tx:
            tx.set_node_property(source, "balance", tx.get_node(source)["balance"] - amount)
            tx.set_node_property(target, "balance", tx.get_node(target)["balance"] + amount)
        return True
    except WriteWriteConflictError:
        return False


def _snapshot_total(db, account_ids) -> int:
    with db.transaction(read_only=True) as tx:
        return sum(tx.get_node(account_id)["balance"] for account_id in account_ids)


def _run_bank_workload(db, account_ids, *, pairs, transfers_per_thread=40):
    """Concurrent transfer threads plus a reader asserting the invariant."""
    stop = threading.Event()
    totals_seen = []
    reader_error = []

    def reader():
        while not stop.is_set():
            total = _snapshot_total(db, account_ids)
            totals_seen.append(total)
            if total != TOTAL:
                reader_error.append(total)
                return

    def writer(source, target):
        for iteration in range(transfers_per_thread):
            _transfer(db, source, target, amount=1 + iteration % 5)
            _transfer(db, target, source, amount=1 + iteration % 5)

    reader_thread = threading.Thread(target=reader, daemon=True)
    writer_threads = [
        threading.Thread(target=writer, args=pair, daemon=True) for pair in pairs
    ]
    reader_thread.start()
    for thread in writer_threads:
        thread.start()
    for thread in writer_threads:
        thread.join()
    stop.set()
    reader_thread.join()
    assert not reader_error, f"snapshot saw torn total {reader_error[0]} != {TOTAL}"
    assert totals_seen, "the reader never captured a snapshot"
    assert _snapshot_total(db, account_ids) == TOTAL


class TestBankTransferInvariant:
    @pytest.mark.parametrize("stripes", [1, 4, 16])
    def test_disjoint_stripe_transfers_keep_total_constant(self, stripes):
        db, accounts = _open_bank(commit_stripes=stripes)
        # Pair accounts so every thread owns a disjoint account pair.
        pairs = [(accounts[i], accounts[i + 1]) for i in range(0, 8, 2)]
        _run_bank_workload(db, accounts, pairs=pairs)
        db.close()

    def test_overlapping_stripe_transfers_keep_total_constant(self):
        db, accounts = _open_bank(commit_stripes=8, group_commit=True)
        # Every thread shares the first account: all pairs overlap.
        pairs = [(accounts[0], accounts[i]) for i in range(1, 5)]
        _run_bank_workload(db, accounts, pairs=pairs)
        db.close()


class _StallingStore(StoreManager):
    """Store manager that blocks one chosen transaction inside apply_batch."""

    def __init__(self) -> None:
        super().__init__(None)
        self.stall_txn_id = None
        self.stalled = threading.Event()
        self.release = threading.Event()

    def apply_batch(self, txn_id, operations):
        if txn_id == self.stall_txn_id:
            self.stalled.set()
            assert self.release.wait(timeout=10.0), "stalled committer never released"
        super().apply_batch(txn_id, operations)


class TestWatermarkPublication:
    def test_stalled_committer_pins_the_snapshot_watermark(self):
        store = _StallingStore()
        engine = SnapshotIsolationEngine(store, commit_stripes=16)
        setup = engine.begin()
        node_a = engine.allocate_node_id()
        node_b = engine.allocate_node_id()
        setup.put_node(NodeData(node_a, {"A"}, {"value": 0}), create=True)
        setup.put_node(NodeData(node_b, {"B"}, {"value": 0}), create=True)
        setup.commit()

        slow = engine.begin()
        slow.put_node(NodeData(node_a, {"A"}, {"value": 1}))
        store.stall_txn_id = slow.txn_id
        slow_thread = threading.Thread(target=slow.commit, daemon=True)
        slow_thread.start()
        assert store.stalled.wait(timeout=10.0)
        store.stall_txn_id = None

        # A fast committer on a disjoint stripe finishes entirely...
        fast = engine.begin()
        fast.put_node(NodeData(node_b, {"B"}, {"value": 2}))
        fast.commit()
        assert engine.oracle.pending_commit_count() >= 1

        # ...but a fresh snapshot must not cover it: the stalled commit holds
        # an older timestamp, so exposing the fast commit would tear the
        # snapshot ordering.
        reader = engine.begin(read_only=True)
        assert reader.read_node(node_a).properties["value"] == 0
        assert reader.read_node(node_b).properties["value"] == 0
        reader.commit()

        store.release.set()
        slow_thread.join(timeout=10.0)
        assert not slow_thread.is_alive()
        assert engine.oracle.pending_commit_count() == 0

        reader = engine.begin(read_only=True)
        assert reader.read_node(node_a).properties["value"] == 1
        assert reader.read_node(node_b).properties["value"] == 2
        reader.commit()
        store.close()

    def test_single_stripe_serialises_disjoint_commits(self):
        """The escape hatch: with one stripe a stalled committer blocks all."""
        store = _StallingStore()
        engine = SnapshotIsolationEngine(store, commit_stripes=1)
        assert engine.commit_stripe_count == 1
        setup = engine.begin()
        node_a = engine.allocate_node_id()
        node_b = engine.allocate_node_id()
        setup.put_node(NodeData(node_a, {"A"}), create=True)
        setup.put_node(NodeData(node_b, {"B"}), create=True)
        setup.commit()

        slow = engine.begin()
        slow.put_node(NodeData(node_a, {"A"}, {"value": 1}))
        store.stall_txn_id = slow.txn_id
        slow_thread = threading.Thread(target=slow.commit, daemon=True)
        slow_thread.start()
        assert store.stalled.wait(timeout=10.0)
        store.stall_txn_id = None

        fast = engine.begin()
        fast.put_node(NodeData(node_b, {"B"}, {"value": 2}))
        fast_done = threading.Event()

        def fast_commit():
            fast.commit()
            fast_done.set()

        fast_thread = threading.Thread(target=fast_commit, daemon=True)
        fast_thread.start()
        # Disjoint write sets, but one stripe: the fast commit must queue.
        assert not fast_done.wait(timeout=0.3)
        store.release.set()
        assert fast_done.wait(timeout=10.0)
        slow_thread.join(timeout=10.0)
        store.close()


class TestPauseCommits:
    def test_pause_blocks_every_committer(self, si_db):
        with si_db.transaction() as tx:
            node_id = tx.create_node(labels=["Hot"], properties={"n": 0}).id
        committed = threading.Event()

        def commit_under_pause():
            with si_db.transaction() as tx:
                tx.set_node_property(node_id, "n", 1)
            committed.set()

        with si_db.pause_commits():
            thread = threading.Thread(target=commit_under_pause, daemon=True)
            thread.start()
            assert not committed.wait(timeout=0.3)
        assert committed.wait(timeout=10.0)
        thread.join(timeout=10.0)
        stats = si_db.statistics()
        assert stats["engine"]["commit_pipeline"]["commit_pauses"] == 1

    def test_vacuum_still_stops_the_world(self, si_db):
        with si_db.transaction() as tx:
            node_id = tx.create_node(labels=["Hot"], properties={"n": 0}).id
        for value in range(3):
            with si_db.transaction() as tx:
                tx.set_node_property(node_id, "n", value)
        vacuum = si_db.create_vacuum_collector()
        stats = vacuum.collect()
        assert stats.versions_collected >= 1
        assert si_db.statistics()["engine"]["commit_pipeline"]["commit_pauses"] == 1


class TestGroupCommit:
    def test_concurrent_batches_coalesce_without_loss(self):
        db, accounts = _open_bank(commit_stripes=16, group_commit=True)
        pairs = [(accounts[i], accounts[i + 1]) for i in range(0, 12, 2)]
        _run_bank_workload(db, accounts, pairs=pairs, transfers_per_thread=25)
        stats = db.store.stats
        assert stats.group_batches == stats.batches_applied
        assert stats.group_flushes >= 1
        assert stats.group_flushes <= stats.group_batches
        db.close()

    def test_group_commit_preserves_wal_replay(self, tmp_path):
        path = str(tmp_path / "grouped")
        db = GraphDatabase.open(
            path, isolation=IsolationLevel.SNAPSHOT, group_commit=True
        )
        with db.transaction() as tx:
            node_id = tx.create_node(labels=["Durable"], properties={"v": 1}).id
        # Simulate a crash: skip checkpoint/close and replay the WAL fresh.
        db.store.wal.close()
        recovered = StoreManager(path)
        assert recovered.stats.batches_replayed >= 1
        node = recovered.read_node(node_id)
        assert node is not None and node.properties["v"] == 1
        recovered.close()

    def test_statistics_report_pipeline_counters(self):
        db, accounts = _open_bank(commit_stripes=4, group_commit=True)
        _transfer(db, accounts[0], accounts[1], 5)
        stats = db.statistics()
        pipeline = stats["engine"]["commit_pipeline"]
        assert pipeline["stripes"] == 4
        assert pipeline["stripe_acquisitions"] >= 1
        assert stats["engine"]["oracle"]["pending_commits"] == 0
        assert "group_flushes" in stats["store"]
        db.close()
