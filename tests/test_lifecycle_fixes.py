"""Regression tests for the database lifecycle fixes.

Three bugs shipped alongside the network service layer, each with the
contract it violated:

* ``run_transaction`` used to retry :class:`DatabaseReadOnlyError` even
  though degraded mode is one-way in-process — every retry was a wasted
  backoff sleep ending in the same error.  Non-retryable aborts
  (``retryable = False``) must now surface immediately, without invoking
  ``on_retry``.
* ``close()`` used to leak running metrics exporters: the daemon scrape
  thread kept answering ``/metrics`` for an engine whose files were gone.
  Every exporter started via ``serve_metrics`` must stop in ``close()``.
* ``close()`` used to race in-flight transactions — engine and store were
  torn down under a committing transaction, surfacing OS-level errors on
  closed files.  ``close()`` now drains: commits that finish inside the
  window are fully durable, stragglers are fenced with a clean
  :class:`TransactionClosedError`, and new ``begin()`` calls get
  :class:`DatabaseClosedError`.
"""

import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import (
    DatabaseReadOnlyError,
    DegradedModeError,
    FailpointRegistry,
    GraphDatabase,
    TransactionAbortedError,
)
from repro.errors import (
    DatabaseClosedError,
    ServerDrainingError,
    TransactionClosedError,
    WalError,
)


def _degrade(db):
    """Drive the database into degraded mode via an unrecoverable append."""
    db.failpoints.arm("wal.append", "always:error")
    victim = db.begin()
    victim.create_node(labels=["Victim"])
    with pytest.raises(WalError):
        victim.commit()
    db.failpoints.disarm("wal.append")
    assert db.health()["status"] == "degraded"


# ---------------------------------------------------------------------------
# fix 1: non-retryable aborts are not retried
# ---------------------------------------------------------------------------


class TestDegradedModeIsNotRetried:
    def test_retry_contract_flags(self):
        # The retry loop keys off the class-level flag, so pin it here.
        assert TransactionAbortedError.retryable is True
        assert DegradedModeError.retryable is False
        assert DatabaseReadOnlyError.retryable is False
        assert ServerDrainingError.retryable is True

    def test_run_transaction_reraises_degraded_immediately(self, tmp_path):
        db = GraphDatabase.open(str(tmp_path / "db"), failpoints=FailpointRegistry())
        retries = []
        calls = []

        def fn(tx):
            calls.append(1)
            tx.create_node(labels=["Item"])
            # Degrade the engine under the open transaction: its own commit
            # is then fenced with DatabaseReadOnlyError.
            _degrade(db)

        with pytest.raises(DatabaseReadOnlyError) as excinfo:
            db.run_transaction(
                fn,
                retries=5,
                base_backoff_seconds=0.2,
                on_retry=lambda attempt, exc: retries.append(attempt),
            )
        assert excinfo.value.retryable is False
        assert retries == []  # no backoff sleep was ever scheduled
        assert calls == [1]  # the function ran exactly once
        db.close()

    def test_retryable_aborts_still_retry(self, si_db):
        with si_db.begin() as tx:
            node = tx.create_node(labels=["Counter"], properties={"value": 0})
        retries = []
        blocker = si_db.begin()
        blocker.get_node(node.id).set_property("value", 100)

        def bump(tx):
            handle = tx.get_node(node.id)
            # First-updater-wins: conflicts until the blocker is resolved.
            if not retries:
                blocker.commit()
            handle.set_property("value", handle["value"] + 1)

        si_db.run_transaction(
            bump,
            retries=5,
            base_backoff_seconds=0.001,
            on_retry=lambda attempt, exc: retries.append(attempt),
        )
        assert retries  # the conflict path still goes through the loop
        with si_db.begin(read_only=True) as tx:
            assert tx.get_node(node.id)["value"] == 101


# ---------------------------------------------------------------------------
# fix 2: close() stops the exporters it started
# ---------------------------------------------------------------------------


class TestExporterLifecycle:
    def test_close_stops_every_exporter(self):
        db = GraphDatabase.in_memory()
        first = db.serve_metrics()
        second = db.serve_metrics()
        with urllib.request.urlopen(first.url, timeout=5) as response:
            assert response.status == 200
        db.close()
        assert not first.is_running
        assert not second.is_running
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            urllib.request.urlopen(first.url, timeout=2)

    def test_close_tolerates_manually_stopped_exporter(self):
        db = GraphDatabase.in_memory()
        exporter = db.serve_metrics()
        exporter.stop()
        exporter.stop()  # stop() itself is idempotent
        db.close()  # and close() must not trip over the dead exporter
        assert not exporter.is_running


# ---------------------------------------------------------------------------
# fix 3: close() drains instead of racing in-flight transactions
# ---------------------------------------------------------------------------


class TestCloseDrain:
    def test_close_waits_for_inflight_commit_and_keeps_it_durable(self, tmp_path):
        path = str(tmp_path / "db")
        db = GraphDatabase.open(path)
        started = threading.Event()
        outcome = []

        def worker():
            tx = db.begin()
            tx.create_node(labels=["Item"], properties={"name": "acked"})
            started.set()
            time.sleep(0.3)  # close() is already draining by now
            tx.commit()
            outcome.append("committed")

        thread = threading.Thread(target=worker)
        thread.start()
        started.wait(timeout=5)
        db.close(drain_timeout=5.0)
        thread.join(timeout=5)
        assert outcome == ["committed"]
        reopened = GraphDatabase.open(path)
        try:
            with reopened.begin(read_only=True) as tx:
                names = [node["name"] for node in tx.find_nodes(label="Item")]
            assert names == ["acked"]
        finally:
            reopened.close()

    def test_stragglers_are_fenced_with_a_clean_error(self):
        db = GraphDatabase.in_memory()
        tx = db.begin()
        tx.create_node(labels=["Item"])
        db.close(drain_timeout=0.2)
        assert not tx.is_open
        with pytest.raises(TransactionClosedError):
            tx.commit()

    def test_begin_is_fenced_once_draining_starts(self):
        db = GraphDatabase.in_memory()
        straggler = db.begin()  # keeps the drain loop waiting
        closer = threading.Thread(target=lambda: db.close(drain_timeout=2.0))
        closer.start()
        deadline = time.monotonic() + 5.0
        fenced = False
        while time.monotonic() < deadline:
            try:
                tx = db.begin()
            except DatabaseClosedError:
                fenced = True
                break
            # The fence is not up yet; this transaction joined the drain set.
            tx.rollback()
            time.sleep(0.01)
        assert fenced
        straggler.rollback()  # releases the drain loop
        closer.join(timeout=5)
        assert db.is_closed

    def test_begin_after_close_raises_database_closed(self):
        db = GraphDatabase.in_memory()
        db.close()
        with pytest.raises(DatabaseClosedError):
            db.begin()
        db.close()  # idempotent

    def test_lifecycle_stats_surface_drain_counts(self):
        db = GraphDatabase.in_memory()
        with db.begin() as tx:
            tx.create_node(labels=["Item"])
        stats = db.statistics()["lifecycle"]
        assert stats["active"] == 0
        assert stats["closed"] == 0
        db.close()
