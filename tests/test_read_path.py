"""Tests for the lock-free read path (PR 3).

Covers the copy-on-write version chains (reads succeed while the write lock
is held — the paper's "readers never block" taken literally), GC racing the
new chains, the snapshot-local adjacency/payload caches, the stats-epoch
plan cache, the configurable parse cache, token interning and the
read-committed eager-unlock guard.
"""

import threading
import time

import pytest

from repro import GraphDatabase, IsolationLevel
from repro.core.si_manager import SnapshotIsolationEngine
from repro.core.version import Version, VersionChain
from repro.graph.entity import EntityKey, NodeData
from repro.graph.store_manager import StoreManager
from repro.locking.lock_manager import LockManager, LockMode
from repro.stats import CardinalityEpoch

KEY = EntityKey.node(1)


def _version(commit_ts, payload="x"):
    data = None if payload is None else NodeData(KEY.entity_id, properties={"v": payload})
    return Version(KEY, data, commit_ts)


class TestLockFreeChainReads:
    def test_reads_succeed_while_write_lock_is_held_by_another_thread(self):
        """The acceptance check: resolution takes zero lock acquisitions."""
        chain = VersionChain(KEY)
        for ts in (1, 3, 5):
            chain.add_committed(_version(ts, payload=f"v{ts}"))

        results = {}
        lock_taken = threading.Event()
        release = threading.Event()

        def hold_write_lock():
            with chain.write_lock:
                lock_taken.set()
                release.wait(timeout=5.0)

        holder = threading.Thread(target=hold_write_lock, daemon=True)
        holder.start()
        assert lock_taken.wait(timeout=5.0)

        def read():
            results["visible"] = chain.visible_to(4)
            results["newest"] = chain.newest()
            results["oldest"] = chain.oldest()
            results["len"] = len(chain)

        reader = threading.Thread(target=read, daemon=True)
        reader.start()
        reader.join(timeout=2.0)
        try:
            assert not reader.is_alive(), "chain reads blocked on the write lock"
            assert results["visible"].commit_ts == 3
            assert results["newest"].commit_ts == 5
            assert results["oldest"].commit_ts == 1
            assert results["len"] == 3
        finally:
            release.set()
            holder.join(timeout=5.0)

    def test_visible_to_binary_search_matches_read_rule(self):
        chain = VersionChain(KEY)
        timestamps = [2, 5, 9, 14, 20, 31, 44]
        for ts in timestamps:
            chain.add_committed(_version(ts, payload=f"v{ts}"))
        for start_ts in range(0, 50):
            expected = max((ts for ts in timestamps if ts <= start_ts), default=None)
            visible = chain.visible_to(start_ts)
            if expected is None:
                assert visible is None
            else:
                assert visible.commit_ts == expected

    def test_remove_publishes_fresh_tuple(self):
        chain = VersionChain(KEY)
        first, second, third = _version(1), _version(2), _version(3)
        for version in (first, second, third):
            chain.add_committed(version)
        before = chain.snapshot()
        assert chain.remove(second)
        assert not chain.remove(second)  # already gone
        after = chain.snapshot()
        assert before == (third, second, first)  # old tuple untouched
        assert after == (third, first)
        assert chain.visible_to(2).commit_ts == 1

    def test_out_of_order_install_rejected(self):
        chain = VersionChain(KEY)
        chain.add_committed(_version(5))
        with pytest.raises(ValueError):
            chain.add_committed(_version(4))


class TestInstallCommitted:
    def test_install_lands_in_resident_chain_even_after_eviction(self):
        """A commit must never install into an evicted (orphaned) chain."""
        from repro.core.version_store import VersionStore

        store = VersionStore(cache_capacity=1)
        base = _version(1, payload="old")
        store.install_committed(KEY, base, lambda: None)
        # Evict the chain by flooding the capacity-1 cache with another key.
        other = EntityKey.node(2)
        store.install_committed(
            other, Version(other, NodeData(2, properties={}), 2), lambda: None
        )
        assert store.get_chain(KEY) is None  # really evicted
        # Install a newer version; the loader simulates the persisted state.
        newer = _version(3, payload="new")
        superseded = store.install_committed(
            KEY, newer, lambda: (base.payload, base.commit_ts)
        )
        assert superseded is not None and superseded.commit_ts == 1
        chain = store.get_chain(KEY)
        assert chain is not None
        assert [v.commit_ts for v in chain.snapshot()] == [3, 1]

    def test_install_returns_superseded_version(self):
        from repro.core.version_store import VersionStore

        store = VersionStore()
        first, second = _version(1), _version(2)
        assert store.install_committed(KEY, first, lambda: None) is None
        assert store.install_committed(KEY, second, lambda: None) is first


class TestGcRacesCopyOnWriteChains:
    def test_long_snapshot_keeps_its_version_while_auto_gc_reclaims(self):
        """A pinned snapshot must survive gc_every_n_commits reclaiming garbage.

        History 0..4 is committed first, so versions 0..3 are already
        superseded *below* where the long reader will start; the automatic GC
        passes triggered by the later commits reclaim them (chain-tuple
        swaps) while the reader keeps resolving its pinned version 4, and
        versions above the reader's snapshot stay retained by the watermark.
        """
        store = StoreManager(None, reuse_entity_ids=False)
        engine = SnapshotIsolationEngine(store, gc_every_n_commits=2)
        setup = engine.begin()
        node_id = engine.allocate_node_id()
        setup.put_node(NodeData(node_id, {"Item"}, {"value": 0}), create=True)
        setup.commit()
        for value in range(1, 5):
            writer = engine.begin()
            current = writer.read_node(node_id)
            writer.put_node(current.with_property("value", value))
            writer.commit()

        long_reader = engine.begin(read_only=True)
        assert long_reader.read_node(node_id).properties["value"] == 4

        collected_before = engine.gc.total_stats.versions_collected
        for value in range(5, 11):
            writer = engine.begin()
            current = writer.read_node(node_id)
            writer.put_node(current.with_property("value", value))
            writer.commit()
            # The long reader keeps resolving its pinned version between
            # every commit (and the automatic GC passes they trigger); go
            # through a fresh uncached resolution each time so the chain is
            # actually re-read.
            resolved = engine.read_committed_version(
                EntityKey.node(node_id), long_reader.snapshot.start_ts
            )
            assert resolved.properties["value"] == 4

        # Garbage below the reader's snapshot was reclaimed while it lived...
        assert engine.gc.total_stats.versions_collected > collected_before
        chain = engine.versions.get_chain(EntityKey.node(node_id))
        retained = sorted(version.payload.properties["value"] for version in chain.snapshot())
        assert 4 in retained  # ...but its own version is still there,
        assert 0 not in retained  # and the pre-snapshot garbage is gone.

        long_reader.rollback()
        engine.run_gc()
        assert engine.versions.get_chain(EntityKey.node(node_id)).version_count() == 1
        fresh = engine.begin(read_only=True)
        assert fresh.read_node(node_id).properties["value"] == 10
        fresh.rollback()
        store.close()

    def test_concurrent_readers_vs_writers_and_gc_smoke(self):
        """Hammer reads against commits + GC; every read must be torn-free."""
        db = GraphDatabase.in_memory(gc_every_n_commits=4)
        with db.transaction() as tx:
            nodes = [
                tx.create_node(["Counter"], {"slot": index, "value": 0})
                for index in range(8)
            ]
        node_ids = [node.id for node in nodes]
        stop = threading.Event()
        errors = []

        def writer():
            value = 0
            while not stop.is_set():
                value += 1
                with db.transaction() as tx:
                    # All slots move together; a consistent snapshot sees one value.
                    for node_id in node_ids:
                        tx.set_node_property(node_id, "value", value)

        def reader():
            while not stop.is_set():
                with db.transaction(read_only=True) as tx:
                    values = {tx.get_node(nid).get("value") for nid in node_ids}
                    if len(values) != 1:
                        errors.append(values)

        threads = [threading.Thread(target=writer, daemon=True)] + [
            threading.Thread(target=reader, daemon=True) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.6)
        stop.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert not errors, f"torn snapshot reads observed: {errors[:3]}"
        db.close()


class TestSnapshotLocalCaches:
    def test_point_lookup_payloads_are_cached_per_snapshot(self):
        db = GraphDatabase.in_memory()
        with db.transaction() as tx:
            alice = tx.create_node(["Person"], {"name": "Alice"})
        with db.transaction(read_only=True) as tx:
            engine_txn = tx.engine_transaction
            for _ in range(5):
                assert tx.get_node(alice.id).get("name") == "Alice"
            stats = engine_txn.snapshot_cache_stats()
            assert stats["hits"] >= 4
            assert stats["payload_entries"] >= 1
        db.close()

    def test_adjacency_cache_overlays_own_writes(self):
        db = GraphDatabase.in_memory()
        with db.transaction() as tx:
            a = tx.create_node(["P"], {"name": "a"})
            b = tx.create_node(["P"], {"name": "b"})
            c = tx.create_node(["P"], {"name": "c"})
            ab = tx.create_relationship(a, b, "KNOWS")
            tx.create_relationship(a, c, "KNOWS")
        with db.transaction() as tx:
            assert len(tx.relationships_of(a)) == 2  # populates the cache
            tx.delete_relationship(ab.id)
            remaining = tx.relationships_of(a)
            assert [rel.other_node_id(a.id) for rel in remaining] == [c.id]
            d = tx.create_node(["P"], {"name": "d"})
            tx.create_relationship(a, d, "KNOWS")
            assert {rel.other_node_id(a.id) for rel in tx.relationships_of(a)} == {
                c.id,
                d.id,
            }
            tx.rollback()
        # After rollback the committed adjacency is unchanged.
        with db.transaction(read_only=True) as tx:
            assert len(tx.relationships_of(a)) == 2
        db.close()

    def test_cached_traversal_is_snapshot_consistent_across_commits(self):
        db = GraphDatabase.in_memory()
        with db.transaction() as tx:
            hub = tx.create_node(["Person"], {"name": "hub"})
            spokes = [tx.create_node(["Person"], {"name": f"s{i}"}) for i in range(3)]
            for spoke in spokes:
                tx.create_relationship(hub, spoke, "KNOWS")
        reader = db.transaction(read_only=True)
        assert len(reader.relationships_of(hub)) == 3  # cache the adjacency
        with db.transaction() as tx:
            extra = tx.create_node(["Person"], {"name": "late"})
            tx.create_relationship(hub, extra, "KNOWS")
        # The cached snapshot keeps answering from its own world...
        assert len(reader.relationships_of(hub)) == 3
        reader.rollback()
        # ...while a fresh snapshot sees the new edge.
        with db.transaction(read_only=True) as tx:
            assert len(tx.relationships_of(hub)) == 4
        db.close()

    def test_snapshot_read_cache_can_be_disabled(self):
        db = GraphDatabase.in_memory(snapshot_read_cache=False)
        with db.transaction() as tx:
            node = tx.create_node(["P"], {"name": "n"})
        with db.transaction(read_only=True) as tx:
            for _ in range(3):
                tx.get_node(node.id)
            stats = tx.engine_transaction.snapshot_cache_stats()
            assert stats["hits"] == 0 and stats["misses"] == 0
        db.close()


class TestQueryCaches:
    def test_plan_cache_hits_on_repeat_and_expires_on_epoch_bump(self):
        db = GraphDatabase.in_memory(query_cache_size=64)
        with db.transaction() as tx:
            for index in range(4):
                tx.create_node(["Person"], {"name": f"p{index}", "age": 20 + index})
        query = "MATCH (p:Person {name: $name}) RETURN p.age"
        db.execute(query, name="p1")
        before = db.statistics()["query_cache"]["plan"]
        db.execute(query, name="p2")
        after = db.statistics()["query_cache"]["plan"]
        assert after["hits"] == before["hits"] + 1

        # Force a statistics drift: the epoch bumps, the cached plan expires.
        epoch_before = db.engine.cardinality_epoch()
        with db.transaction() as tx:
            for index in range(200):
                tx.create_node(["Filler"], {"n": index})
        assert db.engine.cardinality_epoch() > epoch_before
        hits_before = db.statistics()["query_cache"]["plan"]["hits"]
        db.execute(query, name="p3")
        stats = db.statistics()["query_cache"]["plan"]
        assert stats["hits"] == hits_before  # epoch mismatch -> replanned
        db.close()

    def test_parse_cache_counts_hits_and_misses(self):
        db = GraphDatabase.in_memory()
        db.execute("RETURN 1 AS one")
        db.execute("RETURN 1 AS one")
        parse_stats = db.statistics()["query_cache"]["parse"]
        assert parse_stats["misses"] >= 1
        assert parse_stats["hits"] >= 1
        db.close()

    def test_query_cache_size_zero_disables_caching(self):
        db = GraphDatabase.in_memory(query_cache_size=0)
        db.execute("RETURN 1 AS one")
        db.execute("RETURN 1 AS one")
        stats = db.statistics()["query_cache"]
        assert stats["parse"]["size"] == 0
        assert stats["plan"]["size"] == 0
        db.close()

    def test_profile_bypasses_plan_cache_and_reports_actuals(self):
        db = GraphDatabase.in_memory()
        with db.transaction() as tx:
            tx.create_node(["Person"], {"name": "solo"})
        db.execute("MATCH (p:Person) RETURN p.name")
        result = db.execute("PROFILE MATCH (p:Person) RETURN p.name")
        rendered = result.render_plan()
        assert "actual=1" in rendered
        db.close()

    def test_rc_supplied_index_manager_is_wired_into_the_epoch(self):
        from repro.index.index_manager import IndexManager
        from repro.locking.rc_manager import ReadCommittedEngine

        store = StoreManager(None, reuse_entity_ids=True)
        engine = ReadCommittedEngine(store, index_manager=IndexManager())
        assert engine.indexes.stats_epoch is engine.stats_epoch
        before = engine.cardinality_epoch()
        for index in range(300):
            engine.indexes.apply_node_change(None, NodeData(index, {"L"}))
        assert engine.cardinality_epoch() > before
        store.close()

    def test_rc_engine_also_caches_plans(self):
        db = GraphDatabase.in_memory(isolation=IsolationLevel.READ_COMMITTED)
        with db.transaction() as tx:
            tx.create_node(["Person"], {"name": "rc"})
        query = "MATCH (p:Person {name: $name}) RETURN p.name"
        db.execute(query, name="rc")
        db.execute(query, name="rc")
        assert db.statistics()["query_cache"]["plan"]["hits"] >= 1
        db.close()


class TestCardinalityEpoch:
    def test_bumps_after_min_changes(self):
        epoch = CardinalityEpoch(min_changes=10)
        for _ in range(9):
            epoch.record(1)
        assert epoch.epoch == 0
        epoch.record(1)
        assert epoch.epoch == 1

    def test_threshold_scales_with_population(self):
        epoch = CardinalityEpoch(min_changes=10, drift_fraction=0.5)
        for _ in range(10):
            epoch.record(1)  # population 10, bump #1
        assert epoch.epoch == 1
        # Now population 10 -> threshold max(10, 5) = 10 again.
        for _ in range(990):
            epoch.record(1)
        # Population ~1000: drift threshold grows, bumps get rarer.
        assert 1 < epoch.epoch < 100


class TestTokenInterning:
    def test_property_keys_share_one_object_across_entities(self):
        db = GraphDatabase.in_memory()
        with db.transaction() as tx:
            first = tx.create_node(["P"], {"a_rather_unique_key": 1})
            second = tx.create_node(["P"], {"a_rather" + "_unique_key": 2})
        with db.transaction(read_only=True) as tx:
            keys_first = list(tx.get_node(first.id).properties)
            keys_second = list(tx.get_node(second.id).properties)
            assert keys_first[0] is keys_second[0]
        db.close()

    def test_labels_are_interned_at_the_api_boundary(self):
        db = GraphDatabase.in_memory()
        with db.transaction() as tx:
            node_a = tx.create_node(["Quite" + "UniqueLabel"])
            node_b = tx.create_node(["QuiteUnique" + "Label"])
        with db.transaction(read_only=True) as tx:
            (label_a,) = tx.get_node(node_a.id).labels
            (label_b,) = tx.get_node(node_b.id).labels
            assert label_a is label_b
        db.close()


class TestRcEagerReadUnlock:
    def test_short_read_does_not_drop_retained_exclusive_lock(self):
        """Reading an entity the txn write-locked must not release that lock."""
        db = GraphDatabase.in_memory(isolation=IsolationLevel.READ_COMMITTED)
        with db.transaction() as tx:
            a = tx.create_node(["P"], {"name": "a"})
            b = tx.create_node(["P"], {"name": "b"})
        tx = db.transaction()
        tx.create_relationship(a, b, "KNOWS")  # long-locks both endpoints
        engine = db.engine
        key_a = EntityKey.node(a.id)
        assert engine.locks.holders_of(key_a).get(tx.id) == LockMode.EXCLUSIVE
        tx.get_node(a.id)  # short read of an endpoint we hold exclusively
        assert engine.locks.holders_of(key_a).get(tx.id) == LockMode.EXCLUSIVE
        tx.rollback()
        db.close()

    def test_shared_guard_releases_on_exit_and_legacy_mode_still_works(self):
        manager = LockManager()
        key = EntityKey.node(7)
        with manager.shared_guard(1, key):
            assert manager.holders_of(key) == {1: LockMode.SHARED}
        assert manager.holders_of(key) == {}

        db = GraphDatabase.in_memory(
            isolation=IsolationLevel.READ_COMMITTED, rc_eager_read_unlock=False
        )
        with db.transaction() as tx:
            node = tx.create_node(["P"], {"name": "legacy"})
        with db.transaction(read_only=True) as tx:
            assert tx.get_node(node.id).get("name") == "legacy"
        db.close()

    def test_shared_guard_blocks_behind_exclusive_writer(self):
        manager = LockManager()
        key = EntityKey.node(9)
        manager.acquire(100, key, LockMode.EXCLUSIVE)
        entered = threading.Event()

        def reader():
            with manager.shared_guard(200, key, timeout=5.0):
                entered.set()

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        time.sleep(0.15)
        assert not entered.is_set()  # still blocked behind the writer
        manager.release_all(100)
        assert entered.wait(timeout=5.0)
        thread.join(timeout=5.0)
