"""`Transaction.find_relationships` parity: rel_type= alongside properties."""

from __future__ import annotations

import pytest


@pytest.fixture
def edges(any_db):
    """Two KNOWS edges (since 2010/2012) and one LIKES edge (since 2010)."""
    with any_db.transaction() as tx:
        a = tx.create_node(["P"], {"name": "a"})
        b = tx.create_node(["P"], {"name": "b"})
        c = tx.create_node(["P"], {"name": "c"})
        k1 = tx.create_relationship(a, b, "KNOWS", {"since": 2010})
        k2 = tx.create_relationship(b, c, "KNOWS", {"since": 2012})
        l1 = tx.create_relationship(a, c, "LIKES", {"since": 2010})
    return any_db, (k1.id, k2.id, l1.id)


class TestFindRelationships:
    def test_by_type(self, edges):
        db, (k1, k2, l1) = edges
        with db.begin(read_only=True) as tx:
            assert [r.id for r in tx.find_relationships(rel_type="KNOWS")] == [k1, k2]
            assert [r.id for r in tx.find_relationships(rel_type="LIKES")] == [l1]
            assert tx.find_relationships(rel_type="ADMIRES") == []

    def test_by_property_still_works(self, edges):
        db, (k1, _k2, l1) = edges
        with db.begin(read_only=True) as tx:
            assert [r.id for r in tx.find_relationships("since", 2010)] == [k1, l1]

    def test_type_and_property_intersect(self, edges):
        db, (k1, _k2, _l1) = edges
        with db.begin(read_only=True) as tx:
            found = tx.find_relationships("since", 2010, rel_type="KNOWS")
            assert [r.id for r in found] == [k1]

    def test_requires_some_predicate(self, edges):
        db, _ids = edges
        with db.begin(read_only=True) as tx:
            with pytest.raises(ValueError):
                tx.find_relationships()
            with pytest.raises(ValueError):
                tx.find_relationships("since")
            with pytest.raises(ValueError):
                tx.find_relationships(value=2010, rel_type="KNOWS")

    def test_sees_own_uncommitted_writes(self, any_db):
        with any_db.transaction() as tx:
            a = tx.create_node(["P"])
            b = tx.create_node(["P"])
            created = tx.create_relationship(a, b, "KNOWS")
            assert [r.id for r in tx.find_relationships(rel_type="KNOWS")] == [
                created.id
            ]
            tx.delete_relationship(created)
            assert tx.find_relationships(rel_type="KNOWS") == []

    def test_uncommitted_writes_invisible_to_others(self, any_db):
        with any_db.transaction() as setup:
            a = setup.create_node(["P"])
            b = setup.create_node(["P"])
        writer = any_db.begin()
        try:
            writer.create_relationship(a.id, b.id, "KNOWS")
            with any_db.begin(read_only=True) as reader:
                assert reader.find_relationships(rel_type="KNOWS") == []
        finally:
            writer.rollback()

    def test_deleted_type_entry_disappears(self, edges):
        db, (k1, k2, _l1) = edges
        with db.transaction() as tx:
            tx.delete_relationship(k1)
        with db.begin(read_only=True) as tx:
            assert [r.id for r in tx.find_relationships(rel_type="KNOWS")] == [k2]
