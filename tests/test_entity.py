"""Unit tests for the logical entity model."""

import pytest

from repro.graph.entity import (
    Direction,
    EntityKey,
    EntityKind,
    NodeData,
    RelationshipData,
    entity_key_of,
)


class TestEntityKey:
    def test_factories(self):
        assert EntityKey.node(5) == EntityKey(EntityKind.NODE, 5)
        assert EntityKey.relationship(3) == EntityKey(EntityKind.RELATIONSHIP, 3)

    def test_hashable_and_ordered(self):
        keys = {EntityKey.node(1), EntityKey.node(1), EntityKey.relationship(1)}
        assert len(keys) == 2
        assert sorted([EntityKey.node(2), EntityKey.node(1)])[0].entity_id == 1


class TestDirection:
    def test_outgoing_matches_start(self):
        assert Direction.OUTGOING.matches(1, 1, 2)
        assert not Direction.OUTGOING.matches(2, 1, 2)

    def test_incoming_matches_end(self):
        assert Direction.INCOMING.matches(2, 1, 2)
        assert not Direction.INCOMING.matches(1, 1, 2)

    def test_both_matches_either(self):
        assert Direction.BOTH.matches(1, 1, 2)
        assert Direction.BOTH.matches(2, 1, 2)
        assert not Direction.BOTH.matches(3, 1, 2)

    def test_reverse(self):
        assert Direction.OUTGOING.reverse() is Direction.INCOMING
        assert Direction.INCOMING.reverse() is Direction.OUTGOING
        assert Direction.BOTH.reverse() is Direction.BOTH


class TestNodeData:
    def test_defaults(self):
        node = NodeData(1)
        assert node.labels == frozenset()
        assert dict(node.properties) == {}
        assert node.key == EntityKey.node(1)

    def test_immutable_and_freezes_arrays(self):
        node = NodeData(1, {"Person"}, {"tags": ["a", "b"]})
        assert node.properties["tags"] == ("a", "b")

    def test_with_property_returns_copy(self):
        node = NodeData(1, properties={"a": 1})
        updated = node.with_property("b", 2)
        assert updated.properties["b"] == 2
        assert "b" not in node.properties

    def test_without_property(self):
        node = NodeData(1, properties={"a": 1})
        assert "a" not in node.without_property("a").properties
        assert node.without_property("missing").properties == {"a": 1}

    def test_label_helpers(self):
        node = NodeData(1, {"Person"})
        assert node.with_label("Admin").labels == {"Person", "Admin"}
        assert node.without_label("Person").labels == frozenset()
        assert node.without_label("Missing").labels == {"Person"}

    def test_with_properties_replaces_map(self):
        node = NodeData(1, properties={"a": 1})
        assert dict(node.with_properties({"b": 2}).properties) == {"b": 2}


class TestRelationshipData:
    def test_key_and_endpoints(self):
        rel = RelationshipData(7, "KNOWS", 1, 2)
        assert rel.key == EntityKey.relationship(7)
        assert rel.endpoints() == (1, 2)

    def test_other_node(self):
        rel = RelationshipData(7, "KNOWS", 1, 2)
        assert rel.other_node(1) == 2
        assert rel.other_node(2) == 1
        with pytest.raises(ValueError):
            rel.other_node(9)

    def test_other_node_self_loop(self):
        rel = RelationshipData(7, "SELF", 3, 3)
        assert rel.other_node(3) == 3

    def test_touches(self):
        rel = RelationshipData(7, "KNOWS", 1, 2)
        assert rel.touches(1) and rel.touches(2)
        assert not rel.touches(3)

    def test_property_helpers(self):
        rel = RelationshipData(7, "KNOWS", 1, 2, {"since": 2010})
        assert rel.with_property("weight", 1.5).properties["weight"] == 1.5
        assert "since" not in rel.without_property("since").properties


class TestEntityKeyOf:
    def test_dispatch(self):
        assert entity_key_of(NodeData(1)) == EntityKey.node(1)
        assert entity_key_of(RelationshipData(2, "T", 0, 1)) == EntityKey.relationship(2)

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            entity_key_of("not an entity")
