"""Randomized stress over the history recorder + DSG checker.

Four worker threads hammer a small set of accounts with write-skew-prone
read-modify-write transactions plus read-only observers (which exercise the
safe-snapshot machinery under serializable isolation), every committed
transaction is recorded, and the resulting history is checked against the
isolation level's *promised* guarantee:

* ``SERIALIZABLE`` — the DSG must be fully acyclic, read-only observers
  included (this is precisely where the Fekete anomaly would show up as a
  cycle through an observer if safe snapshots were broken);
* ``SNAPSHOT`` — no cycle with fewer than two rw-antidependency edges
  (write skew is allowed and does occur; lost updates and the like are not).

Budget knobs (the nightly CI job raises them):

* ``STRESS_TXN_BUDGET`` — committed transactions per isolation level
  (default 5000, so a default run checks 10k+ committed transactions).
* ``STRESS_THREADS``, ``STRESS_SEED`` — concurrency and determinism knobs.
* ``HISTORY_ARTIFACT_DIR`` — if set, a failing run dumps the recorded
  history (transactions + DSG edges) there as a JSON artifact.
"""

import os
import threading
import time

import pytest

from repro import GraphDatabase, IsolationLevel, TransactionAbortedError
from repro.api.database import jittered_backoff

from harness import History, Recorder

TXN_BUDGET = int(os.environ.get("STRESS_TXN_BUDGET", "5000"))
THREADS = int(os.environ.get("STRESS_THREADS", "4"))
SEED = int(os.environ.get("STRESS_SEED", "1337"))
ACCOUNTS = 16
MAX_RETRIES = 60


def _run_with_retries(recorder, db, name, fn, *, read_only=False, rng=None):
    """The application retry contract, with the recorder wrapped around it."""
    for attempt in range(MAX_RETRIES):
        try:
            return recorder.run(db, name, fn, read_only=read_only)
        except TransactionAbortedError:
            time.sleep(jittered_backoff(min(attempt, 6), rng=rng))
    raise AssertionError(f"{name} aborted {MAX_RETRIES} times in a row")


def _stress(db, history):
    import random

    with db.transaction() as tx:
        ids = [
            tx.create_node(
                labels=["Account"], properties={"slot": i, "balance": 100}
            ).id
            for i in range(ACCOUNTS)
        ]
    recorder = Recorder(history)
    per_thread = TXN_BUDGET // THREADS
    failures = []

    def worker(worker_id):
        rng = random.Random(SEED + worker_id)
        try:
            for i in range(per_thread):
                roll = rng.random()
                name = f"w{worker_id}-{i}"
                if roll < 0.70:
                    # Write-skew-prone: read two accounts, debit one if the
                    # pair can cover it.
                    a, b = rng.sample(ids, 2)

                    def skew(ctx, a=a, b=b):
                        total = ctx.read(a, "balance") + ctx.read(b, "balance")
                        if total >= 10:
                            ctx.write(a, "balance", ctx.read(a, "balance") - 10)

                    _run_with_retries(recorder, db, name, skew, rng=rng)
                elif roll < 0.85:
                    # Plain increment (read-modify-write on one account).
                    a = rng.choice(ids)

                    def credit(ctx, a=a):
                        ctx.write(a, "balance", ctx.read(a, "balance") + 10)

                    _run_with_retries(recorder, db, name, credit, rng=rng)
                else:
                    # Read-only observer over a few accounts: under
                    # serializable this takes the safe-snapshot path.
                    chosen = rng.sample(ids, 3)

                    def observe(ctx, chosen=chosen):
                        for node_id in chosen:
                            ctx.read(node_id, "balance")

                    _run_with_retries(
                        recorder, db, name, observe, read_only=True, rng=rng
                    )
        except BaseException as exc:  # noqa: BLE001 - reported by the test
            failures.append(exc)

    threads = [threading.Thread(target=worker, args=(w,)) for w in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]


def _check(db, history, isolation):
    try:
        if isolation is IsolationLevel.SERIALIZABLE:
            history.assert_serializable()
            # Observers never abort: every abort is a writer's.
            reasons = db.statistics()["engine"]["transactions"]["abort_reasons"]
            assert reasons["ww-conflict"] + reasons["rw-antidependency"] + reasons[
                "safe-snapshot"
            ] + reasons["deadlock"] >= db.statistics()["engine"]["transactions"][
                "aborted"
            ] - 1
        else:
            history.assert_snapshot_isolation()
    except AssertionError:
        artifact_dir = os.environ.get("HISTORY_ARTIFACT_DIR")
        if artifact_dir:
            os.makedirs(artifact_dir, exist_ok=True)
            history.dump(
                os.path.join(artifact_dir, f"stress-history-{isolation.value}.json")
            )
        raise


@pytest.mark.parametrize(
    "isolation",
    [IsolationLevel.SNAPSHOT, IsolationLevel.SERIALIZABLE],
    ids=["snapshot", "serializable"],
)
def test_stress_history_meets_promised_guarantee(isolation):
    db = GraphDatabase.in_memory(isolation=isolation, gc_every_n_commits=256)
    history = History()
    try:
        _stress(db, history)
        # The setup transaction is recorded implicitly as version 0 of every
        # account (reads resolve to INITIAL); the workers' commits are all
        # in the history.
        assert len(history) >= TXN_BUDGET - THREADS  # integer-division slack
        _check(db, history, isolation)
        if isolation is IsolationLevel.SERIALIZABLE:
            safe = db.statistics()["safe_snapshots"]
            observers = safe["immediate"] + safe["tracked"]
            assert observers > 0  # the safe-snapshot path really ran
            assert safe["tracked"] > 0  # including non-empty censuses
    finally:
        db.close()


def test_snapshot_stress_actually_contains_write_skew():
    """Sanity for the checker itself: under SNAPSHOT the stress workload
    produces genuine write-skew cycles (all-rw), so an acyclicity assertion
    would fail — the SI check is weaker than the serializable one on the
    same history, which is exactly the point."""
    db = GraphDatabase.in_memory(isolation=IsolationLevel.SNAPSHOT)
    history = History()
    try:
        _stress(db, history)
        cycle = history.find_cycle()
        if cycle is not None:
            # Any cycle SI admits must carry >= 2 rw edges.
            assert sum(1 for _, _, kind in cycle if kind == "rw") >= 2
    finally:
        db.close()
