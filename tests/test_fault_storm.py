"""Seeded fault-storm stress: random faults, committed-prefix recovery.

Each round opens a fresh on-disk database with probabilistic failpoints armed
(seeded, so every round is exactly reproducible), hammers it with
read-modify-write transactions while tracking a Python-side mirror of every
*acknowledged* commit, then takes a crash image of the store directory and
recovers it with injection disabled.  The recovered state must equal the
mirror exactly:

* no acknowledged commit may be lost (durability of the committed prefix);
* no unacknowledged commit may appear (a failed append leaves zero durable
  trace; a torn tail is dropped by the CRC rule; a commit reverted in memory
  never reaches the log).

Rounds alternate between two storm flavours: *power-cut* rounds arm
``crash(F)`` actions (the first fire degrades the engine and ends the round)
and *transient-IO* rounds arm ``error(EIO)`` actions (absorbed by the bounded
retry loop, so the round runs to its full budget).

Determinism is asserted directly: re-running a round with the same seed must
produce the identical fired-fault schedule and the identical final state.

Budget knobs (the nightly CI job raises them):

* ``FAULT_STORM_ROUNDS`` / ``FAULT_STORM_OPS`` — rounds and commits per round.
* ``FAULT_STORM_SEED`` — base seed for both the workload and the failpoints.
* ``FAULT_ARTIFACT_DIR`` — if set, a failing run dumps the fired-fault
  schedule and the recorded history there as JSON artifacts.
"""

import json
import os
import random
import shutil

import pytest

from repro import FailpointRegistry, GraphDatabase, IsolationLevel
from repro.errors import StorageError, TransactionAbortedError
from repro.graph.recovery import check_store

from harness import History, Recorder

ROUNDS = int(os.environ.get("FAULT_STORM_ROUNDS", "4"))
OPS_PER_ROUND = int(os.environ.get("FAULT_STORM_OPS", "120"))
BASE_SEED = int(os.environ.get("FAULT_STORM_SEED", "2016"))
ACCOUNTS = 8
CHECKPOINT_EVERY = 10

#: Only sites whose failure implies "the commit was NOT acknowledged and must
#: NOT survive recovery" (wal.append) or whose failure must be *invisible* to
#: recovery (everything on the checkpoint path) are armed.  The ack-ambiguous
#: sites (``commit.publish``: durable but unacked) are deliberately excluded —
#: their semantics are pinned by the deterministic tests instead.
POWER_CUT_STORM = {
    "wal.append": "prob(0.02):crash(0.5)",
    "store.checkpoint": "prob(0.3):crash(0.5)",
    "wal.truncate": "prob(0.3):error(EIO)",
    "checkpoint.marker": "prob(0.3):error(EIO)",
}
#: wal.append is the only site whose errors are retried; checkpoint-path
#: errors degrade the engine by design, so they live in the power-cut storm.
TRANSIENT_IO_STORM = {
    "wal.append": "prob(0.08):error(EIO)",
}


class StormRound:
    """Everything one round produced, for assertions and artifact dumps."""

    def __init__(self):
        self.mirror = {}  # slot -> balance of every ACKNOWLEDGED commit
        self.recovered = {}  # slot -> balance after crash-image recovery
        self.schedule = []  # fired faults, in order
        self.history = History()
        self.acked = 0
        self.faulted = 0
        self.degraded = False
        self.io_retries = 0


def _balances(db):
    with db.transaction(read_only=True) as tx:
        return {
            node.get("slot"): node.get("balance")
            for node in tx.find_nodes(label="Account")
        }


def _run_round(tmp_path, round_index, *, tag):
    """One storm round; returns the populated :class:`StormRound`."""
    seed = BASE_SEED * 1_000 + round_index
    rng = random.Random(seed)
    power_cut = round_index % 2 == 0
    storm = POWER_CUT_STORM if power_cut else TRANSIENT_IO_STORM
    live = str(tmp_path / f"{tag}-round{round_index}")
    result = StormRound()

    # Accounts are seeded before the failpoints are armed so every round
    # starts from the same healthy baseline.
    db = GraphDatabase.open(
        live, isolation=IsolationLevel.SNAPSHOT, failpoints=FailpointRegistry(seed=seed)
    )
    with db.transaction() as tx:
        for slot in range(ACCOUNTS):
            tx.create_node(labels=["Account"], properties={"slot": slot, "balance": 100})
    result.mirror = {slot: 100 for slot in range(ACCOUNTS)}
    db.failpoints.arm_many(storm)

    recorder = Recorder(result.history)
    since_checkpoint = 0
    for i in range(OPS_PER_ROUND):
        slot = rng.randrange(ACCOUNTS)
        amount = rng.randint(1, 20)
        # RMW on one account, recorded iff the commit is acknowledged.
        node_id = _node_id_of(db, slot)

        def rmw(ctx, node_id=node_id, amount=amount):
            ctx.write(node_id, "balance", ctx.read(node_id, "balance") + amount)

        try:
            recorder.run(db, f"{tag}-r{round_index}-t{i}", rmw)
        except (StorageError, OSError, TransactionAbortedError):
            result.faulted += 1
            if db.health()["status"] == "degraded":
                break
            continue
        result.mirror[slot] += amount
        result.acked += 1
        since_checkpoint += 1
        if since_checkpoint >= CHECKPOINT_EVERY:
            since_checkpoint = 0
            try:
                db.checkpoint()
            except (StorageError, OSError, TransactionAbortedError):
                result.faulted += 1
                if db.health()["status"] == "degraded":
                    break

    result.degraded = db.health()["status"] == "degraded"
    result.schedule = db.failpoints.schedule()
    result.io_retries = db.store.wal.io_retries
    # The crash image is taken while the database is still open: no close,
    # no final flush — exactly what a power cut leaves behind.
    crash = str(tmp_path / f"{tag}-round{round_index}-crash")
    shutil.copytree(live, crash)
    try:
        db.close()
    except (StorageError, OSError):
        pass  # a final-checkpoint casualty; fds are released regardless

    recovered = GraphDatabase.open(crash)  # injection disabled
    result.recovered = _balances(recovered)
    assert check_store(recovered.store).consistent
    assert recovered.health()["status"] == "ok"
    recovered.close()
    return result


def _node_id_of(db, slot, _cache={}):
    key = (id(db), slot)
    if key not in _cache:
        with db.transaction(read_only=True) as tx:
            node = tx.find_nodes(label="Account", key="slot", value=slot)[0]
        _cache[key] = node.id
    return _cache[key]


def _dump_artifacts(tag, result):
    artifact_dir = os.environ.get("FAULT_ARTIFACT_DIR")
    if not artifact_dir:
        return
    os.makedirs(artifact_dir, exist_ok=True)
    with open(os.path.join(artifact_dir, f"{tag}-schedule.json"), "w") as fh:
        json.dump(
            {
                "schedule": result.schedule,
                "mirror": result.mirror,
                "recovered": result.recovered,
                "acked": result.acked,
                "faulted": result.faulted,
                "degraded": result.degraded,
            },
            fh,
            indent=2,
            sort_keys=True,
        )
    result.history.dump(os.path.join(artifact_dir, f"{tag}-history.json"))


@pytest.mark.parametrize("round_index", range(ROUNDS))
def test_storm_recovers_exactly_the_acknowledged_prefix(tmp_path, round_index):
    result = _run_round(tmp_path, round_index, tag="storm")
    try:
        # Durability both ways: every acked commit survived, nothing else did.
        assert result.recovered == result.mirror
        # Single-threaded, so the recorded history must be fully serializable.
        result.history.assert_serializable()
        # The round really exercised something: either faults fired or the
        # whole budget committed cleanly.
        assert result.schedule or result.acked == OPS_PER_ROUND
    except AssertionError:
        _dump_artifacts(f"fault-storm-round{round_index}", result)
        raise


def test_transient_io_storm_is_absorbed_by_retries(tmp_path):
    # Odd rounds arm error(EIO) faults only: the retry loop must absorb them
    # without degrading, and the full commit budget must land.
    result = _run_round(tmp_path, 1, tag="transient")
    try:
        assert not result.degraded
        assert result.acked == OPS_PER_ROUND
        assert result.recovered == result.mirror
        if result.schedule and any(
            fired["site"] == "wal.append" for fired in result.schedule
        ):
            assert result.io_retries > 0
    except AssertionError:
        _dump_artifacts("fault-storm-transient", result)
        raise


def test_power_cut_storm_degrades_and_keeps_the_prefix(tmp_path):
    # Even rounds arm crash(F) faults: the first wal.append power cut (if one
    # fires) must degrade the engine, and the torn tail must be dropped on
    # recovery.  Round 0 is re-used so the determinism test below shares it.
    result = _run_round(tmp_path, 0, tag="powercut")
    try:
        assert result.recovered == result.mirror
        if any(fired["site"] == "wal.append" for fired in result.schedule):
            assert result.degraded
    except AssertionError:
        _dump_artifacts("fault-storm-powercut", result)
        raise


def test_same_seed_same_schedule_same_state(tmp_path):
    first = _run_round(tmp_path, 0, tag="det-a")
    second = _run_round(tmp_path, 0, tag="det-b")
    assert first.schedule == second.schedule
    assert first.mirror == second.mirror
    assert first.recovered == second.recovered
    assert (first.acked, first.faulted, first.degraded) == (
        second.acked,
        second.faulted,
        second.degraded,
    )
