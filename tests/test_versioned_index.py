"""Unit tests for the multi-versioned indexes and the adjacency map."""

from repro.core.versioned_index import (
    AdjacencyIndex,
    VersionedEntrySet,
    VersionedIndexSet,
    VersionedLabelIndex,
    VersionedPropertyIndex,
    VersionedRelationshipTypeIndex,
)
from repro.graph.entity import NodeData, RelationshipData


class TestVersionedEntrySet:
    def test_visibility_window(self):
        entries = VersionedEntrySet()
        entries.add(1, commit_ts=5)
        assert entries.visible(4) == set()
        assert entries.visible(5) == {1}
        entries.mark_removed(1, commit_ts=9)
        assert entries.visible(8) == {1}
        assert entries.visible(9) == set()
        assert entries.current() == set()

    def test_re_add_after_removal(self):
        entries = VersionedEntrySet()
        entries.add(1, 2)
        entries.mark_removed(1, 4)
        entries.add(1, 6)
        assert entries.visible(3) == {1}
        assert entries.visible(5) == set()
        assert entries.visible(7) == {1}
        assert entries.current() == {1}

    def test_mark_removed_unknown_entity_is_noop(self):
        entries = VersionedEntrySet()
        entries.mark_removed(7, 3)
        assert entries.is_empty()

    def test_purge_drops_closed_intervals_below_watermark(self):
        entries = VersionedEntrySet()
        entries.add(1, 2)
        entries.mark_removed(1, 4)
        entries.add(2, 3)
        assert entries.purge(watermark=4) == 1
        assert entries.visible(3) == {2}
        assert entries.interval_count() == 1

    def test_purge_keeps_intervals_still_visible(self):
        entries = VersionedEntrySet()
        entries.add(1, 2)
        entries.mark_removed(1, 10)
        assert entries.purge(watermark=5) == 0
        assert entries.visible(5) == {1}

    def test_drop_entity(self):
        entries = VersionedEntrySet()
        entries.add(1, 2)
        entries.drop_entity(1)
        assert entries.is_empty()


class TestVersionedLabelIndex:
    def test_apply_node_change_and_lookup(self):
        index = VersionedLabelIndex()
        created = NodeData(1, {"Person"})
        index.apply_node_change(None, created, commit_ts=3)
        assert index.visible("Person", 3) == {1}
        assert index.visible("Person", 2) == set()

        relabelled = NodeData(1, {"Admin"})
        index.apply_node_change(created, relabelled, commit_ts=6)
        assert index.visible("Person", 5) == {1}
        assert index.visible("Person", 6) == set()
        assert index.visible("Admin", 6) == {1}

        index.apply_node_change(relabelled, None, commit_ts=8)
        assert index.visible("Admin", 8) == set()

    def test_label_created_after_snapshot_is_discarded_wholesale(self):
        index = VersionedLabelIndex()
        index.apply_node_change(None, NodeData(1, {"Brand"}), commit_ts=10)
        # The label token itself did not exist at ts 5 (the paper's shortcut).
        assert index.key_creation_ts("Brand") == 10
        assert index.visible("Brand", 5) == set()

    def test_drop_node(self):
        index = VersionedLabelIndex()
        index.apply_node_change(None, NodeData(1, {"Person"}), commit_ts=1)
        index.drop_node(1)
        assert index.visible("Person", 5) == set()

    def test_out_of_order_installs_keep_older_entries_visible(self):
        # Under the sharded pipeline two committers can tag the same label
        # out of commit-timestamp order; the key's creation timestamp must be
        # the minimum seen, or the older entry is hidden from snapshots
        # between the two timestamps.
        index = VersionedLabelIndex()
        index.apply_node_change(None, NodeData(2, {"Label"}), commit_ts=6)
        index.apply_node_change(None, NodeData(1, {"Label"}), commit_ts=5)
        assert index.key_creation_ts("Label") == 5
        assert index.visible("Label", 5) == {1}
        assert index.visible("Label", 6) == {1, 2}


class TestVersionedPropertyIndex:
    def test_property_change_moves_entry(self):
        index = VersionedPropertyIndex()
        index.apply_change(1, {}, {"age": 30}, commit_ts=2)
        index.apply_change(1, {"age": 30}, {"age": 31}, commit_ts=5)
        assert index.visible("age", 30, 4) == {1}
        assert index.visible("age", 30, 5) == set()
        assert index.visible("age", 31, 5) == {1}

    def test_array_values(self):
        index = VersionedPropertyIndex()
        index.apply_change(1, {}, {"tags": ["a", "b"]}, commit_ts=2)
        assert index.visible("tags", ["a", "b"], 2) == {1}

    def test_interval_count(self):
        index = VersionedPropertyIndex()
        index.apply_change(1, {}, {"x": 1, "y": 2}, commit_ts=1)
        assert index.interval_count() == 2


class TestVersionedRelationshipTypeIndex:
    def test_lifecycle(self):
        index = VersionedRelationshipTypeIndex()
        rel = RelationshipData(4, "KNOWS", 1, 2)
        index.apply_relationship_change(None, rel, commit_ts=3)
        assert index.visible("KNOWS", 3) == {4}
        index.apply_relationship_change(rel, None, commit_ts=7)
        assert index.visible("KNOWS", 6) == {4}
        assert index.visible("KNOWS", 7) == set()
        index.drop_relationship(4)
        assert index.visible("KNOWS", 5) == set()


class TestAdjacencyIndex:
    def test_add_and_candidates(self):
        adjacency = AdjacencyIndex()
        rel = RelationshipData(9, "KNOWS", 1, 2)
        adjacency.add(rel)
        assert adjacency.candidate_rel_ids(1) == {9}
        assert adjacency.candidate_rel_ids(2) == {9}
        assert adjacency.candidate_rel_ids(3) == set()
        assert adjacency.node_count() == 2
        assert adjacency.entry_count() == 2

    def test_self_loop_counted_once_per_node(self):
        adjacency = AdjacencyIndex()
        adjacency.add(RelationshipData(5, "SELF", 3, 3))
        assert adjacency.candidate_rel_ids(3) == {5}

    def test_discard_and_drop_node(self):
        adjacency = AdjacencyIndex()
        rel = RelationshipData(9, "KNOWS", 1, 2)
        adjacency.add(rel)
        adjacency.discard(rel)
        assert adjacency.candidate_rel_ids(1) == set()
        adjacency.add(rel)
        adjacency.drop_node(1)
        assert adjacency.candidate_rel_ids(1) == set()
        assert adjacency.candidate_rel_ids(2) == {9}


class TestVersionedIndexSet:
    def test_node_and_relationship_maintenance(self):
        indexes = VersionedIndexSet()
        alice = NodeData(1, {"Person"}, {"name": "alice"})
        indexes.apply_node_change(None, alice, commit_ts=1)
        rel = RelationshipData(7, "KNOWS", 1, 2, {"since": 2016})
        indexes.apply_relationship_change(None, rel, commit_ts=2)

        assert indexes.node_labels.visible("Person", 1) == {1}
        assert indexes.node_properties.visible("name", "alice", 1) == {1}
        assert indexes.relationship_properties.visible("since", 2016, 2) == {7}
        assert indexes.relationship_types.visible("KNOWS", 2) == {7}
        assert indexes.adjacency.candidate_rel_ids(1) == {7}
        assert indexes.interval_count() == 4

    def test_purge_entities(self):
        indexes = VersionedIndexSet()
        alice = NodeData(1, {"Person"}, {"name": "alice"})
        rel = RelationshipData(7, "KNOWS", 1, 2, {"since": 2016})
        indexes.apply_node_change(None, alice, commit_ts=1)
        indexes.apply_relationship_change(None, rel, commit_ts=1)
        indexes.purge_relationship(rel)
        indexes.purge_node(alice)
        assert indexes.node_labels.visible("Person", 5) == set()
        assert indexes.adjacency.candidate_rel_ids(1) == set()
        assert indexes.relationship_types.visible("KNOWS", 5) == set()

    def test_purge_by_watermark(self):
        indexes = VersionedIndexSet()
        alice = NodeData(1, {"Person"})
        indexes.apply_node_change(None, alice, commit_ts=1)
        indexes.apply_node_change(alice, NodeData(1, {"Admin"}), commit_ts=3)
        purged = indexes.purge(watermark=3)
        assert purged >= 1
        assert indexes.node_labels.visible("Admin", 3) == {1}
