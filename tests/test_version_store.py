"""Unit tests for the version store (object-cache layer of the MVCC engine)."""

from repro.core.version import Version, VersionChain
from repro.core.version_store import VersionStore
from repro.graph.entity import EntityKey, NodeData

KEY = EntityKey.node(1)
OTHER = EntityKey.node(2)


def payload(value):
    return NodeData(1, properties={"value": value})


class TestVersionStore:
    def test_get_missing_chain(self):
        store = VersionStore()
        assert store.get_chain(KEY) is None

    def test_get_or_load_creates_from_loader(self):
        store = VersionStore()
        chain = store.get_or_load(KEY, lambda: (payload("persisted"), 7))
        assert chain is not None
        assert chain.newest().commit_ts == 7
        # Second call hits the cache and does not re-invoke the loader.
        again = store.get_or_load(KEY, lambda: (_ for _ in ()).throw(AssertionError))
        assert again is chain

    def test_get_or_load_missing_entity(self):
        store = VersionStore()
        assert store.get_or_load(KEY, lambda: None) is None
        assert store.chain_count() == 0

    def test_ensure_chain(self):
        store = VersionStore()
        chain = store.ensure_chain(KEY)
        assert isinstance(chain, VersionChain)
        assert store.ensure_chain(KEY) is chain

    def test_remove_chain(self):
        store = VersionStore()
        store.ensure_chain(KEY)
        store.remove_chain(KEY)
        assert store.get_chain(KEY) is None

    def test_counting_helpers(self):
        store = VersionStore()
        chain_a = store.ensure_chain(KEY)
        chain_a.add_committed(Version(KEY, payload("a"), 1))
        chain_a.add_committed(Version(KEY, payload("b"), 2))
        chain_b = store.ensure_chain(OTHER)
        chain_b.add_committed(Version(OTHER, payload("c"), 3))
        assert store.chain_count() == 2
        assert store.total_versions() == 3
        assert store.multi_version_chains() == 1
        assert {key for key, _chain in store.chains()} == {KEY, OTHER}
        assert set(store.keys()) == {KEY, OTHER}

    def test_clear(self):
        store = VersionStore()
        store.ensure_chain(KEY)
        store.clear()
        assert store.chain_count() == 0

    def test_multi_version_chains_survive_cache_pressure(self):
        store = VersionStore(cache_capacity=4)
        # One chain with history (must never be evicted)...
        history = store.ensure_chain(KEY)
        history.add_committed(Version(KEY, payload("old"), 1))
        history.add_committed(Version(KEY, payload("new"), 2))
        # ...and many single-version chains to create pressure.
        for index in range(10, 30):
            key = EntityKey.node(index)
            chain = store.ensure_chain(key)
            chain.add_committed(Version(key, NodeData(index), 1))
        assert store.get_chain(KEY) is history
        assert len(store.get_chain(KEY)) == 2
