"""The network service layer end to end: server, client, wire protocol.

Every test runs a real :class:`~repro.server.GraphServer` on an ephemeral
port and talks to it through :class:`~repro.client.GraphClient` (or a raw
socket where the point is protocol-level behaviour).  The drain test is the
acceptance criterion for the layer: shutdown under concurrent write load
loses zero *acked* commits — every response the server sent for a write is
backed by a durable commit after reopening the store.
"""

import socket
import threading
import time

import pytest

from repro import GraphDatabase, IsolationLevel
from repro.client import GraphClient, RemoteNode, RemotePath, RemoteRelationship
from repro.errors import (
    AuthenticationError,
    ConnectionLimitError,
    IsolationNegotiationError,
    ProtocolError,
    QuerySyntaxError,
    ReproError,
    ServerDrainingError,
    ServerError,
    SessionStateError,
    WriteWriteConflictError,
)
from repro.server import GraphServer, negotiate_isolation, protocol


@pytest.fixture
def server():
    db = GraphDatabase.in_memory(isolation=IsolationLevel.SNAPSHOT)
    srv = GraphServer(db, port=0).start()
    yield srv
    srv.shutdown()


def connect(server, **kwargs):
    host, port = server.address
    return GraphClient(host, port, **kwargs)


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


# ---------------------------------------------------------------------------
# wire protocol units
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_frame_roundtrip(self):
        payload = {"op": "execute", "query": "RETURN 1", "params": {"x": [1, 2]}}
        frame = protocol.encode_frame(payload)
        assert protocol.decode_payload(frame[4:]) == payload

    def test_oversized_frame_is_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.decode_payload(b"not json")

    def test_value_codec_roundtrips_entities(self):
        node = RemoteNode(id=7, labels=("Person",), properties={"name": "Ada"})
        rel = RemoteRelationship(
            id=3, type="KNOWS", start_node_id=7, end_node_id=9, properties={}
        )
        path = RemotePath(nodes=(node,), relationships=(rel,))
        for value in (node, rel, path, {"k": [node, 1, None]}, "plain", 4.5):
            assert protocol.decode_value(protocol.encode_value(value)) == value

    def test_reserved_entity_key_is_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.encode_value({"~entity": "node"})

    def test_unencodable_value_is_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.encode_value(object())


# ---------------------------------------------------------------------------
# hello: negotiation, auth, admission
# ---------------------------------------------------------------------------


class TestNegotiation:
    def test_grant_rule(self):
        si = IsolationLevel.SNAPSHOT
        assert negotiate_isolation(si, None) is si
        assert negotiate_isolation(si, "read_committed") is si
        assert negotiate_isolation(si, "serializable") is si  # granted down
        with pytest.raises(IsolationNegotiationError):
            negotiate_isolation(si, "serializable", require=True)
        assert (
            negotiate_isolation(si, "serializable", require=False) is si
        )

    def test_weaker_request_is_served_at_the_database_level(self, server):
        with connect(server, isolation="read_committed") as client:
            assert client.isolation == "snapshot"

    def test_required_stronger_isolation_fails_hello(self, server):
        with pytest.raises(IsolationNegotiationError) as excinfo:
            connect(server, isolation="serializable", require_isolation=True)
        assert excinfo.value.remote_code == "IsolationNegotiationError"

    def test_serializable_database_satisfies_requirements(self):
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        with GraphServer(db, port=0) as srv:
            with connect(srv, isolation="serializable", require_isolation=True) as c:
                assert c.isolation == "serializable"


class TestAuth:
    def test_shared_secret(self):
        db = GraphDatabase.in_memory()
        with GraphServer(db, port=0, auth="s3cret") as srv:
            with pytest.raises(AuthenticationError):
                connect(srv)
            with pytest.raises(AuthenticationError):
                connect(srv, auth_token="wrong")
            with connect(srv, auth_token="s3cret") as client:
                client.execute("RETURN 1")

    def test_callable_hook_sees_token_and_hello(self):
        seen = []

        def hook(token, hello):
            seen.append((token, hello.get("client")))
            return token == "ok"

        db = GraphDatabase.in_memory()
        with GraphServer(db, port=0, auth=hook) as srv:
            with pytest.raises(AuthenticationError):
                connect(srv, auth_token="nope", client_name="bad-client")
            with connect(srv, auth_token="ok", client_name="good-client"):
                pass
        assert seen == [("nope", "bad-client"), ("ok", "good-client")]


class TestAdmission:
    def test_connection_limit(self):
        db = GraphDatabase.in_memory()
        with GraphServer(db, port=0, max_connections=1) as srv:
            first = connect(srv)
            with pytest.raises(ConnectionLimitError) as excinfo:
                connect(srv)
            assert excinfo.value.retryable is False
            first.close()
            # The slot frees once the server retires the session.
            assert wait_until(lambda: srv.sessions.active_count() == 0)
            with connect(srv) as second:
                second.execute("RETURN 1")

    def test_first_message_must_be_hello(self, server):
        raw = socket.create_connection(server.address, timeout=5)
        try:
            protocol.write_frame(raw, {"op": "execute", "query": "RETURN 1"})
            response = protocol.read_frame(raw)
            assert response["ok"] is False
            assert response["error"]["code"] == "ProtocolError"
            # The server hangs up after rejecting the handshake.
            assert protocol.read_frame(raw) is None
        finally:
            raw.close()

    def test_garbage_frame_gets_a_protocol_error(self, server):
        raw = socket.create_connection(server.address, timeout=5)
        try:
            body = b"\x00not json"
            raw.sendall(len(body).to_bytes(4, "big") + body)
            response = protocol.read_frame(raw)
            assert response["error"]["code"] == "ProtocolError"
        finally:
            raw.close()


# ---------------------------------------------------------------------------
# statements and transactions over the wire
# ---------------------------------------------------------------------------


class TestExecute:
    def test_autocommit_roundtrip_with_entities(self, server):
        with connect(server) as client:
            result = client.execute(
                "CREATE (a:Person {name: $n})-[r:KNOWS {since: 2016}]->"
                "(b:Person {name: 'Bob'}) RETURN a, r",
                n="Alice",
            )
            assert result.commit_ts is not None
            assert client.last_commit_ts == result.commit_ts
            node, rel = result.single()
            assert isinstance(node, RemoteNode)
            assert node.properties["name"] == "Alice"
            assert isinstance(rel, RemoteRelationship)
            assert rel.type == "KNOWS"
            assert rel["since"] == 2016
            stats = client.execute("MATCH (n) RETURN count(n) AS c")
            assert stats.single() == [2]
            assert stats.commit_ts is None  # pure read: token untouched

    def test_parameters_cross_the_wire(self, server):
        with connect(server) as client:
            client.execute(
                "CREATE (:Doc {tags: $tags, depth: $depth})",
                tags=["a", "b"],
                depth=3,
            )
            rows = client.execute("MATCH (d:Doc) RETURN d.tags, d.depth").single()
            assert rows == [["a", "b"], 3]

    def test_explicit_transaction_visibility(self, server):
        with connect(server) as writer, connect(server) as reader:
            writer.begin()
            writer.execute("CREATE (:Person {name: 'Hidden'})")
            assert reader.execute("MATCH (n:Person) RETURN n").rows == []
            commit_ts = writer.commit()
            assert commit_ts is not None
            assert writer.last_commit_ts == commit_ts
            assert len(reader.execute("MATCH (n:Person) RETURN n").rows) == 1

    def test_rollback_discards(self, server):
        with connect(server) as client:
            client.begin()
            client.execute("CREATE (:Person {name: 'Ghost'})")
            client.rollback()
            assert client.execute("MATCH (n:Person) RETURN n").rows == []

    def test_session_state_errors_cross_the_wire(self, server):
        with connect(server) as client:
            client.begin()
            with pytest.raises(SessionStateError) as excinfo:
                client.begin()
            assert excinfo.value.remote is True
            client.rollback()
            with pytest.raises(SessionStateError):
                client.commit()

    def test_syntax_error_maps_to_the_local_class(self, server):
        with connect(server) as client:
            with pytest.raises(QuerySyntaxError) as excinfo:
                client.execute("MATCH (n RETURN n")
            assert excinfo.value.remote_code == "QuerySyntaxError"
            assert excinfo.value.retryable is False
            client.execute("RETURN 1")  # the connection survives the error

    def test_write_conflict_maps_retryable(self, server):
        with connect(server) as a, connect(server) as b:
            node_id = a.execute(
                "CREATE (n:Counter {value: 0}) RETURN n"
            ).single()[0].id
            a.begin()
            a.execute("MATCH (n:Counter) SET n.value = 1")
            b.begin()
            with pytest.raises(WriteWriteConflictError) as excinfo:
                b.execute("MATCH (n:Counter) SET n.value = 2")
            assert excinfo.value.retryable is True
            assert excinfo.value.remote_reason == "ww-conflict"
            b.rollback()
            a.commit()
            assert a.execute(
                "MATCH (n:Counter) RETURN n.value"
            ).single() == [1]
            assert node_id == 0

    def test_read_only_session_rejects_writes(self, server):
        with connect(server, read_only=True) as client:
            assert client.read_only
            with pytest.raises(ReproError):
                client.execute("CREATE (:Nope)")


# ---------------------------------------------------------------------------
# service surface
# ---------------------------------------------------------------------------


class TestService:
    def test_ping_and_stats(self, server):
        with connect(server, client_name="stats-test") as client:
            assert client.ping()["status"] == "ok"
            client.begin()
            stats = client.server_stats()
            mine = [
                s
                for s in stats["sessions"]
                if s["session_id"] == client.session_id
            ]
            assert mine and mine[0]["client"] == "stats-test"
            assert mine[0]["in_transaction"] is True
            assert stats["isolation"] == "snapshot"
            assert stats["draining"] is False
            client.rollback()

    def test_server_metrics_are_registered(self, server):
        with connect(server) as client:
            client.execute("RETURN 1")
            client.ping()
        text = server.database.prometheus_metrics()
        assert "repro_server_sessions" in text
        assert 'repro_server_requests_total{op="execute"}' in text
        assert "repro_server_sessions_opened_total" in text

    def test_closing_client_retires_the_session(self, server):
        client = connect(server)
        assert server.sessions.active_count() == 1
        client.close()
        assert wait_until(lambda: server.sessions.active_count() == 0)

    def test_dropped_connection_rolls_back_and_retires(self, server):
        client = connect(server)
        client.begin()
        client.execute("CREATE (:Person {name: 'Orphan'})")
        client._sock.close()  # die without goodbye
        client._closed = True
        assert wait_until(lambda: server.sessions.active_count() == 0)
        with connect(server) as checker:
            assert checker.execute("MATCH (n:Person) RETURN n").rows == []


# ---------------------------------------------------------------------------
# concurrency and drain
# ---------------------------------------------------------------------------


class TestConcurrentClients:
    def test_concurrent_writers_all_commit(self, server):
        clients, writers, errors = 6, 5, []

        def worker(tid):
            try:
                with connect(server, client_name=f"worker-{tid}") as client:
                    for i in range(writers):
                        while True:
                            try:
                                client.execute(
                                    "CREATE (:Entry {owner: $o, seq: $i})",
                                    o=tid,
                                    i=i,
                                )
                                break
                            except ReproError as exc:
                                if not getattr(exc, "retryable", False):
                                    raise
            except BaseException as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(tid,)) for tid in range(clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert errors == []
        with connect(server) as client:
            total = client.execute("MATCH (e:Entry) RETURN count(e) AS c").single()[0]
        assert total == clients * writers

    def test_drain_loses_zero_acked_commits(self, tmp_path):
        path = str(tmp_path / "db")
        db = GraphDatabase.open(path)
        srv = GraphServer(db, port=0, drain_timeout=5.0).start()
        host, port = srv.address
        acked = []
        acked_lock = threading.Lock()
        running = threading.Event()

        def worker(tid):
            seq = 0
            try:
                client = GraphClient(host, port, client_name=f"drain-{tid}")
            except (ReproError, OSError):
                return
            with client:
                while True:
                    name = f"{tid}-{seq}"
                    try:
                        client.execute("CREATE (:Acked {name: $n})", n=name)
                    except (ServerDrainingError, ServerError, ProtocolError, OSError):
                        return
                    except ReproError as exc:
                        if getattr(exc, "retryable", False):
                            continue
                        return
                    # The response arrived: this commit is acked.
                    with acked_lock:
                        acked.append(name)
                    running.set()
                    seq += 1

        threads = [threading.Thread(target=worker, args=(tid,)) for tid in range(4)]
        for t in threads:
            t.start()
        assert running.wait(timeout=10)  # mixed load is in flight
        time.sleep(0.3)
        srv.shutdown()  # drains sessions, then drains and closes the db
        for t in threads:
            t.join(timeout=10)
        assert db.is_closed
        assert acked  # the test exercised actual commits
        # New connections are refused once the listener is gone.
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=1)
        reopened = GraphDatabase.open(path)
        try:
            with reopened.begin(read_only=True) as tx:
                durable = {node["name"] for node in tx.find_nodes(label="Acked")}
        finally:
            reopened.close()
        missing = set(acked) - durable
        assert not missing, f"acked commits lost in drain: {sorted(missing)}"

    def test_draining_server_rejects_new_sessions(self, tmp_path):
        db = GraphDatabase.open(str(tmp_path / "db"))
        srv = GraphServer(db, port=0).start()
        holder = connect(srv)
        srv.sessions.start_draining()
        with pytest.raises(ServerDrainingError) as excinfo:
            connect(srv)
        assert excinfo.value.retryable is True
        holder.close()
        srv.shutdown()

    def test_shutdown_is_idempotent_and_contextual(self):
        db = GraphDatabase.in_memory()
        srv = GraphServer(db, port=0)
        with srv:
            with connect(srv) as client:
                client.execute("RETURN 1")
        srv.shutdown()  # second call is a no-op
        assert db.is_closed
        assert not srv.is_running

    def test_shutdown_can_keep_the_database_open(self):
        db = GraphDatabase.in_memory()
        srv = GraphServer(db, port=0).start()
        with connect(srv) as client:
            client.execute("CREATE (:Kept)")
        srv.shutdown(close_database=False)
        assert not db.is_closed
        assert db.health()["status"] == "ok"  # embedded use continues
        with db.begin(read_only=True) as tx:
            assert len(list(tx.find_nodes(label="Kept"))) == 1
        db.close()
