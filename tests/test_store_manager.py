"""Unit and integration tests for the store manager (persistence layer)."""

import pytest

from repro.errors import ConstraintViolationError, NodeNotFoundError, RelationshipNotFoundError
from repro.graph.entity import Direction, NodeData, RelationshipData
from repro.graph.operations import (
    DeleteNodeOp,
    DeleteRelationshipOp,
    WriteNodeOp,
    WriteRelationshipOp,
)
from repro.graph.recovery import check_store
from repro.graph.store_manager import StoreManager


def node(node_id, labels=(), **props):
    return NodeData(node_id, frozenset(labels), props)


def rel(rel_id, rel_type, start, end, **props):
    return RelationshipData(rel_id, rel_type, start, end, props)


class TestNodes:
    def test_write_and_read_back(self, store):
        store.write_node(node(0, ["Person"], name="Alice", age=30))
        loaded = store.read_node(0)
        assert loaded.labels == {"Person"}
        assert loaded.properties["name"] == "Alice"
        assert loaded.properties["age"] == 30

    def test_missing_node_reads_none(self, store):
        assert store.read_node(42) is None
        assert not store.node_exists(42)

    def test_overwrite_replaces_labels_and_properties(self, store):
        store.write_node(node(0, ["Person"], name="Alice"))
        store.write_node(node(0, ["Admin"], level=3))
        loaded = store.read_node(0)
        assert loaded.labels == {"Admin"}
        assert "name" not in loaded.properties
        assert loaded.properties["level"] == 3

    def test_delete_node(self, store):
        store.write_node(node(0))
        store.delete_node(0)
        assert store.read_node(0) is None
        assert store.node_count() == 0

    def test_delete_missing_node_raises(self, store):
        with pytest.raises(NodeNotFoundError):
            store.delete_node(13)
        store.delete_node(13, missing_ok=True)

    def test_delete_node_with_relationships_rejected(self, store):
        store.write_node(node(0))
        store.write_node(node(1))
        store.write_relationship(rel(0, "KNOWS", 0, 1))
        with pytest.raises(ConstraintViolationError):
            store.delete_node(0)

    def test_iteration_and_count(self, store):
        for index in range(5):
            store.write_node(node(index, ["Person"], position=index))
        assert list(store.iter_node_ids()) == list(range(5))
        assert store.node_count() == 5
        assert [n.properties["position"] for n in store.iter_nodes()] == list(range(5))

    def test_id_allocation(self, store):
        first = store.allocate_node_id()
        second = store.allocate_node_id()
        assert second == first + 1


class TestRelationships:
    def setup_nodes(self, store, count=4):
        for index in range(count):
            store.write_node(node(index, ["N"]))

    def test_create_and_read(self, store):
        self.setup_nodes(store)
        store.write_relationship(rel(0, "KNOWS", 0, 1, since=2016))
        loaded = store.read_relationship(0)
        assert loaded.rel_type == "KNOWS"
        assert loaded.start_node == 0 and loaded.end_node == 1
        assert loaded.properties["since"] == 2016

    def test_create_requires_existing_endpoints(self, store):
        store.write_node(node(0))
        with pytest.raises(NodeNotFoundError):
            store.write_relationship(rel(0, "KNOWS", 0, 99))

    def test_update_replaces_properties_only(self, store):
        self.setup_nodes(store)
        store.write_relationship(rel(0, "KNOWS", 0, 1, since=2016))
        store.write_relationship(rel(0, "KNOWS", 0, 1, weight=0.5))
        loaded = store.read_relationship(0)
        assert loaded.properties == {"weight": 0.5}
        assert store.node_degree(0) == 1

    def test_chains_collect_all_relationships(self, store):
        self.setup_nodes(store)
        store.write_relationship(rel(0, "KNOWS", 0, 1))
        store.write_relationship(rel(1, "KNOWS", 0, 2))
        store.write_relationship(rel(2, "KNOWS", 3, 0))
        assert sorted(store.node_relationship_ids(0)) == [0, 1, 2]
        assert store.node_degree(0, Direction.OUTGOING) == 2
        assert store.node_degree(0, Direction.INCOMING) == 1

    def test_self_loop(self, store):
        self.setup_nodes(store)
        store.write_relationship(rel(0, "SELF", 2, 2))
        assert store.node_relationship_ids(2) == [0]
        assert store.node_degree(2, Direction.OUTGOING) == 1
        store.delete_relationship(0)
        assert store.node_relationship_ids(2) == []

    def test_delete_unlinks_from_both_chains(self, store):
        self.setup_nodes(store)
        for rel_id, (a, b) in enumerate([(0, 1), (0, 2), (1, 2)]):
            store.write_relationship(rel(rel_id, "KNOWS", a, b))
        store.delete_relationship(1)
        assert sorted(store.node_relationship_ids(0)) == [0]
        assert sorted(store.node_relationship_ids(2)) == [2]
        assert store.read_relationship(1) is None
        report = check_store(store)
        assert report.consistent, report.errors

    def test_delete_missing_relationship(self, store):
        with pytest.raises(RelationshipNotFoundError):
            store.delete_relationship(5)
        store.delete_relationship(5, missing_ok=True)

    def test_many_relationships_consistency(self, store):
        self.setup_nodes(store, count=10)
        rel_id = 0
        for left in range(10):
            for right in range(left + 1, 10, 2):
                store.write_relationship(rel(rel_id, "LINK", left, right))
                rel_id += 1
        # Delete every third relationship and verify chain integrity.
        for victim in range(0, rel_id, 3):
            store.delete_relationship(victim)
        report = check_store(store)
        assert report.consistent, report.errors


class TestBatchesAndStats:
    def test_apply_batch_orders_operations(self, store):
        store.apply_batch(
            1,
            [
                WriteNodeOp(node(0, ["Person"])),
                WriteNodeOp(node(1, ["Person"])),
                WriteRelationshipOp(rel(0, "KNOWS", 0, 1)),
            ],
        )
        assert store.node_count() == 2
        assert store.relationship_count() == 1
        store.apply_batch(
            2,
            [DeleteRelationshipOp(0), DeleteNodeOp(1)],
        )
        assert store.relationship_count() == 0
        assert store.node_count() == 1

    def test_stats_count_writes(self, store):
        store.write_node(node(0))
        store.write_node(node(1))
        store.write_relationship(rel(0, "KNOWS", 0, 1))
        stats = store.stats.as_dict()
        assert stats["node_writes"] == 2
        assert stats["relationship_writes"] == 1
        assert stats["entity_writes"] == 3


class TestPersistenceAndRecovery:
    def test_reopen_from_disk(self, disk_db_path):
        store = StoreManager(disk_db_path)
        store.write_node(node(0, ["Person"], name="Alice", tags=["a", "b"]))
        store.write_node(node(1, ["Person"], name="Bob"))
        store.write_relationship(rel(0, "KNOWS", 0, 1, since=2016))
        store.close()

        reopened = StoreManager(disk_db_path)
        loaded = reopened.read_node(0)
        assert loaded.properties["name"] == "Alice"
        assert tuple(loaded.properties["tags"]) == ("a", "b")
        assert reopened.read_relationship(0).properties["since"] == 2016
        assert reopened.tokens.labels.maybe_id("Person") is not None
        reopened.close()

    def test_wal_replay_after_crash(self, disk_db_path):
        store = StoreManager(disk_db_path)
        store.write_node(node(0, ["Person"], name="Alice"))
        store.checkpoint()
        # Writes after the checkpoint are only in the WAL + page cache; simulate
        # a crash by *not* closing (no flush) and reopening a second manager.
        store.write_node(node(1, ["Person"], name="Bob"))
        store.write_relationship(rel(0, "KNOWS", 0, 1))
        store.wal.close()

        recovered = StoreManager(disk_db_path)
        assert recovered.stats.batches_replayed >= 1
        assert recovered.read_node(1) is not None
        assert recovered.read_relationship(0) is not None
        report = check_store(recovered)
        assert report.consistent, report.errors
        recovered.close()

    def test_new_ids_after_reopen_do_not_collide(self, disk_db_path):
        store = StoreManager(disk_db_path)
        for index in range(3):
            store.write_node(node(index))
        store.close()
        reopened = StoreManager(disk_db_path)
        fresh = reopened.allocate_node_id()
        assert fresh >= 3
        reopened.close()
