"""Planner tests: access-path choice, expansion ordering, EXPLAIN output."""

from __future__ import annotations

import pytest

from repro.errors import QuerySyntaxError


def _plan_names(db, query, **params):
    result = db.execute("EXPLAIN " + query, **params)
    assert result.plan is not None
    return result.plan.operator_names()


def _seed_people(db, count=20):
    with db.transaction() as tx:
        for index in range(count):
            tx.create_node(
                ["Person"], {"name": f"p{index}", "age": 20 + index}
            )


class TestAccessPathChoice:
    def test_property_index_seek_beats_all_nodes_scan(self, any_db):
        _seed_people(any_db)
        names = _plan_names(any_db, "MATCH (p:Person {name: 'p3'}) RETURN p.age")
        assert "PropertyIndexSeek" in names
        assert "AllNodesScan" not in names
        assert "LabelScan" not in names

    def test_property_seek_via_parameter(self, any_db):
        _seed_people(any_db)
        names = _plan_names(
            any_db, "MATCH (p:Person {name: $who}) RETURN p.age", who="p3"
        )
        assert "PropertyIndexSeek" in names

    def test_label_scan_without_property(self, any_db):
        _seed_people(any_db)
        names = _plan_names(any_db, "MATCH (p:Person) RETURN p.name")
        assert "LabelScan" in names
        assert "AllNodesScan" not in names

    def test_label_scan_beats_wide_property_entry(self, any_db):
        # 2 :Rare nodes vs 40 nodes sharing flag=true: scanning the label and
        # filtering the property residually is the cheaper access path.
        with any_db.transaction() as tx:
            for index in range(40):
                labels = ["Rare", "Common"] if index < 2 else ["Common"]
                tx.create_node(labels, {"flag": True, "i": index})
        result = any_db.execute(
            "PROFILE MATCH (n:Rare {flag: true}) RETURN n.i ORDER BY n.i"
        )
        names = result.plan.operator_names()
        assert "LabelScan" in names
        assert "PropertyIndexSeek" not in names
        assert result.values() == [0, 1]

    def test_all_nodes_scan_as_fallback(self, any_db):
        _seed_people(any_db)
        names = _plan_names(any_db, "MATCH (n) RETURN id(n)")
        assert "AllNodesScan" in names

    def test_profile_shows_estimates_and_actuals(self, any_db):
        _seed_people(any_db)
        result = any_db.execute("PROFILE MATCH (p:Person) RETURN p.name")
        rendered = result.render_plan()
        assert "est=" in rendered and "actual=" in rendered
        scan = next(
            op for op in result.plan.root.walk() if op.name == "LabelScan"
        )
        assert scan.estimated_rows == pytest.approx(20, abs=1)
        assert scan.actual_rows == 20

    def test_profile_still_returns_rows(self, any_db):
        _seed_people(any_db, count=3)
        result = any_db.execute("PROFILE MATCH (p:Person) RETURN p.name")
        assert len(result.records()) == 3

    def test_explain_does_not_execute(self, any_db):
        _seed_people(any_db, count=3)
        result = any_db.execute("EXPLAIN MATCH (p:Person) RETURN p.name")
        assert result.records() == []
        scan = next(
            op for op in result.plan.root.walk() if op.name == "LabelScan"
        )
        assert scan.actual_rows is None
        assert "actual=-" in result.render_plan()

    def test_explain_never_mutates(self, any_db):
        # Cypher semantics: EXPLAIN of a write query must not run the writes.
        result = any_db.execute("EXPLAIN CREATE (g:Ghost {name: 'boo'})")
        assert "Create" in result.plan.operator_names()
        assert result.stats.nodes_created == 0
        assert any_db.execute("MATCH (g:Ghost) RETURN count(*)").value() == 0


class TestStartAndExpansionOrder:
    def test_starts_from_smaller_label(self, any_db):
        with any_db.transaction() as tx:
            hub = tx.create_node(["Rare"], {"name": "hub"})
            for index in range(30):
                node = tx.create_node(["Common"], {"i": index})
                tx.create_relationship(node, hub, "POINTS_AT")
        result = any_db.execute(
            "PROFILE MATCH (c:Common)-[:POINTS_AT]->(r:Rare) RETURN count(*)"
        )
        names = result.plan.operator_names()
        # The scan starts at the single :Rare node, not the 30 :Common ones.
        scans = [op for op in result.plan.root.walk() if op.name == "LabelScan"]
        assert len(scans) == 1 and scans[0].label == "Rare"
        assert result.records()[0]["count(*)"] == 30
        assert "Expand" in names

    def test_expands_lower_fanout_side_first(self, any_db):
        # mid sits between a RARE edge (1) and many COMMON edges (20); the
        # planner should cover the RARE hop before fanning out over COMMON.
        with any_db.transaction() as tx:
            mid = tx.create_node(["Mid"], {"name": "mid"})
            rare = tx.create_node(["End"], {"name": "rare"})
            tx.create_relationship(mid, rare, "RARE")
            for index in range(20):
                node = tx.create_node(["End"], {"i": index})
                tx.create_relationship(mid, node, "COMMON")
        result = any_db.execute(
            "PROFILE MATCH (a)<-[:COMMON]-(m:Mid)-[:RARE]->(b) RETURN count(*)"
        )
        expands = [
            op for op in result.plan.root.walk() if op.name.startswith("Expand")
        ]
        # Two hops; the first one executed (deepest in the tree) is RARE.
        assert expands[-1].rel.types == ("RARE",)
        assert result.records()[0]["count(*)"] == 20

    def test_bound_variable_is_free_start(self, any_db):
        _seed_people(any_db, count=5)
        names = _plan_names(
            any_db,
            "MATCH (p:Person {name: 'p0'}) WITH p MATCH (p)-[:KNOWS]->(q) RETURN q",
        )
        # The second MATCH must not rescan: one seek for p, then an expand.
        assert names.count("PropertyIndexSeek") == 1
        assert "AllNodesScan" not in names

    def test_estimates_shrink_with_limit(self, any_db):
        _seed_people(any_db)
        result = any_db.execute(
            "EXPLAIN MATCH (p:Person) RETURN p.name LIMIT 3"
        )
        limit = next(op for op in result.plan.root.walk() if op.name == "Limit")
        assert limit.estimated_rows <= 3

    def test_estimates_shrink_with_skip(self, any_db):
        _seed_people(any_db)
        result = any_db.execute(
            "EXPLAIN MATCH (p:Person) RETURN p.name SKIP 15"
        )
        skip = next(op for op in result.plan.root.walk() if op.name == "Skip")
        assert skip.estimated_rows == pytest.approx(5, abs=1)


class TestPlannerValidation:
    def test_unbound_variable_in_where(self, any_db):
        with pytest.raises(QuerySyntaxError):
            any_db.execute("MATCH (n) WHERE m.x = 1 RETURN n")

    def test_unbound_variable_in_return(self, any_db):
        with pytest.raises(QuerySyntaxError):
            any_db.execute("MATCH (n) RETURN m")

    def test_unbound_set_target(self, any_db):
        with pytest.raises(QuerySyntaxError):
            any_db.execute("MATCH (n) SET m.x = 1")

    def test_unbound_delete_target(self, any_db):
        with pytest.raises(QuerySyntaxError):
            any_db.execute("MATCH (n) DELETE m")

    def test_rebound_relationship_variable(self, any_db):
        with pytest.raises(QuerySyntaxError):
            any_db.execute("MATCH (a)-[r]->(b)-[r]->(c) RETURN a")

    def test_aggregate_must_be_top_level(self, any_db):
        with pytest.raises(QuerySyntaxError):
            any_db.execute("MATCH (n) RETURN count(*) + 1")

    def test_with_where_sees_only_aliases(self, any_db):
        with pytest.raises(QuerySyntaxError):
            any_db.execute("MATCH (n) WITH n.age AS age WHERE n.age > 1 RETURN age")


class TestCardinalityFastPaths:
    def test_counts_track_changes(self, any_db):
        engine = any_db.engine
        assert engine.count_nodes_with_label("Person") == 0
        _seed_people(any_db, count=7)
        assert engine.count_nodes_with_label("Person") == 7
        assert engine.count_nodes_with_property("name", "p0") == 1
        with any_db.transaction() as tx:
            node = tx.find_nodes(label="Person", key="name", value="p0")[0]
            tx.delete_node(node)
        assert engine.count_nodes_with_label("Person") == 6
        assert engine.count_nodes_with_property("name", "p0") == 0

    def test_relationship_type_counts(self, any_db):
        engine = any_db.engine
        with any_db.transaction() as tx:
            a = tx.create_node(["X"])
            b = tx.create_node(["X"])
            r = tx.create_relationship(a, b, "KNOWS")
            tx.create_relationship(b, a, "KNOWS")
            tx.create_relationship(a, b, "LIKES")
        assert engine.count_relationships_of_type("KNOWS") == 2
        assert engine.count_relationships_of_type("LIKES") == 1
        with any_db.transaction() as tx:
            tx.delete_relationship(r.id)
        assert engine.count_relationships_of_type("KNOWS") == 1

    def test_cardinalities_in_statistics(self, any_db):
        _seed_people(any_db, count=4)
        with any_db.transaction() as tx:
            people = tx.find_nodes(label="Person")
            tx.create_relationship(people[0], people[1], "KNOWS")
        stats = any_db.statistics()
        cardinalities = stats["engine"]["cardinalities"]
        assert cardinalities["node_labels"]["Person"] == 4
        assert cardinalities["relationship_types"]["KNOWS"] == 1
