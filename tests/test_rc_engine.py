"""Integration tests for the read-committed baseline engine."""

import pytest

from repro.engine import TransactionState
from repro.errors import ReadOnlyTransactionError
from repro.graph.entity import Direction, NodeData, RelationshipData
from repro.graph.store_manager import StoreManager
from repro.locking.rc_manager import ReadCommittedEngine


@pytest.fixture
def engine():
    store = StoreManager(None)
    rc = ReadCommittedEngine(store, lock_timeout=0.3)
    yield rc
    store.close()


def create_node(engine, labels=("Person",), **props):
    txn = engine.begin()
    node_id = engine.allocate_node_id()
    txn.put_node(NodeData(node_id, frozenset(labels), props), create=True)
    txn.commit()
    return node_id


class TestBasicLifecycle:
    def test_commit_persists_and_updates_indexes(self, engine):
        node_id = create_node(engine, name="alice")
        txn = engine.begin()
        assert txn.read_node(node_id).properties["name"] == "alice"
        assert node_id in txn.find_nodes_by_label("Person")
        assert node_id in txn.find_nodes_by_property("name", "alice")
        txn.rollback()

    def test_rollback_discards_writes_and_releases_locks(self, engine):
        node_id = create_node(engine, value=1)
        txn = engine.begin()
        txn.put_node(txn.read_node(node_id).with_property("value", 2))
        txn.rollback()
        assert engine.begin().read_node(node_id).properties["value"] == 1
        assert engine.locks.locks_held_by(txn.txn_id) == []

    def test_read_own_writes(self, engine):
        txn = engine.begin()
        node_id = engine.allocate_node_id()
        txn.put_node(NodeData(node_id, {"Person"}, {"name": "new"}), create=True)
        assert txn.read_node(node_id).properties["name"] == "new"
        assert node_id in txn.find_nodes_by_label("Person")
        assert node_id in {node.node_id for node in txn.iter_nodes()}
        txn.commit()

    def test_closed_transaction_rejects_use(self, engine):
        txn = engine.begin()
        txn.commit()
        from repro.errors import TransactionClosedError

        with pytest.raises(TransactionClosedError):
            txn.read_node(0)
        assert txn.state is TransactionState.COMMITTED

    def test_read_only_rejects_writes(self, engine):
        reader = engine.begin(read_only=True)
        with pytest.raises(ReadOnlyTransactionError):
            reader.put_node(NodeData(1, {"X"}), create=True)

    def test_delete_node_and_relationship(self, engine):
        node_a = create_node(engine)
        node_b = create_node(engine)
        txn = engine.begin()
        rel_id = engine.allocate_relationship_id()
        txn.put_relationship(RelationshipData(rel_id, "KNOWS", node_a, node_b), create=True)
        txn.commit()

        txn = engine.begin()
        txn.delete_relationship(rel_id)
        txn.delete_node(node_b)
        txn.commit()
        check = engine.begin()
        assert check.read_relationship(rel_id) is None
        assert check.read_node(node_b) is None
        assert check.relationships_of(node_a) == []


class TestReadCommittedSemantics:
    def test_reads_see_latest_committed_value(self, engine):
        """The defining behaviour: a second read observes a concurrent commit."""
        node_id = create_node(engine, balance=100)
        reader = engine.begin(read_only=True)
        assert reader.read_node(node_id).properties["balance"] == 100

        writer = engine.begin()
        writer.put_node(writer.read_node(node_id).with_property("balance", 5))
        writer.commit()

        # Unrepeatable read: same transaction, different value.
        assert reader.read_node(node_id).properties["balance"] == 5

    def test_predicate_scan_sees_phantoms(self, engine):
        create_node(engine, labels=("Person",))
        reader = engine.begin(read_only=True)
        first_scan = reader.find_nodes_by_label("Person")

        create_node(engine, labels=("Person",))
        second_scan = reader.find_nodes_by_label("Person")
        assert len(second_scan) == len(first_scan) + 1

    def test_readers_block_behind_writers_long_exclusive_lock(self, engine):
        """Under the locking baseline a reader's short shared lock queues behind
        a writer's long exclusive lock — the read-lock cost the paper removes.
        """
        from repro.errors import LockTimeoutError

        node_id = create_node(engine, balance=100)
        writer = engine.begin()
        writer.put_node(writer.read_node(node_id).with_property("balance", -1))
        reader = engine.begin(read_only=True)
        with pytest.raises(LockTimeoutError):
            reader.read_node(node_id)
        reader.rollback()
        writer.rollback()
        # Once the writer is gone the same read succeeds (and no dirty value
        # was ever exposed).
        fresh = engine.begin(read_only=True)
        assert fresh.read_node(node_id).properties["balance"] == 100

    def test_relationships_of_merges_own_writes(self, engine):
        node_a = create_node(engine)
        node_b = create_node(engine)
        txn = engine.begin()
        rel_id = engine.allocate_relationship_id()
        txn.put_relationship(RelationshipData(rel_id, "KNOWS", node_a, node_b), create=True)
        rels = txn.relationships_of(node_a, Direction.OUTGOING)
        assert [rel.rel_id for rel in rels] == [rel_id]
        txn.rollback()

    def test_lost_update_is_possible(self, engine):
        """Read committed does not detect write-write conflicts on read-modify-write."""
        node_id = create_node(engine, counter=0)
        t1 = engine.begin()
        t2 = engine.begin()
        value_seen_by_t1 = t1.read_node(node_id).properties["counter"]
        value_seen_by_t2 = t2.read_node(node_id).properties["counter"]
        t1.put_node(NodeData(node_id, {"Person"}, {"counter": value_seen_by_t1 + 1}))
        t1.commit()
        t2.put_node(NodeData(node_id, {"Person"}, {"counter": value_seen_by_t2 + 1}))
        t2.commit()
        # Both incremented from 0, so one update was lost (final value 1, not 2).
        assert engine.begin().read_node(node_id).properties["counter"] == 1

    def test_engine_stats(self, engine):
        create_node(engine)
        txn = engine.begin()
        txn.rollback()
        stats = engine.stats.as_dict()
        assert stats["committed"] == 1
        assert stats["aborted"] == 1
        assert stats["begun"] == 2
