"""Deterministic isolation-anomaly scenarios (the heart of the paper's claims).

Each scenario interleaves two or three transactions explicitly (no threads, no
timing) so the outcome is exact: read committed exhibits the anomaly, snapshot
isolation does not — except write skew, which SI is expected to permit.
"""

import pytest

from repro import WriteWriteConflictError
from repro.workload.anomaly import (
    LostUpdateProbe,
    WriteSkewProbe,
    check_phantom_read,
    check_traversal_consistency,
    check_unrepeatable_read,
)


def seed_person(db, **props):
    with db.transaction() as tx:
        return tx.create_node(["Person"], props).id


class TestUnrepeatableReads:
    def test_read_committed_exhibits_unrepeatable_read(self, rc_db):
        node_id = seed_person(rc_db, score=1)
        reader = rc_db.begin(read_only=True)

        def concurrent_update():
            with rc_db.transaction() as tx:
                tx.set_node_property(node_id, "score", 2)

        observed = check_unrepeatable_read(
            reader, node_id, "score", pause=concurrent_update
        )
        reader.rollback()
        assert observed

    def test_snapshot_isolation_prevents_unrepeatable_read(self, si_db):
        node_id = seed_person(si_db, score=1)
        reader = si_db.begin(read_only=True)

        def concurrent_update():
            with si_db.transaction() as tx:
                tx.set_node_property(node_id, "score", 2)

        observed = check_unrepeatable_read(
            reader, node_id, "score", pause=concurrent_update
        )
        reader.rollback()
        assert not observed


class TestPhantomReads:
    def test_read_committed_exhibits_phantoms_on_label_scan(self, rc_db):
        seed_person(rc_db)
        reader = rc_db.begin(read_only=True)

        def concurrent_insert():
            with rc_db.transaction() as tx:
                tx.create_node(["Person"], {"name": "phantom"})

        observed = check_phantom_read(reader, label="Person", pause=concurrent_insert)
        reader.rollback()
        assert observed

    def test_snapshot_isolation_prevents_phantoms_on_label_scan(self, si_db):
        seed_person(si_db)
        reader = si_db.begin(read_only=True)

        def concurrent_insert():
            with si_db.transaction() as tx:
                tx.create_node(["Person"], {"name": "phantom"})

        observed = check_phantom_read(reader, label="Person", pause=concurrent_insert)
        reader.rollback()
        assert not observed

    def test_snapshot_isolation_prevents_phantoms_on_property_scan(self, si_db):
        seed_person(si_db, city="madrid")
        reader = si_db.begin(read_only=True)

        def concurrent_change():
            with si_db.transaction() as tx:
                tx.create_node(["Person"], {"city": "madrid"})

        observed = check_phantom_read(
            reader, key="city", value="madrid", pause=concurrent_change
        )
        reader.rollback()
        assert not observed

    def test_snapshot_scan_also_ignores_concurrent_deletes(self, si_db):
        victim = seed_person(si_db)
        reader = si_db.begin(read_only=True)

        def concurrent_delete():
            with si_db.transaction() as tx:
                tx.delete_node(victim, detach=True)

        observed = check_phantom_read(reader, label="Person", pause=concurrent_delete)
        reader.rollback()
        assert not observed


class TestTraversalConsistency:
    def _build_triangle(self, db):
        with db.transaction() as tx:
            hub = tx.create_node(["Person"], {"name": "hub"})
            friend = tx.create_node(["Person"], {"name": "friend"})
            tx.create_relationship(hub, friend, "KNOWS")
            return hub.id, friend.id

    def test_read_committed_breaks_two_step_traversal(self, rc_db):
        hub, friend = self._build_triangle(rc_db)
        reader = rc_db.begin(read_only=True)

        def concurrent_delete():
            with rc_db.transaction() as tx:
                tx.delete_node(friend, detach=True)

        assert check_traversal_consistency(reader, hub, pause=concurrent_delete)
        reader.rollback()

    def test_snapshot_isolation_keeps_two_step_traversal_consistent(self, si_db):
        hub, friend = self._build_triangle(si_db)
        reader = si_db.begin(read_only=True)

        def concurrent_delete():
            with si_db.transaction() as tx:
                tx.delete_node(friend, detach=True)

        assert not check_traversal_consistency(reader, hub, pause=concurrent_delete)
        reader.rollback()


class TestLostUpdates:
    def test_read_committed_loses_updates(self, rc_db):
        node_id = seed_person(rc_db, counter=0)
        probe = LostUpdateProbe(node_id)
        # Two interleaved read-modify-write increments: t2 reads the counter
        # (0), then t1 performs its whole increment and commits, then t2
        # writes 0 + 1 on top of it — t1's update is lost.
        t1 = rc_db.begin()
        t2 = rc_db.begin()

        def t1_increments_and_commits():
            probe.increment(t1)
            t1.commit()
            probe.record_success()

        probe.increment(t2, pause=t1_increments_and_commits)
        t2.commit()
        probe.record_success()
        with rc_db.transaction(read_only=True) as tx:
            assert probe.lost_updates(tx) == 1

    def test_snapshot_isolation_aborts_the_second_updater(self, si_db):
        node_id = seed_person(si_db, counter=0)
        probe = LostUpdateProbe(node_id)
        t1 = si_db.begin()
        t2 = si_db.begin()
        probe.increment(t1)
        t1.commit()
        probe.record_success()
        with pytest.raises(WriteWriteConflictError):
            probe.increment(t2)
        t2.rollback()
        with si_db.transaction(read_only=True) as tx:
            assert probe.lost_updates(tx) == 0


class TestWriteSkew:
    def test_snapshot_isolation_permits_write_skew(self, si_db):
        """The one anomaly the paper concedes: SI allows write skew."""
        with si_db.transaction() as tx:
            account_a = tx.create_node(["Account"], {"balance": 60}).id
            account_b = tx.create_node(["Account"], {"balance": 60}).id
        probe = WriteSkewProbe(account_a, account_b, withdraw_amount=80)
        t1 = si_db.begin()
        t2 = si_db.begin()
        assert probe.withdraw(t1, account_a)
        assert probe.withdraw(t2, account_b)
        t1.commit()
        t2.commit()  # disjoint write sets: no write-write conflict
        with si_db.transaction(read_only=True) as tx:
            assert probe.constraint_violated(tx)

    def test_write_skew_on_same_account_is_a_conflict(self, si_db):
        with si_db.transaction() as tx:
            account_a = tx.create_node(["Account"], {"balance": 60}).id
            account_b = tx.create_node(["Account"], {"balance": 60}).id
        probe = WriteSkewProbe(account_a, account_b, withdraw_amount=80)
        t1 = si_db.begin()
        t2 = si_db.begin()
        probe.withdraw(t1, account_a)
        with pytest.raises(WriteWriteConflictError):
            probe.withdraw(t2, account_a)
        t2.rollback()
        t1.commit()
