"""WAL crash recovery: committed-prefix durability under group commit.

A "crash" is simulated by copying the store directory while the database is
still open (dirty pages unflushed, WAL not checkpointed) — exactly the disk
image a kill would leave — and then damaging the WAL tail: truncating it
mid-record (a torn write) or flipping a byte (corruption caught by the CRC).
Reopening the copy must replay every batch whose COMMIT frame survived and
drop everything from the first damaged frame on, with no error and no
partial batch applied.
"""

import os
import shutil

import pytest

from repro import GraphDatabase, IsolationLevel
from repro.graph.wal import WriteAheadLog


def _crash_image(live_path, crash_path):
    """Copy the store directory as a crash would leave it (no close/flush)."""
    shutil.copytree(live_path, crash_path)
    return crash_path


def _committed_names(db):
    with db.transaction(read_only=True) as tx:
        return sorted(node.get("name") for node in tx.find_nodes(label="Item"))


def _commit_items(db, names):
    for name in names:
        with db.transaction() as tx:
            tx.create_node(labels=["Item"], properties={"name": name})


class TestTornTail:
    def test_torn_tail_drops_only_the_torn_batch(self, tmp_path):
        live = str(tmp_path / "live")
        db = GraphDatabase.open(live, group_commit=True)
        _commit_items(db, ["a", "b", "c", "d"])
        crash = _crash_image(live, str(tmp_path / "crash"))
        db.close()
        # Tear the tail: damage the last batch's COMMIT frame (18 bytes:
        # 14-byte header + empty payload + 4-byte CRC).
        wal_path = os.path.join(crash, "wal.log")
        os.truncate(wal_path, os.path.getsize(wal_path) - 5)
        recovered = GraphDatabase.open(crash, group_commit=True)
        # Committed-prefix durability: everything before the torn batch
        # replays, the torn batch disappears entirely.
        assert _committed_names(recovered) == ["a", "b", "c"]
        recovered.close()

    def test_truncation_to_arbitrary_points_always_yields_a_prefix(self, tmp_path):
        """Wherever the tear lands, recovery is a prefix of the commits."""
        live = str(tmp_path / "live")
        db = GraphDatabase.open(live)
        names = ["a", "b", "c"]
        _commit_items(db, names)
        crash_base = _crash_image(live, str(tmp_path / "crash-base"))
        db.close()
        wal_size = os.path.getsize(os.path.join(crash_base, "wal.log"))
        prefixes = set()
        for cut in range(1, wal_size, max(1, wal_size // 17)):
            crash = str(tmp_path / f"crash-{cut}")
            shutil.copytree(crash_base, crash)
            os.truncate(os.path.join(crash, "wal.log"), wal_size - cut)
            recovered = GraphDatabase.open(crash)
            survivors = _committed_names(recovered)
            recovered.close()
            assert survivors == names[: len(survivors)], (
                f"cutting {cut} bytes recovered a non-prefix: {survivors}"
            )
            prefixes.add(len(survivors))
        assert len(prefixes) > 1  # the sweep actually exercised several tears

    def test_corrupt_byte_ends_replay_cleanly(self, tmp_path):
        live = str(tmp_path / "live")
        db = GraphDatabase.open(live)
        _commit_items(db, ["a", "b", "c"])
        crash = _crash_image(live, str(tmp_path / "crash"))
        db.close()
        wal_path = os.path.join(crash, "wal.log")
        size = os.path.getsize(wal_path)
        with open(wal_path, "r+b") as handle:
            handle.seek(size * 2 // 3)
            byte = handle.read(1)
            handle.seek(size * 2 // 3)
            handle.write(bytes([byte[0] ^ 0xFF]))
        recovered = GraphDatabase.open(crash)
        survivors = _committed_names(recovered)
        recovered.close()
        # The CRC catches the flip; replay stops there and keeps the prefix.
        assert survivors == ["a", "b", "c"][: len(survivors)]
        assert len(survivors) < 3


class TestGroupCommitRecovery:
    def test_mid_group_truncation_keeps_group_prefix(self, tmp_path):
        """One group append holds several batches; a tear inside the group
        must keep the group's leading batches."""
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        batches = [
            (1, [{"op": "write_node", "node": {"id": 1}}]),
            (2, [{"op": "write_node", "node": {"id": 2}}]),
            (3, [{"op": "write_node", "node": {"id": 3}}]),
        ]
        wal.append_commits(batches)  # one write, one (optional) fsync
        assert wal.appended_batches == 3
        # Find the byte range of the third batch by re-framing the first two.
        prefix_wal = WriteAheadLog(None)
        prefix_wal.append_commits(batches[:2])
        prefix_size = prefix_wal.size_bytes()
        wal.close()
        os.truncate(str(tmp_path / "wal.log"), prefix_size + 7)  # torn 3rd batch
        reopened = WriteAheadLog(str(tmp_path / "wal.log"))
        replayed = list(reopened.replay())
        reopened.close()
        assert replayed == [batches[0][1], batches[1][1]]

    def test_batch_without_commit_frame_is_dropped(self, tmp_path):
        """A BEGIN/OPERATION sequence with no COMMIT never replays."""
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append_commit(1, [{"op": "a"}])
        committed_size = wal.size_bytes()
        wal.append_commit(2, [{"op": "b"}])
        wal.close()
        # Cut exactly the second batch's COMMIT frame (18 bytes).
        os.truncate(path, os.path.getsize(path) - 18)
        assert os.path.getsize(path) > committed_size  # BEGIN+OP survive
        reopened = WriteAheadLog(path)
        assert list(reopened.replay()) == [[{"op": "a"}]]
        reopened.close()

    def test_concurrent_group_commits_all_durable(self, tmp_path):
        """Every transaction whose commit returned before the crash image
        was taken must survive recovery, coalesced groups included."""
        import threading

        live = str(tmp_path / "live")
        db = GraphDatabase.open(live, group_commit=True, commit_stripes=8)

        def worker(worker_id):
            for i in range(5):
                with db.transaction() as tx:
                    tx.create_node(
                        labels=["Item"], properties={"name": f"w{worker_id}-{i}"}
                    )

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = sorted(f"w{w}-{i}" for w in range(4) for i in range(5))
        crash = _crash_image(live, str(tmp_path / "crash"))
        db.close()
        recovered = GraphDatabase.open(crash, group_commit=True)
        assert _committed_names(recovered) == expected
        recovered.close()


class TestCleanReplay:
    def test_recovery_checkpoints_and_reopens_cleanly(self, tmp_path):
        live = str(tmp_path / "live")
        db = GraphDatabase.open(live)
        _commit_items(db, ["a", "b"])
        crash = _crash_image(live, str(tmp_path / "crash"))
        db.close()
        first = GraphDatabase.open(crash)
        assert _committed_names(first) == ["a", "b"]
        assert first.store.stats.batches_replayed > 0
        # Recovery checkpointed: the log is empty again.
        assert first.store.wal.entry_count() == 0
        # The recovered database is fully writable.
        _commit_items(first, ["c"])
        first.close()
        second = GraphDatabase.open(crash)
        assert _committed_names(second) == ["a", "b", "c"]
        assert second.store.stats.batches_replayed == 0  # nothing left to replay
        second.close()

    def test_recovery_preserves_snapshot_timestamps(self, tmp_path):
        """Replayed entities keep their persisted commit timestamps, so the
        reopened engine's snapshots cover them (SI bootstrap invariant)."""
        live = str(tmp_path / "live")
        db = GraphDatabase.open(live, isolation=IsolationLevel.SERIALIZABLE)
        _commit_items(db, ["a", "b"])
        crash = _crash_image(live, str(tmp_path / "crash"))
        db.close()
        recovered = GraphDatabase.open(crash, isolation=IsolationLevel.SERIALIZABLE)
        assert _committed_names(recovered) == ["a", "b"]
        oracle_stats = recovered.statistics()["engine"]["oracle"]
        assert oracle_stats["latest_commit_ts"] >= 2
        recovered.close()
