"""Minimal Prometheus text-format (0.0.4) parser for test/CI validation.

Importable (``parse_prometheus_text``) and runnable: ``python
tests/prometheus_parser.py < metrics.txt`` exits non-zero on malformed
input and prints the sample count on success.
"""

import re
import sys

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$"
)
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:\\.|[^"\\])*)"$')


def parse_prometheus_text(text):
    """``{(name, ((label, value), ...)): float}`` — raises ValueError on bad lines."""
    samples = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"malformed sample line: {line!r}")
        labels = []
        for part in filter(None, (match.group("labels") or "").split(",")):
            label = _LABEL.match(part.strip())
            if label is None:
                raise ValueError(f"malformed label in line: {line!r}")
            labels.append((label.group("key"), label.group("value")))
        samples[(match.group("name"), tuple(labels))] = float(match.group("value"))
    return samples


if __name__ == "__main__":
    parsed = parse_prometheus_text(sys.stdin.read())
    if not parsed:
        sys.exit("no samples parsed")
    print(f"parsed {len(parsed)} samples")
