"""Safe snapshots for read-only serializable transactions.

The Fekete/O'Neil/O'Neil read-only-transaction anomaly, reproduced
*deterministically* with the schedule-controlled stepper and proven closed
by safe-snapshot gating:

* under ``SNAPSHOT`` (and under ``SERIALIZABLE`` with gating disabled, i.e.
  the bare PR-4 read-only fast path) the anomaly is present — the recorded
  history's DSG has a cycle through the read-only transaction;
* under ``SERIALIZABLE`` with gating (the default) the threatening writer is
  aborted with :class:`UnsafeSnapshotError` — **never the reader** — in
  non-deferrable mode, and in deferrable mode the reader blocks at begin,
  retakes its snapshot, and observes a fully consistent state while every
  writer commits undisturbed.

The scenario (checking account ``x``, savings account ``y``, both 0):

* T1 *deposit*: ``y += 20``;
* T2 *withdraw*: reads both balances, withdraws 10 from ``x`` and charges a
  1-unit overdraft fee iff the combined balance it saw cannot cover it;
* T3 *report* (read-only): reads both balances.

T2 reads before T1's deposit, so T2 serializes before T1.  T3 runs after
T1's commit and sees the deposit but not the withdrawal — an observation no
serial order admits (T1 < T3 < T2 < T1), and one that only exists because
T3 ran: without the report the history is serializable as T2, T1.
"""

import threading

import pytest

from repro import (
    GraphDatabase,
    IsolationLevel,
    SerializationError,
    UnsafeSnapshotError,
)

from harness import History, Recorder, Stepper
from harness.stepper import ABORTED, COMMITTED


def _make_accounts(db):
    with db.transaction() as tx:
        x = tx.create_node(labels=["Account"], properties={"name": "checking", "balance": 0})
        y = tx.create_node(labels=["Account"], properties={"name": "savings", "balance": 0})
    return x.id, y.id


def _deposit(y):
    def fn(ctx):
        balance = ctx.read(y, "balance")
        ctx.write(y, "balance", balance + 20)
    return fn


def _withdraw(x, y):
    def fn(ctx):
        balance_x = ctx.read(x, "balance")
        balance_y = ctx.read(y, "balance")
        yield "read"
        fee = 1 if balance_x + balance_y - 10 < 0 else 0
        ctx.write(x, "balance", balance_x - 10 - fee)
    return fn


def _report(x, y, seen):
    def fn(ctx):
        seen["x"] = ctx.read(x, "balance")
        seen["y"] = ctx.read(y, "balance")
    return fn


#: The anomaly schedule: T2 reads both accounts, the deposit commits, the
#: read-only report runs, then the withdrawal (with its stale fee decision)
#: tries to commit.
def _fekete_schedule(stepper, *, withdraw_outcome):
    return stepper.run([
        ("withdraw", "read"),
        ("deposit", COMMITTED),
        ("report", COMMITTED),
        ("withdraw", withdraw_outcome),
    ])


class TestFeketeAnomalyPresent:
    """The anomaly must be reproducible on demand where it is permitted."""

    def test_present_under_snapshot(self):
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SNAPSHOT)
        x, y = _make_accounts(db)
        seen = {}
        stepper = Stepper(db)
        stepper.add("deposit", _deposit(y))
        stepper.add("withdraw", _withdraw(x, y))
        stepper.add("report", _report(x, y, seen), read_only=True)
        _fekete_schedule(stepper, withdraw_outcome=COMMITTED)
        # The report saw the deposit but not the withdrawal...
        assert seen == {"x": 0, "y": 20}
        # ...and the fee was charged even though the deposit covered it:
        with db.transaction(read_only=True) as tx:
            assert tx.get_node(x).get("balance") == -11
        # The recorded history is provably non-serializable (DSG cycle
        # through the read-only transaction) yet within SI's promise.
        cycle = stepper.history.find_cycle()
        assert cycle is not None
        assert {kind for _, _, kind in cycle} == {"rw", "wr"}
        assert stepper.history.find_si_forbidden_cycle() is None
        db.close()

    def test_present_under_serializable_with_gating_disabled(self):
        """The PR-4 bare read-only fast path admits the anomaly (the gap)."""
        db = GraphDatabase.in_memory(
            isolation=IsolationLevel.SERIALIZABLE, safe_snapshots=False
        )
        x, y = _make_accounts(db)
        seen = {}
        stepper = Stepper(db)
        stepper.add("deposit", _deposit(y))
        stepper.add("withdraw", _withdraw(x, y))
        stepper.add("report", _report(x, y, seen), read_only=True)
        _fekete_schedule(stepper, withdraw_outcome=COMMITTED)
        assert seen == {"x": 0, "y": 20}
        assert stepper.history.find_cycle() is not None
        db.close()

    def test_absent_without_the_reader(self):
        """Without T3 the same writer interleaving is serializable (T2, T1) —
        which is exactly why SSI's read-write tracking alone cannot see it."""
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        x, y = _make_accounts(db)
        stepper = Stepper(db)
        stepper.add("deposit", _deposit(y))
        stepper.add("withdraw", _withdraw(x, y))
        stepper.run([
            ("withdraw", "read"),
            ("deposit", COMMITTED),
            ("withdraw", COMMITTED),
        ])
        stepper.history.assert_serializable()
        db.close()


class TestFeketeClosedBySafeSnapshots:
    def test_writer_aborted_reader_untouched(self):
        """Non-deferrable mode: the withdrawal is the sacrifice, never T3."""
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        x, y = _make_accounts(db)
        seen = {}
        stepper = Stepper(db)
        stepper.add("deposit", _deposit(y))
        stepper.add("withdraw", _withdraw(x, y))
        stepper.add("report", _report(x, y, seen), read_only=True)
        outcomes = _fekete_schedule(stepper, withdraw_outcome=ABORTED)
        assert outcomes == {
            "deposit": COMMITTED,
            "report": COMMITTED,
            "withdraw": ABORTED,
        }
        assert isinstance(stepper.error_of("withdraw"), UnsafeSnapshotError)
        # The reader's observation (x=0, y=20) is now consistent: the
        # withdrawal never happened.
        assert seen == {"x": 0, "y": 20}
        stepper.history.assert_serializable()
        # Abort attribution: a safe-snapshot abort, not an rw-antidependency.
        reasons = db.statistics()["engine"]["transactions"]["abort_reasons"]
        assert reasons["safe-snapshot"] == 1
        assert reasons["rw-antidependency"] == 0
        safe = db.statistics()["safe_snapshots"]
        assert safe["tracked"] == 1
        assert safe["writer_aborts"] == 1
        db.close()

    def test_retried_writer_succeeds_and_stays_serializable(self):
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        x, y = _make_accounts(db)
        seen = {}
        history = History()
        stepper = Stepper(db, history)
        stepper.add("deposit", _deposit(y))
        stepper.add("withdraw", _withdraw(x, y))
        stepper.add("report", _report(x, y, seen), read_only=True)
        _fekete_schedule(stepper, withdraw_outcome=ABORTED)

        # Retry the withdrawal on a fresh snapshot: it now sees the deposit,
        # so no overdraft fee is due.
        def retry(ctx):
            balance_x = ctx.read(x, "balance")
            balance_y = ctx.read(y, "balance")
            fee = 1 if balance_x + balance_y - 10 < 0 else 0
            ctx.write(x, "balance", balance_x - 10 - fee)

        Recorder(history).run(db, "withdraw-retry", retry)
        with db.transaction(read_only=True) as tx:
            assert tx.get_node(x).get("balance") == -10  # no fee
            assert tx.get_node(y).get("balance") == 20
        history.assert_serializable()
        db.close()

    def test_forced_upgrade_to_siread_tracking(self):
        """A reader still running when the writer is blocked upgrades to
        full SIREAD tracking (buffered reads registered retroactively) and
        is still never aborted."""
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        x, y = _make_accounts(db)
        seen = {}

        def paced_report(ctx):
            seen["x"] = ctx.read(x, "balance")
            yield "mid"
            seen["y"] = ctx.read(y, "balance")

        def lingerer(ctx):
            # A harmless read-write transaction that stays in flight so the
            # reader's census is still draining when the gate fires — the
            # situation in which the reader's upgrade actually takes effect.
            ctx.read(y, "balance")
            yield "hold"

        stepper = Stepper(db)
        stepper.add("deposit", _deposit(y))
        stepper.add("withdraw", _withdraw(x, y))
        stepper.add("lingerer", lingerer)
        stepper.add("report", paced_report, read_only=True)
        outcomes = stepper.run([
            ("lingerer", "hold"),       # census member that outlives the abort
            ("withdraw", "read"),
            ("deposit", COMMITTED),
            ("report", "mid"),          # reader pending, read of x buffered
            ("withdraw", ABORTED),      # gate fires; reader must upgrade
            ("report", COMMITTED),      # next read registers everything
            ("lingerer", COMMITTED),
        ])
        assert outcomes["report"] == COMMITTED
        assert seen == {"x": 0, "y": 20}
        safe = db.statistics()["safe_snapshots"]
        assert safe["upgrades"] == 1
        assert safe["writer_aborts"] == 1
        stepper.history.assert_serializable()
        db.close()

    def test_reader_finishing_first_still_gates_the_writer(self):
        """The census entry outlives the reader: T3's results were already
        handed out, so T2 must still abort after T3 committed."""
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        x, y = _make_accounts(db)
        seen = {}
        stepper = Stepper(db)
        stepper.add("deposit", _deposit(y))
        stepper.add("withdraw", _withdraw(x, y))
        stepper.add("report", _report(x, y, seen), read_only=True)
        # Identical to the anomaly schedule — the report commits (step 3)
        # before the withdrawal tries to (step 4) and the gate still fires.
        _fekete_schedule(stepper, withdraw_outcome=ABORTED)
        assert db.statistics()["safe_snapshots"]["pending"] == 0
        db.close()


class TestDeferrableMode:
    def test_deferrable_blocks_then_retakes_on_danger(self):
        """A deferrable reader waits out the census; a dangerous commit goes
        through (no writer abort) and the reader retakes its snapshot."""
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        x, y = _make_accounts(db)
        withdraw_tx = db.begin()
        balance_x = withdraw_tx.get_node(x).get("balance")
        balance_y = withdraw_tx.get_node(y).get("balance")
        with db.transaction() as tx:  # the deposit commits first
            tx.set_node_property(y, "balance", tx.get_node(y).get("balance") + 20)

        seen = {}
        started = threading.Event()
        done = threading.Event()

        def report():
            started.set()
            with db.transaction(read_only=True, deferrable=True) as tx:
                seen["x"] = tx.get_node(x).get("balance")
                seen["y"] = tx.get_node(y).get("balance")
            done.set()

        thread = threading.Thread(target=report)
        thread.start()
        assert started.wait(5.0)
        # The reader must be parked: the withdrawal is still in flight.
        assert not done.wait(0.3)
        # The withdrawal commits dangerously — deferrable readers have read
        # nothing, so the writer is NOT aborted.
        fee = 1 if balance_x + balance_y - 10 < 0 else 0
        withdraw_tx.set_node_property(x, "balance", balance_x - 10 - fee)
        withdraw_tx.commit()
        assert done.wait(5.0)
        thread.join()
        # The retaken snapshot covers both commits: fully consistent.
        assert seen == {"x": -11, "y": 20}
        safe = db.statistics()["safe_snapshots"]
        assert safe["waits"] >= 1
        assert safe["retakes"] >= 1
        assert safe["writer_aborts"] == 0
        db.close()

    def test_deferrable_wakes_when_census_drains_cleanly(self):
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        x, _y = _make_accounts(db)
        writer = db.begin()
        writer.set_node_property(x, "balance", 1)
        done = threading.Event()
        seen = {}

        def report():
            with db.transaction(read_only=True, deferrable=True) as tx:
                seen["x"] = tx.get_node(x).get("balance")
            done.set()

        thread = threading.Thread(target=report)
        thread.start()
        assert not done.wait(0.3)  # parked behind the in-flight writer
        writer.commit()
        assert done.wait(5.0)
        thread.join()
        # The census drained without danger, so the reader keeps the
        # snapshot it took (PostgreSQL DEFERRABLE semantics): it serializes
        # *before* the harmless writer and correctly sees the old balance.
        assert seen["x"] == 0
        safe = db.statistics()["safe_snapshots"]
        assert safe["waits"] >= 1
        assert safe["became_safe"] >= 1
        assert safe["retakes"] == 0
        db.close()

    def test_defer_readonly_database_default(self):
        db = GraphDatabase.in_memory(
            isolation=IsolationLevel.SERIALIZABLE, defer_readonly=True
        )
        x, _y = _make_accounts(db)
        # No read-write transaction in flight: deferrable begin is immediate.
        with db.transaction(read_only=True) as tx:
            assert tx.get_node(x).get("balance") == 0
        assert db.statistics()["safe_snapshots"]["immediate"] >= 1
        assert db.execute("MATCH (a:Account) RETURN count(*) AS n").records()[0]["n"] == 2
        db.close()


class TestSafeSnapshotMechanics:
    def test_empty_census_is_free(self):
        """No read-write transaction in flight: the reader pays nothing."""
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        x, _y = _make_accounts(db)
        with db.transaction(read_only=True) as tx:
            tx.get_node(x)
        safe = db.statistics()["safe_snapshots"]
        assert safe["immediate"] == 1
        assert safe["tracked"] == 0
        cc = db.statistics()["engine"]["concurrency_control"]
        assert cc["siread_entries"] == 0
        db.close()

    def test_harmless_overlap_resolves_safe(self):
        """A reader overlapping a harmless writer becomes safe, no upgrade."""
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        x, y = _make_accounts(db)
        writer = db.begin()
        writer.set_node_property(x, "balance", 5)
        reader = db.begin(read_only=True)
        assert reader.get_node(y).get("balance") == 0
        writer.commit()  # no rw out-edge: census drains cleanly
        assert reader.get_node(y).get("balance") == 0
        reader.commit()
        safe = db.statistics()["safe_snapshots"]
        assert safe["tracked"] == 1
        assert safe["became_safe"] == 1
        assert safe["upgrades"] == 0
        assert safe["writer_aborts"] == 0
        db.close()

    def test_unsafe_at_birth_snapshot_is_retaken(self):
        """White-box: a census member that committed dangerously but has not
        yet published forces a snapshot retake (nothing can be aborted)."""
        from repro.core.cc_policy import (
            RETAKE_SNAPSHOT,
            SerializableSnapshotPolicy,
        )
        from repro.locking.lock_manager import LockManager

        from repro.graph.entity import EntityKey

        policy = SerializableSnapshotPolicy(LockManager())
        writer = policy.begin_transaction(1, 0)
        writer.out_commit_ts = 3  # out-edge to a commit at ts 3
        # The writer commits (no pending readers yet) but, as far as the
        # oracle census is concerned, is still unpublished.
        policy.record_commit(writer, [(EntityKey.node(1), None, None)], 7)
        # Reader's snapshot (ts 3) covers the out-partner but not the writer.
        assert policy.begin_read_only(5, 3, (1,)) is RETAKE_SNAPSHOT
        # A snapshot predating the out-partner is not threatened.
        assert policy.begin_read_only(6, 2, (1,)) is None

    def test_census_member_pruned_before_registration_forces_retake(self):
        """White-box: a reader can be granted its census, lose the GIL, and
        register only after the member finished AND its finish record was
        reclaimed.  The danger is then unknowable, so the reader must retake
        its snapshot instead of waiting forever on a census that can never
        drain (regression: this leaked a pending entry and hung deferrable
        readers)."""
        from repro.core.cc_policy import (
            RETAKE_SNAPSHOT,
            SerializableSnapshotPolicy,
        )
        from repro.graph.entity import EntityKey
        from repro.locking.lock_manager import LockManager

        policy = SerializableSnapshotPolicy(LockManager())
        writer = policy.begin_transaction(3, 0)
        policy.record_commit(writer, [(EntityKey.node(1), None, None)], 1)
        policy.reclaim(10, quiescent=True)  # prunes the finish record
        # A stale census naming the pruned member is ambiguous: retake.
        assert policy.begin_read_only(9, 5, (3,)) is RETAKE_SNAPSHOT
        # A fresh census (no stale member) is unaffected.
        assert policy.begin_read_only(10, 5, ()) is None

    def test_upgraded_reader_is_never_aborted_by_committed_pivot(self):
        """White-box: a read-only record reaching a committed pivot through
        a reader-side edge is suppressed, not sacrificed."""
        from repro.core.cc_policy import (
            PendingSafeSnapshot,
            SerializableSnapshotPolicy,
        )
        from repro.graph.entity import EntityKey
        from repro.locking.lock_manager import LockManager

        policy = SerializableSnapshotPolicy(LockManager())
        key_a, key_b = EntityKey.node(1), EntityKey.node(2)
        w1 = policy.begin_transaction(1, 0)
        policy.register_point_read(w1, key_b)
        policy.record_commit(w1, [(key_a, None, None)], 1)  # w1 writes a
        w2 = policy.begin_transaction(2, 0)
        policy.record_commit(w2, [(key_b, None, None)], 2)  # w1 -rw-> w2
        # An upgraded reader that read a (written by the committed w1):
        # the edge reader -> w1 makes w1 a committed pivot, but the acting
        # transaction is read-only and must survive.
        handle = PendingSafeSnapshot(9, 0, {1}, deferrable=False)
        handle.record.read_keys.add(key_a)
        policy.upgrade_reader(handle)  # must not raise
        assert not handle.record.doomed
        assert policy.rw_antidependency_aborts() == 0

    def test_read_only_queries_stay_free_through_db_execute(self):
        """The PR-4 free path is intact: `db.execute` read statements leave
        no tracking state behind when nothing read-write is in flight."""
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        db.execute("CREATE (:Person {name: 'Ada'})")
        db.run_gc()
        for _ in range(5):
            db.execute("MATCH (p:Person) RETURN p.name")
        cc = db.statistics()["engine"]["concurrency_control"]
        assert cc["tracked_transactions"] == 0
        assert cc["siread_entries"] == 0
        safe = db.statistics()["safe_snapshots"]
        assert safe["immediate"] >= 5
        assert safe["tracked"] == 0
        db.close()

    def test_unsafe_snapshot_error_is_retryable(self):
        assert issubclass(UnsafeSnapshotError, SerializationError)
