"""Failpoint subsystem + durability hardening, deterministically.

Each test arms a specific failpoint (see ``repro.fault.FAILPOINT_SITES``)
and asserts the exact hardening contract for that boundary:

* transient IO errors on the WAL append/fsync path are absorbed by the
  bounded retry loop (with truncate-back repair, so a failed attempt leaves
  zero durable trace);
* unrecoverable failures flip the engine into degraded read-only mode —
  writers are fenced with :class:`DatabaseReadOnlyError`, snapshot readers
  keep working, ``db.health()`` / the ``repro_engine_degraded`` gauge /
  ``/healthz`` report it;
* checkpoints are crash-atomic (stores flushed and fsynced strictly before
  the WAL is truncated, marker written via temp + rename), so a crash at any
  checkpoint step recovers by idempotent WAL replay;
* ``close()`` always releases the file descriptors, even when its final
  checkpoint fails.

Storage-layer failures surface to the caller as the *raw* error (``WalError``,
``InjectedFaultError``, ``SimulatedCrashError``) — not wrapped in an abort
class — while the transaction is aborted underneath and the failure is
attributed through ``classify_abort`` into the ``abort_reasons()`` breakdown.
"""

import json
import os
import re
import shutil
import urllib.error
import urllib.request

import pytest

from repro import (
    DatabaseReadOnlyError,
    FailpointRegistry,
    GraphDatabase,
    IsolationLevel,
    TransactionAbortedError,
)
from repro.errors import (
    InjectedFaultError,
    SimulatedCrashError,
    WalError,
    classify_abort,
)
from repro.fault import FAILPOINT_SITES, parse_spec
from repro.graph.recovery import (
    CHECKPOINT_MARKER,
    check_store,
    read_checkpoint_marker,
)


def _crash_image(live_path, crash_path):
    """Copy the store directory as a crash would leave it (no close/flush)."""
    shutil.copytree(live_path, crash_path)
    return crash_path


def _commit_items(db, names):
    for name in names:
        with db.transaction() as tx:
            tx.create_node(labels=["Item"], properties={"name": name})


def _committed_names(db):
    with db.transaction(read_only=True) as tx:
        return sorted(node.get("name") for node in tx.find_nodes(label="Item"))


# ---------------------------------------------------------------------------
# policies and registry
# ---------------------------------------------------------------------------


class TestSpecParsing:
    def test_policy_firing_patterns(self):
        cases = {
            "always:error": [True] * 6,
            "once:error": [True] + [False] * 5,
            "nth(3):error": [False, False, True, False, False, False],
            "every(2):error": [False, True, False, True, False, True],
            "times(2):error": [True, True, False, False, False, False],
        }
        for spec, expected in cases.items():
            policy, _ = parse_spec(spec)
            got = [policy.should_fire(hit) for hit in range(1, 7)]
            assert got == expected, spec

    def test_prob_policy_is_a_pure_function_of_seed(self):
        first, _ = parse_spec("prob(0.3,42):error")
        second, _ = parse_spec("prob(0.3,42):error")
        pattern = [first.should_fire(hit) for hit in range(1, 200)]
        assert pattern == [second.should_fire(hit) for hit in range(1, 200)]
        assert any(pattern) and not all(pattern)
        different, _ = parse_spec("prob(0.3,43):error")
        assert pattern != [different.should_fire(hit) for hit in range(1, 200)]

    def test_action_variants(self):
        _, error = parse_spec("once:error")
        assert error.kind == "error" and error.fraction is None
        _, enospc = parse_spec("once:error(ENOSPC)")
        assert enospc.errno_name == "ENOSPC"
        _, torn = parse_spec("once:torn")
        assert torn.fraction == 0.5
        _, torn_f = parse_spec("once:torn(0.25)")
        assert torn_f.fraction == 0.25
        _, crash = parse_spec("once:crash")
        assert crash.kind == "crash" and crash.fraction is None
        _, crash_f = parse_spec("once:crash(0.75)")
        assert crash_f.fraction == 0.75

    def test_bad_specs_are_rejected(self):
        for bad in (
            "error",  # no policy separator
            "nope:error",
            "once:explode",
            "once:error(EWHATEVER)",
            "nth(0):error",
            "prob(2):error",
            "once:torn(1.5)",
        ):
            with pytest.raises(ValueError):
                parse_spec(bad)


class TestRegistry:
    def test_unknown_site_is_an_error(self):
        registry = FailpointRegistry()
        with pytest.raises(ValueError, match="wal.append"):
            registry.arm("wal.apend", "once:error")  # typo must not silently no-op

    def test_hit_counting_and_schedule(self):
        registry = FailpointRegistry({"wal.fsync": "every(2):error"})
        fires = [registry.hit("wal.fsync") for _ in range(5)]
        assert [fault is not None for fault in fires] == [
            False, True, False, True, False,
        ]
        assert registry.hits("wal.fsync") == 5
        assert registry.fires("wal.fsync") == 2
        assert registry.schedule() == [
            {"site": "wal.fsync", "hit": 2, "action": "error"},
            {"site": "wal.fsync", "hit": 4, "action": "error"},
        ]
        assert registry.hit("wal.append") is None  # unarmed site: dict probe

    def test_string_config_and_env_fallback(self):
        registry = FailpointRegistry.from_config(
            "wal.fsync=once:error; store.checkpoint=times(2):error(EIO)"
        )
        assert registry.armed_sites() == ["store.checkpoint", "wal.fsync"]
        env = {"REPRO_FAILPOINTS": "wal.append=once:torn"}
        from_env = FailpointRegistry.from_config(None, env=env)
        assert from_env is not None and from_env.armed_sites() == ["wal.append"]
        assert FailpointRegistry.from_config(None, env={}) is None
        passthrough = FailpointRegistry()
        assert FailpointRegistry.from_config(passthrough) is passthrough

    def test_catalog_covers_every_threaded_site(self):
        assert set(FAILPOINT_SITES) == {
            "wal.append",
            "wal.fsync",
            "wal.truncate",
            "store.group_flush",
            "store.flush",
            "store.checkpoint",
            "checkpoint.marker",
            "recovery.replay",
            "commit.stripe_acquire",
            "commit.publish",
        }


# ---------------------------------------------------------------------------
# WAL retries and torn-write repair
# ---------------------------------------------------------------------------


class TestWalRetries:
    def test_transient_append_errors_are_retried(self, tmp_path):
        db = GraphDatabase.open(
            str(tmp_path / "db"), failpoints={"wal.append": "times(2):error(EIO)"}
        )
        _commit_items(db, ["a"])  # survives two injected failures
        assert db.store.wal.io_retries == 2
        assert db.statistics()["wal"]["io_retries"] == 2
        assert db.health()["status"] == "ok"
        snapshot = db.metrics_snapshot()["instruments"]
        assert snapshot["repro_io_retries_total"]["samples"][0]["value"] == 2
        db.close()
        reopened = GraphDatabase.open(str(tmp_path / "db"))
        assert _committed_names(reopened) == ["a"]
        reopened.close()

    def test_transient_fsync_errors_are_retried(self, tmp_path):
        db = GraphDatabase.open(
            str(tmp_path / "db"),
            wal_sync=True,
            failpoints={"wal.fsync": "once:error"},
        )
        _commit_items(db, ["a"])
        assert db.store.wal.io_retries == 1
        assert db.health()["status"] == "ok"
        db.close()

    def test_torn_write_is_repaired_and_retried(self, tmp_path):
        db = GraphDatabase.open(
            str(tmp_path / "db"), failpoints={"wal.append": "once:torn(0.5)"}
        )
        _commit_items(db, ["a", "b"])
        assert db.store.wal.io_retries == 1
        # Truncate-back repair: the torn prefix was removed before the retry,
        # so the log holds exactly the two committed batches, frame-aligned.
        crash = _crash_image(str(tmp_path / "db"), str(tmp_path / "crash"))
        db.close()
        recovered = GraphDatabase.open(crash)
        assert _committed_names(recovered) == ["a", "b"]
        assert check_store(recovered.store).consistent
        recovered.close()

    def test_exhausted_retries_degrade_and_leave_no_durable_trace(self, tmp_path):
        db = GraphDatabase.open(
            str(tmp_path / "db"), failpoints={"wal.append": "always:error"}
        )
        with pytest.raises(WalError):
            _commit_items(db, ["a"])
        assert db.health()["status"] == "degraded"
        assert db.health()["reason"] == "wal-append-failed"
        # Truncate-back repair ran on the final failure too: the failed
        # commit left zero durable bytes.
        crash = _crash_image(str(tmp_path / "db"), str(tmp_path / "crash"))
        db.close()
        recovered = GraphDatabase.open(crash)
        assert _committed_names(recovered) == []
        recovered.close()


# ---------------------------------------------------------------------------
# simulated crashes (power-cut semantics)
# ---------------------------------------------------------------------------


class TestSimulatedCrash:
    def test_crash_mid_append_leaves_a_committed_prefix(self, tmp_path):
        db = GraphDatabase.open(
            str(tmp_path / "db"), failpoints={"wal.append": "nth(3):crash(0.5)"}
        )
        _commit_items(db, ["a", "b"])
        with pytest.raises(SimulatedCrashError):
            _commit_items(db, ["c"])  # half the frame hits disk, then "power cut"
        assert db.health()["status"] == "degraded"
        crash = _crash_image(str(tmp_path / "db"), str(tmp_path / "crash"))
        db.close()
        recovered = GraphDatabase.open(crash)
        # The torn half-frame is dropped by the CRC rule; the acked prefix
        # survives in full.
        assert _committed_names(recovered) == ["a", "b"]
        assert check_store(recovered.store).consistent
        recovered.close()

    def test_crash_faults_are_never_retried(self, tmp_path):
        db = GraphDatabase.open(
            str(tmp_path / "db"), failpoints={"wal.append": "once:crash"}
        )
        with pytest.raises(SimulatedCrashError):
            _commit_items(db, ["a"])
        assert db.store.wal.io_retries == 0
        db.close()


# ---------------------------------------------------------------------------
# checkpoint atomicity
# ---------------------------------------------------------------------------


class TestCheckpointAtomicity:
    @pytest.mark.parametrize(
        "site",
        ["store.checkpoint", "store.flush", "checkpoint.marker", "wal.truncate"],
    )
    def test_crash_at_any_checkpoint_step_recovers_everything(self, tmp_path, site):
        live = str(tmp_path / "db")
        db = GraphDatabase.open(live, failpoints={site: "once:crash"})
        _commit_items(db, ["a", "b", "c"])
        with pytest.raises(SimulatedCrashError):
            db.checkpoint()
        assert db.health()["status"] == "degraded"
        crash = _crash_image(live, str(tmp_path / "crash"))
        db.close()
        recovered = GraphDatabase.open(crash)
        assert _committed_names(recovered) == ["a", "b", "c"]
        assert check_store(recovered.store).consistent
        recovered.close()

    def test_plain_checkpoint_failure_degrades_but_preserves_the_wal(self, tmp_path):
        live = str(tmp_path / "db")
        db = GraphDatabase.open(live, failpoints={"store.flush": "always:error"})
        _commit_items(db, ["a"])
        with pytest.raises(InjectedFaultError):
            db.checkpoint()
        assert db.health()["status"] == "degraded"
        assert db.health()["reason"] == "checkpoint-failed"
        # Degraded mode refuses further checkpoints: truncating the WAL now
        # would turn the fault into data loss.
        with pytest.raises(DatabaseReadOnlyError):
            db.checkpoint()
        assert db.store.wal.size_bytes() > 0
        db.close()  # degraded close skips the checkpoint, must not raise
        recovered = GraphDatabase.open(live)
        assert _committed_names(recovered) == ["a"]
        recovered.close()

    def test_marker_generation_advances_and_tolerates_corruption(self, tmp_path):
        live = str(tmp_path / "db")
        db = GraphDatabase.open(live)
        _commit_items(db, ["a"])
        db.checkpoint()
        first = read_checkpoint_marker(live)["generation"]
        _commit_items(db, ["b"])
        db.checkpoint()
        assert read_checkpoint_marker(live)["generation"] == first + 1
        db.close()
        with open(os.path.join(live, CHECKPOINT_MARKER), "wb") as handle:
            handle.write(b"\x00garbage")
        assert read_checkpoint_marker(live) is None
        recovered = GraphDatabase.open(live)  # corrupt marker: not fatal
        assert _committed_names(recovered) == ["a", "b"]
        recovered.close()

    def test_wal_survives_a_crash_after_the_marker_write(self, tmp_path):
        """Step ordering: stores + marker are durable before the WAL shrinks."""
        live = str(tmp_path / "db")
        db = GraphDatabase.open(live, failpoints={"wal.truncate": "once:crash"})
        _commit_items(db, ["a"])
        entries_before = db.store.wal.entry_count()
        assert entries_before > 0
        with pytest.raises(SimulatedCrashError):
            db.checkpoint()
        # Stores flushed, marker written, WAL untouched.
        assert db.store.wal.entry_count() == entries_before
        db.close()


# ---------------------------------------------------------------------------
# degraded read-only mode
# ---------------------------------------------------------------------------


def _degrade(db):
    """Drive the database into degraded mode via an unrecoverable append."""
    db.failpoints.arm("wal.append", "always:error")
    with pytest.raises(WalError):
        _commit_items(db, ["victim"])
    db.failpoints.disarm("wal.append")
    assert db.health()["status"] == "degraded"


class TestDegradedMode:
    @pytest.mark.parametrize(
        "isolation",
        [
            IsolationLevel.SNAPSHOT,
            IsolationLevel.SERIALIZABLE,
            IsolationLevel.READ_COMMITTED,
        ],
    )
    def test_writers_fenced_readers_keep_working(self, tmp_path, isolation):
        db = GraphDatabase.open(
            str(tmp_path / "db"), isolation=isolation, failpoints=FailpointRegistry()
        )
        _commit_items(db, ["a", "b"])
        _degrade(db)
        # Snapshot readers keep working; read-only transactions never abort.
        for _ in range(3):
            assert _committed_names(db) == ["a", "b"]
        # Writers are fenced at begin with a retryable, classified error.
        with pytest.raises(DatabaseReadOnlyError) as excinfo:
            db.begin()
        assert isinstance(excinfo.value, TransactionAbortedError)
        assert classify_abort(excinfo.value) == "degraded-mode"
        db.close()

    def test_abort_reasons_account_io_and_degraded(self, tmp_path):
        db = GraphDatabase.open(str(tmp_path / "db"), failpoints=FailpointRegistry())
        straggler = db.begin()  # in flight before the engine degrades
        straggler.create_node(labels=["Item"], properties={"name": "late"})
        _degrade(db)  # the commit that hit the fault: io-error
        with pytest.raises(DatabaseReadOnlyError):
            straggler.commit()  # fenced at commit: degraded-mode
        reasons = db.statistics()["engine"]["transactions"]["abort_reasons"]
        assert reasons["io-error"] == 1
        assert reasons["degraded-mode"] == 1
        db.close()

    def test_statistics_health_and_metrics_gauge(self, tmp_path):
        db = GraphDatabase.open(str(tmp_path / "db"), failpoints=FailpointRegistry())
        assert db.statistics()["health"]["status"] == "ok"
        gauge = db.metrics_snapshot()["instruments"]["repro_engine_degraded"]
        assert gauge["samples"][0]["value"] == 0
        _degrade(db)
        health = db.statistics()["health"]
        assert health["degraded"] and health["reason"] == "wal-append-failed"
        assert health["cause"] is not None
        gauge = db.metrics_snapshot()["instruments"]["repro_engine_degraded"]
        assert gauge["samples"][0]["value"] == 1
        assert re.search(
            r"^repro_engine_degraded 1(\.0)?$", db.prometheus_metrics(), re.M
        )
        db.close()

    def test_recovery_story_is_reopen(self, tmp_path):
        live = str(tmp_path / "db")
        db = GraphDatabase.open(live, failpoints=FailpointRegistry())
        _commit_items(db, ["a"])
        _degrade(db)
        db.close()
        recovered = GraphDatabase.open(live)
        assert recovered.health()["status"] == "ok"
        _commit_items(recovered, ["b"])  # writes work again
        assert _committed_names(recovered) == ["a", "b"]
        recovered.close()

    def test_group_commit_waiters_get_classified_failures(self, tmp_path):
        db = GraphDatabase.open(
            str(tmp_path / "db"),
            group_commit=True,
            failpoints={"wal.append": "always:error"},
        )
        with pytest.raises(WalError) as excinfo:
            _commit_items(db, ["a"])
        assert classify_abort(excinfo.value) == "io-error"
        assert db.health()["status"] == "degraded"
        db.close()


class TestHealthzEndpoint:
    def test_healthz_flips_from_200_to_503(self, tmp_path):
        db = GraphDatabase.open(str(tmp_path / "db"), failpoints=FailpointRegistry())
        exporter = db.serve_metrics()
        try:
            with urllib.request.urlopen(exporter.url + "/healthz") as response:
                assert response.status == 200
                assert json.load(response)["status"] == "ok"
            _degrade(db)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(exporter.url + "/healthz")
            assert excinfo.value.code == 503
            body = json.load(excinfo.value)
            assert body["status"] == "degraded"
            assert body["reason"] == "wal-append-failed"
        finally:
            exporter.stop()
            db.close()


# ---------------------------------------------------------------------------
# close() always releases file descriptors
# ---------------------------------------------------------------------------


class TestCloseReleasesFds:
    def test_failed_final_checkpoint_still_closes_and_reports(self, tmp_path):
        live = str(tmp_path / "db")
        db = GraphDatabase.open(live, failpoints={"store.flush": "always:error"})
        _commit_items(db, ["a"])
        with pytest.raises(InjectedFaultError):
            db.close()
        # The fds were released despite the error; a second close is a no-op.
        assert db.store.wal._fd is None
        db.close()
        # And the WAL survived for replay: reopening recovers the data.
        recovered = GraphDatabase.open(live)
        assert _committed_names(recovered) == ["a"]
        recovered.close()


# ---------------------------------------------------------------------------
# recovery idempotence
# ---------------------------------------------------------------------------


class TestRecoveryIdempotence:
    def test_crash_mid_replay_then_full_replay_recovers(self, tmp_path):
        live = str(tmp_path / "db")
        db = GraphDatabase.open(live)
        _commit_items(db, ["a", "b", "c", "d"])
        crash = _crash_image(live, str(tmp_path / "crash"))
        db.close()
        # First recovery attempt "crashes" after replaying two batches.
        with pytest.raises(SimulatedCrashError):
            GraphDatabase.open(crash, failpoints={"recovery.replay": "nth(3):crash"})
        # The partial replay never checkpointed, so the WAL is intact;
        # replaying again from scratch is idempotent and yields the full
        # committed prefix.
        recovered = GraphDatabase.open(crash)
        assert _committed_names(recovered) == ["a", "b", "c", "d"]
        assert check_store(recovered.store).consistent
        recovered.close()

    def test_replaying_twice_equals_replaying_once(self, tmp_path):
        live = str(tmp_path / "db")
        db = GraphDatabase.open(live)
        _commit_items(db, ["a", "b"])
        with db.transaction() as tx:  # a delete, so replay covers missing_ok
            node = tx.find_nodes(label="Item", key="name", value="a")[0]
            tx.delete_node(node)
        crash = _crash_image(live, str(tmp_path / "crash"))
        db.close()
        once = GraphDatabase.open(_crash_image(crash, str(tmp_path / "once")))
        names_once = _committed_names(once)
        once.close()
        # Replay the same image, crash at the recovery-completing checkpoint
        # (before anything is flushed), then replay again.
        twice_path = _crash_image(crash, str(tmp_path / "twice"))
        with pytest.raises(SimulatedCrashError):
            GraphDatabase.open(
                twice_path, failpoints={"store.checkpoint": "once:crash"}
            )
        twice = GraphDatabase.open(twice_path)
        assert _committed_names(twice) == names_once == ["b"]
        assert check_store(twice.store).consistent
        twice.close()


# ---------------------------------------------------------------------------
# commit-pipeline sites (SI engine)
# ---------------------------------------------------------------------------


class TestCommitPipelineSites:
    def test_stripe_acquire_fault_aborts_before_anything_durable(self, tmp_path):
        live = str(tmp_path / "db")
        db = GraphDatabase.open(live, failpoints=FailpointRegistry())
        _commit_items(db, ["a"])
        db.failpoints.arm("commit.stripe_acquire", "once:error")
        with pytest.raises(InjectedFaultError) as excinfo:
            _commit_items(db, ["b"])
        assert classify_abort(excinfo.value) == "io-error"
        # Failed before the durable append: engine healthy, nothing persisted.
        assert db.health()["status"] == "ok"
        _commit_items(db, ["c"])
        db.close()
        recovered = GraphDatabase.open(live)
        assert _committed_names(recovered) == ["a", "c"]
        recovered.close()

    def test_publish_fault_is_durable_but_unacked(self, tmp_path):
        live = str(tmp_path / "db")
        db = GraphDatabase.open(live, failpoints={"commit.publish": "nth(2):error"})
        _commit_items(db, ["a"])
        with pytest.raises(InjectedFaultError):
            _commit_items(db, ["b"])  # durable append succeeded, ack failed
        db.close()
        recovered = GraphDatabase.open(live)
        # The classic commit ambiguity: the client saw an error, but the
        # write carries a COMMIT frame in the log — recovery keeps it.
        assert _committed_names(recovered) == ["a", "b"]
        recovered.close()


# ---------------------------------------------------------------------------
# configuration surfaces
# ---------------------------------------------------------------------------


class TestConfiguration:
    def test_env_var_arms_failpoints(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAILPOINTS", "wal.append=times(1):error")
        db = GraphDatabase.open(str(tmp_path / "db"))
        assert db.failpoints is not None
        assert db.failpoints.armed_sites() == ["wal.append"]
        _commit_items(db, ["a"])
        assert db.store.wal.io_retries == 1
        db.close()

    def test_no_failpoints_means_none_everywhere(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_FAILPOINTS", raising=False)
        db = GraphDatabase.open(str(tmp_path / "db"))
        assert db.failpoints is None
        assert db.store.failpoints is None
        assert db.store.wal._failpoints is None
        assert "failpoints" not in db.statistics()
        db.close()

    def test_firings_are_counted_per_site_in_metrics(self, tmp_path):
        db = GraphDatabase.open(
            str(tmp_path / "db"), failpoints={"wal.append": "times(2):error"}
        )
        _commit_items(db, ["a"])
        stats = db.statistics()["failpoints"]
        assert stats["armed"]["wal.append"]["fires"] == 2
        counter = db.metrics_snapshot()["instruments"]["repro_faults_injected_total"]
        sample = counter["samples"][0]
        assert sample["labels"] == {"site": "wal.append"} and sample["value"] == 2
        db.close()
