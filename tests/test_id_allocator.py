"""Unit tests for the id allocator."""

import pytest

from repro.graph.id_allocator import IdAllocator


class TestIdAllocator:
    def test_allocates_densely_from_zero(self):
        allocator = IdAllocator()
        assert [allocator.allocate() for _ in range(3)] == [0, 1, 2]
        assert allocator.high_water_mark == 3

    def test_custom_first_id(self):
        allocator = IdAllocator(first_id=10)
        assert allocator.allocate() == 10

    def test_negative_first_id_rejected(self):
        with pytest.raises(ValueError):
            IdAllocator(first_id=-1)

    def test_freed_ids_are_reused(self):
        allocator = IdAllocator()
        ids = [allocator.allocate() for _ in range(3)]
        allocator.free(ids[1])
        assert allocator.allocate() == ids[1]

    def test_double_free_ignored(self):
        allocator = IdAllocator()
        allocator.allocate()
        allocator.free(0)
        allocator.free(0)
        assert allocator.allocate() == 0
        assert allocator.allocate() == 1

    def test_free_of_unallocated_id_ignored(self):
        allocator = IdAllocator()
        allocator.free(99)
        assert allocator.allocate() == 0

    def test_reuse_disabled(self):
        allocator = IdAllocator(reuse=False)
        first = allocator.allocate()
        allocator.free(first)
        assert allocator.allocate() == first + 1
        assert allocator.free_count == 0

    def test_mark_used_advances_high_water(self):
        allocator = IdAllocator()
        allocator.mark_used(5)
        assert allocator.high_water_mark == 6
        assert allocator.allocate() == 6

    def test_mark_used_removes_from_free_list(self):
        allocator = IdAllocator()
        for _ in range(3):
            allocator.allocate()
        allocator.free(1)
        allocator.mark_used(1)
        assert allocator.allocate() == 3

    def test_rebuild_creates_free_list_from_gaps(self):
        allocator = IdAllocator()
        allocator.rebuild([0, 2, 5])
        assert allocator.high_water_mark == 6
        reused = {allocator.allocate() for _ in range(3)}
        assert reused == {1, 3, 4}
        assert allocator.allocate() == 6

    def test_rebuild_empty(self):
        allocator = IdAllocator()
        allocator.rebuild([])
        assert allocator.allocate() == 0

    def test_rebuild_without_reuse_ignores_gaps(self):
        allocator = IdAllocator(reuse=False)
        allocator.rebuild([0, 5])
        assert allocator.allocate() == 6

    def test_allocate_many(self):
        allocator = IdAllocator()
        assert allocator.allocate_many(4) == [0, 1, 2, 3]

    def test_in_use_estimate(self):
        allocator = IdAllocator()
        for _ in range(5):
            allocator.allocate()
        allocator.free(0)
        allocator.free(1)
        assert allocator.in_use_estimate() == 3
