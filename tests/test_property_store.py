"""Unit tests for property value encoding and property chains."""

import pytest

from repro.errors import InvalidPropertyValueError
from repro.graph.dynamic_store import DynamicStore
from repro.graph.paging import InMemoryBackend, PageCache, PagedFile
from repro.graph.property_store import PropertyStore, decode_array, encode_array
from repro.graph.records import NULL_REF


def make_property_store():
    cache = PageCache(capacity_pages=256, page_size=256)
    values = DynamicStore(PagedFile(InMemoryBackend(), cache), "values")
    return PropertyStore(PagedFile(InMemoryBackend(), cache), values)


class TestArrayCodec:
    @pytest.mark.parametrize(
        "values",
        [
            [1, 2, 3],
            [True, False, True],
            [1.5, -2.25],
            ["alpha", "beta", ""],
            [],
        ],
    )
    def test_roundtrip(self, values):
        assert decode_array(encode_array(values)) == values

    def test_large_int_array(self):
        values = list(range(-500, 500))
        assert decode_array(encode_array(values)) == values

    def test_unicode_strings(self):
        values = ["müller", "日本語", "ñandú"]
        assert decode_array(encode_array(values)) == values


class TestPropertyStore:
    def test_empty_chain_is_null(self):
        store = make_property_store()
        assert store.write_chain({}) == NULL_REF
        assert store.read_chain(NULL_REF) == {}

    @pytest.mark.parametrize(
        "value",
        [True, False, 0, -17, 2 ** 40, 3.14159, "short", "a longer string value " * 5,
         [1, 2, 3], ["x", "y"], [2.5, 3.5]],
    )
    def test_single_value_roundtrip(self, value):
        store = make_property_store()
        ref = store.write_chain({0: value})
        restored = store.read_chain(ref)
        assert restored == {0: value}

    def test_multi_key_chain(self):
        store = make_property_store()
        properties = {0: "alice", 1: 30, 2: True, 3: [1, 2], 4: 1.75}
        ref = store.write_chain(properties)
        assert store.read_chain(ref) == properties

    def test_short_string_boundary(self):
        store = make_property_store()
        seven_bytes = "abcdefg"
        eight_bytes = "abcdefgh"
        ref = store.write_chain({0: seven_bytes, 1: eight_bytes})
        restored = store.read_chain(ref)
        assert restored[0] == seven_bytes
        assert restored[1] == eight_bytes

    def test_free_chain_releases_records_and_values(self):
        store = make_property_store()
        ref = store.write_chain({0: "x" * 100, 1: list(range(50))})
        assert store.records_in_use() == 2
        freed = store.free_chain(ref)
        assert freed == 2
        assert store.records_in_use() == 0

    def test_replace_chain(self):
        store = make_property_store()
        ref = store.write_chain({0: 1, 1: 2})
        new_ref = store.replace_chain(ref, {2: "three"})
        assert store.read_chain(new_ref) == {2: "three"}

    def test_unencodable_value_rejected(self):
        store = make_property_store()
        with pytest.raises(InvalidPropertyValueError):
            store.write_chain({0: {"nested": "dict"}})
