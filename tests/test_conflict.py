"""Unit tests for the write rule (conflict detection policies)."""

import pytest

from repro.core.conflict import ConflictDetector, ConflictPolicy
from repro.errors import WriteWriteConflictError
from repro.graph.entity import EntityKey
from repro.locking.lock_manager import LockManager

KEY = EntityKey.node(1)


class TestFirstUpdaterWins:
    def make(self):
        return ConflictDetector(LockManager(), ConflictPolicy.FIRST_UPDATER_WINS)

    def test_first_updater_gets_the_lock(self):
        detector = self.make()
        detector.on_write(txn_id=1, start_ts=5, key=KEY, read_newest_committed_ts=lambda: 3)
        # Same transaction writing again is fine.
        detector.on_write(txn_id=1, start_ts=5, key=KEY, read_newest_committed_ts=lambda: 3)

    def test_second_updater_aborts_immediately(self):
        detector = self.make()
        detector.on_write(txn_id=1, start_ts=5, key=KEY, read_newest_committed_ts=lambda: 3)
        with pytest.raises(WriteWriteConflictError):
            detector.on_write(txn_id=2, start_ts=5, key=KEY, read_newest_committed_ts=lambda: 3)
        assert detector.stats.write_time_conflicts == 1

    def test_concurrent_committed_update_detected(self):
        detector = self.make()
        # Newest committed version is newer than this transaction's snapshot.
        with pytest.raises(WriteWriteConflictError):
            detector.on_write(txn_id=1, start_ts=5, key=KEY, read_newest_committed_ts=lambda: 8)

    def test_lock_released_after_abort_allows_new_updater(self):
        detector = self.make()
        detector.on_write(txn_id=1, start_ts=5, key=KEY, read_newest_committed_ts=lambda: None)
        detector.release_locks(1)
        detector.on_write(txn_id=2, start_ts=5, key=KEY, read_newest_committed_ts=lambda: None)

    def test_commit_validation_is_noop(self):
        detector = self.make()
        detector.validate_at_commit(txn_id=1, start_ts=5, key=KEY, newest_committed_ts=50)
        assert detector.stats.commit_time_conflicts == 0


class TestFirstCommitterWins:
    def make(self):
        return ConflictDetector(LockManager(), ConflictPolicy.FIRST_COMMITTER_WINS)

    def test_write_time_never_conflicts(self):
        detector = self.make()
        detector.on_write(txn_id=1, start_ts=5, key=KEY, read_newest_committed_ts=lambda: 50)
        detector.on_write(txn_id=2, start_ts=5, key=KEY, read_newest_committed_ts=lambda: 50)
        assert detector.stats.write_time_conflicts == 0

    def test_commit_validation_detects_concurrent_commit(self):
        detector = self.make()
        with pytest.raises(WriteWriteConflictError):
            detector.validate_at_commit(txn_id=1, start_ts=5, key=KEY, newest_committed_ts=8)
        assert detector.stats.commit_time_conflicts == 1

    def test_commit_validation_passes_for_older_versions(self):
        detector = self.make()
        detector.validate_at_commit(txn_id=1, start_ts=5, key=KEY, newest_committed_ts=5)
        detector.validate_at_commit(txn_id=1, start_ts=5, key=KEY, newest_committed_ts=None)
        assert detector.stats.total() == 0
