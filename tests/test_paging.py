"""Unit tests for backends, the page cache and paged files."""

import os

import pytest

from repro.errors import StoreClosedError
from repro.graph.paging import (
    FileBackend,
    InMemoryBackend,
    PageCache,
    PagedFile,
    open_backend,
)


class TestInMemoryBackend:
    def test_read_past_end_is_zero_padded(self):
        backend = InMemoryBackend()
        assert backend.read(0, 4) == b"\x00" * 4

    def test_write_and_read_back(self):
        backend = InMemoryBackend()
        backend.write(10, b"abc")
        assert backend.read(10, 3) == b"abc"
        assert backend.size() == 13

    def test_truncate(self):
        backend = InMemoryBackend()
        backend.write(0, b"abcdef")
        backend.truncate(3)
        assert backend.size() == 3
        backend.truncate(5)
        assert backend.read(0, 5) == b"abc\x00\x00"

    def test_closed_backend_raises(self):
        backend = InMemoryBackend()
        backend.close()
        with pytest.raises(StoreClosedError):
            backend.read(0, 1)


class TestFileBackend:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "data.bin")
        backend = FileBackend(path)
        backend.write(100, b"hello")
        assert backend.read(100, 5) == b"hello"
        backend.sync()
        backend.close()
        assert os.path.exists(path)

    def test_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "nested" / "deeper" / "data.bin")
        backend = FileBackend(path)
        backend.write(0, b"x")
        backend.close()
        assert os.path.exists(path)

    def test_read_after_close_raises(self, tmp_path):
        backend = FileBackend(str(tmp_path / "data.bin"))
        backend.close()
        with pytest.raises(StoreClosedError):
            backend.read(0, 1)

    def test_open_backend_dispatch(self, tmp_path):
        assert isinstance(open_backend(None), InMemoryBackend)
        assert isinstance(open_backend(str(tmp_path / "f.bin")), FileBackend)


class TestPageCache:
    def test_hits_and_misses_counted(self):
        cache = PageCache(capacity_pages=4, page_size=64)
        backend = InMemoryBackend()
        file_id = cache.register_backend(backend)
        cache.read_page(file_id, 0)
        cache.read_page(file_id, 0)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_eviction_writes_back_dirty_pages(self):
        cache = PageCache(capacity_pages=2, page_size=16)
        backend = InMemoryBackend()
        file_id = cache.register_backend(backend)
        cache.write_into_page(file_id, 0, 0, b"A" * 16)
        cache.write_into_page(file_id, 1, 0, b"B" * 16)
        cache.write_into_page(file_id, 2, 0, b"C" * 16)
        assert cache.stats.evictions >= 1
        assert backend.read(0, 16) == b"A" * 16

    def test_flush_persists_everything(self):
        cache = PageCache(capacity_pages=8, page_size=16)
        backend = InMemoryBackend()
        file_id = cache.register_backend(backend)
        cache.write_into_page(file_id, 3, 4, b"xyz")
        cache.flush()
        assert backend.read(3 * 16 + 4, 3) == b"xyz"

    def test_write_spanning_page_rejected(self):
        cache = PageCache(capacity_pages=2, page_size=16)
        backend = InMemoryBackend()
        file_id = cache.register_backend(backend)
        with pytest.raises(ValueError):
            cache.write_into_page(file_id, 0, 10, b"0123456789")

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PageCache(capacity_pages=0)

    def test_unregister_flushes_and_drops(self):
        cache = PageCache(capacity_pages=4, page_size=16)
        backend = InMemoryBackend()
        file_id = cache.register_backend(backend)
        cache.write_into_page(file_id, 0, 0, b"Z" * 16)
        cache.unregister_backend(file_id)
        assert backend.read(0, 16) == b"Z" * 16
        assert cache.resident_pages() == 0


class TestPagedFile:
    def test_cross_page_write_and_read(self):
        cache = PageCache(capacity_pages=4, page_size=16)
        paged = PagedFile(InMemoryBackend(), cache)
        data = bytes(range(40))
        paged.write(10, data)
        assert paged.read(10, 40) == data
        assert paged.size() == 50

    def test_read_past_end_zero_padded(self):
        cache = PageCache(capacity_pages=4, page_size=16)
        paged = PagedFile(InMemoryBackend(), cache)
        paged.write(0, b"ab")
        assert paged.read(0, 4) == b"ab\x00\x00"

    def test_empty_read_and_write(self):
        cache = PageCache(capacity_pages=4, page_size=16)
        paged = PagedFile(InMemoryBackend(), cache)
        paged.write(5, b"")
        assert paged.read(5, 0) == b""

    def test_flush_reaches_backend(self, tmp_path):
        cache = PageCache(capacity_pages=4, page_size=64)
        backend = FileBackend(str(tmp_path / "file.bin"))
        paged = PagedFile(backend, cache)
        paged.write(0, b"persist me")
        paged.flush()
        assert backend.read(0, 10) == b"persist me"
        paged.close()

    def test_use_after_close_raises(self):
        cache = PageCache(capacity_pages=4, page_size=16)
        paged = PagedFile(InMemoryBackend(), cache)
        paged.close()
        with pytest.raises(StoreClosedError):
            paged.read(0, 1)
        paged.close()  # idempotent
