"""Unit tests for the lock manager and deadlock detection."""

import threading
import time

import pytest

from repro.errors import DeadlockError, LockTimeoutError
from repro.graph.entity import EntityKey
from repro.locking.deadlock import WaitForGraph
from repro.locking.lock_manager import LockManager, LockMode


NODE_A = EntityKey.node(1)
NODE_B = EntityKey.node(2)


class TestLockModes:
    def test_shared_compatible_with_shared(self):
        assert LockMode.SHARED.compatible_with(LockMode.SHARED)

    def test_exclusive_conflicts_with_everything(self):
        assert not LockMode.EXCLUSIVE.compatible_with(LockMode.SHARED)
        assert not LockMode.SHARED.compatible_with(LockMode.EXCLUSIVE)
        assert not LockMode.EXCLUSIVE.compatible_with(LockMode.EXCLUSIVE)


class TestWaitForGraph:
    def test_cycle_detection(self):
        graph = WaitForGraph()
        graph.add_waits(1, [2])
        graph.add_waits(2, [3])
        assert graph.creates_cycle(3, [1])
        assert not graph.creates_cycle(3, [4])

    def test_self_edges_ignored(self):
        graph = WaitForGraph()
        graph.add_waits(1, [1])
        assert graph.edge_count() == 0
        assert not graph.creates_cycle(1, [1])

    def test_remove_transaction_clears_both_sides(self):
        graph = WaitForGraph()
        graph.add_waits(1, [2])
        graph.add_waits(3, [1])
        graph.remove_transaction(1)
        assert graph.edge_count() == 0

    def test_waiting_transactions(self):
        graph = WaitForGraph()
        graph.add_waits(1, [2])
        assert graph.waiting_transactions() == {1}
        graph.remove_waiter(1)
        assert graph.waiting_transactions() == set()


class TestLockManager:
    def test_shared_locks_coexist(self):
        locks = LockManager()
        locks.acquire(1, NODE_A, LockMode.SHARED)
        locks.acquire(2, NODE_A, LockMode.SHARED)
        assert set(locks.holders_of(NODE_A)) == {1, 2}

    def test_exclusive_blocks_shared(self):
        locks = LockManager(default_timeout=0.05)
        locks.acquire(1, NODE_A, LockMode.EXCLUSIVE)
        with pytest.raises(LockTimeoutError):
            locks.acquire(2, NODE_A, LockMode.SHARED, timeout=0.05)

    def test_same_transaction_reentrant(self):
        locks = LockManager()
        locks.acquire(1, NODE_A, LockMode.SHARED)
        locks.acquire(1, NODE_A, LockMode.EXCLUSIVE)
        assert locks.holders_of(NODE_A)[1] is LockMode.EXCLUSIVE

    def test_try_acquire(self):
        locks = LockManager()
        assert locks.try_acquire(1, NODE_A, LockMode.EXCLUSIVE)
        assert not locks.try_acquire(2, NODE_A, LockMode.EXCLUSIVE)
        assert locks.stats.try_failures == 1
        locks.release(1, NODE_A)
        assert locks.try_acquire(2, NODE_A, LockMode.EXCLUSIVE)

    def test_release_wakes_waiter(self):
        locks = LockManager()
        locks.acquire(1, NODE_A, LockMode.EXCLUSIVE)
        acquired = threading.Event()

        def waiter():
            locks.acquire(2, NODE_A, LockMode.EXCLUSIVE, timeout=5.0)
            acquired.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not acquired.is_set()
        locks.release_all(1)
        assert acquired.wait(timeout=2.0)
        thread.join(timeout=2.0)

    def test_release_all(self):
        locks = LockManager()
        locks.acquire(1, NODE_A, LockMode.EXCLUSIVE)
        locks.acquire(1, NODE_B, LockMode.SHARED)
        assert len(locks.locks_held_by(1)) == 2
        locks.release_all(1)
        assert locks.locks_held_by(1) == []
        assert not locks.is_locked(NODE_A)
        assert locks.active_lock_count() == 0

    def test_release_unheld_lock_is_noop(self):
        locks = LockManager()
        locks.release(1, NODE_A)
        locks.release_all(99)

    def test_deadlock_detected(self):
        locks = LockManager(default_timeout=5.0)
        locks.acquire(1, NODE_A, LockMode.EXCLUSIVE)
        locks.acquire(2, NODE_B, LockMode.EXCLUSIVE)
        errors = []

        def t1_waits_for_b():
            try:
                locks.acquire(1, NODE_B, LockMode.EXCLUSIVE, timeout=5.0)
            except DeadlockError as exc:
                errors.append(exc)
            except LockTimeoutError as exc:  # pragma: no cover - defensive
                errors.append(exc)

        thread = threading.Thread(target=t1_waits_for_b, daemon=True)
        thread.start()
        time.sleep(0.1)
        # Transaction 2 now requests A, closing the cycle: it must be refused.
        with pytest.raises((DeadlockError, LockTimeoutError)):
            locks.acquire(2, NODE_A, LockMode.EXCLUSIVE, timeout=5.0)
        locks.release_all(2)
        thread.join(timeout=5.0)
        locks.release_all(1)
        assert locks.stats.deadlocks >= 1

    def test_stats_dictionary(self):
        locks = LockManager()
        locks.acquire(1, NODE_A, LockMode.SHARED)
        stats = locks.stats.as_dict()
        assert stats["acquisitions"] == 1
        assert stats["immediate_grants"] == 1
