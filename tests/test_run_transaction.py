"""Tests for the retrying transaction helper and the workload retry routing."""

import random

import pytest

from repro import (
    GraphDatabase,
    IsolationLevel,
    SerializationError,
    TransactionAbortedError,
    WriteWriteConflictError,
)
from repro.api.database import jittered_backoff
from repro.workload.anomaly import WriteSkewProbe
from repro.workload.runner import ConcurrentWorkloadRunner, WorkerOutcome, transactional


@pytest.fixture()
def db():
    database = GraphDatabase.in_memory(isolation=IsolationLevel.SNAPSHOT)
    yield database
    database.close()


def _make_counter(db):
    with db.transaction() as tx:
        node = tx.create_node(labels=["Counter"], properties={"value": 0})
    return node.id


class TestRunTransaction:
    def test_commits_and_returns_value(self, db):
        node_id = _make_counter(db)

        def bump(tx):
            value = tx.get_node(node_id).get("value") + 1
            tx.set_node_property(node_id, "value", value)
            return value

        assert db.run_transaction(bump) == 1
        with db.transaction(read_only=True) as tx:
            assert tx.get_node(node_id).get("value") == 1

    def test_retries_write_conflict_then_succeeds(self, db):
        node_id = _make_counter(db)
        attempts = []

        def conflicted_once(tx):
            attempts.append(tx.id)
            current = tx.get_node(node_id).get("value")
            if len(attempts) == 1:
                # A concurrent transaction wins the update race on the first
                # attempt; our own write must then abort (first-updater-wins
                # sees the newer committed version).
                with db.transaction() as other:
                    other.set_node_property(node_id, "value", 100)
            tx.set_node_property(node_id, "value", current + 1)
            return tx.get_node(node_id).get("value")

        retried = []
        result = db.run_transaction(
            conflicted_once,
            retries=3,
            rng=random.Random(7),
            on_retry=lambda attempt, exc: retried.append(type(exc)),
        )
        assert result == 101  # second attempt saw the interfering write
        assert len(attempts) == 2
        assert retried and issubclass(retried[0], WriteWriteConflictError)

    def test_exhausted_retries_reraise(self, db):
        node_id = _make_counter(db)

        def always_conflicts(tx):
            tx.get_node(node_id)
            with db.transaction() as other:
                value = other.get_node(node_id).get("value")
                other.set_node_property(node_id, "value", value + 1)
            tx.set_node_property(node_id, "value", -1)

        with pytest.raises(TransactionAbortedError):
            db.run_transaction(always_conflicts, retries=2, rng=random.Random(7))

    def test_non_abort_errors_propagate_without_retry(self, db):
        attempts = []

        def broken(tx):
            attempts.append(1)
            raise RuntimeError("application bug")

        with pytest.raises(RuntimeError):
            db.run_transaction(broken, retries=5)
        assert len(attempts) == 1

    def test_function_may_close_transaction_itself(self, db):
        node_id = _make_counter(db)

        def reads_and_rolls_back(tx):
            value = tx.get_node(node_id).get("value")
            tx.rollback()
            return value

        assert db.run_transaction(reads_and_rolls_back) == 0

    def test_negative_retries_rejected(self, db):
        with pytest.raises(ValueError):
            db.run_transaction(lambda tx: None, retries=-1)

    def test_retries_serialization_abort_under_ssi(self):
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        with db.transaction() as tx:
            a = tx.create_node(properties={"balance": 100})
            b = tx.create_node(properties={"balance": 100})
        probe = WriteSkewProbe(a.id, b.id, withdraw_amount=150)
        outer = db.begin()
        probe.withdraw(outer, a.id)
        retried = []

        def withdraw_b(tx):
            did = probe.withdraw(tx, b.id)
            if not retried:
                # First attempt overlaps ``outer``; committing after it forms
                # the dangerous structure and must be retried.
                outer.commit()
            return did

        assert db.run_transaction(
            withdraw_b,
            retries=3,
            rng=random.Random(7),
            on_retry=lambda attempt, exc: retried.append(type(exc)),
        ) is False  # the retry re-read and refused the second withdrawal
        assert retried and issubclass(retried[0], SerializationError)
        with db.transaction(read_only=True) as tx:
            assert not probe.constraint_violated(tx)
        db.close()


class TestJitteredBackoff:
    def test_backoff_grows_and_caps(self):
        rng = random.Random(1)
        delays = [
            jittered_backoff(attempt, base_seconds=0.01, max_seconds=0.05, rng=rng)
            for attempt in range(8)
        ]
        assert all(0 < delay <= 0.05 for delay in delays)
        # The cap binds from attempt 3 on (0.01 * 2**3 = 0.08 > 0.05).
        assert max(delays) <= 0.05

    def test_jitter_varies(self):
        rng = random.Random(2)
        draws = {jittered_backoff(0, rng=rng) for _ in range(16)}
        assert len(draws) > 1


class TestRunnerRetryRouting:
    def test_runner_retries_conflicts(self, db):
        node_id = _make_counter(db)

        def contended_increment(database, rng, worker_id, iteration):
            with database.transaction() as tx:
                value = tx.get_node(node_id).get("value")
                tx.set_node_property(node_id, "value", value + 1)
            return WorkerOutcome()

        runner = ConcurrentWorkloadRunner(
            db, workers=4, operations_per_worker=25, seed=11, retries=20
        )
        result = runner.run(contended_increment)
        assert result.committed == 100
        assert result.aborted == 0
        with db.transaction(read_only=True) as tx:
            assert tx.get_node(node_id).get("value") == 100

    def test_transactional_adapter_reports_retries(self):
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        node_id = _make_counter(db)

        def body(tx, rng, worker_id, iteration):
            value = tx.get_node(node_id).get("value")
            tx.set_node_property(node_id, "value", value + 1)
            return WorkerOutcome()

        runner = ConcurrentWorkloadRunner(
            db, workers=4, operations_per_worker=25, seed=13
        )
        result = runner.run(transactional(body, retries=30))
        assert result.committed == 100
        with db.transaction(read_only=True) as tx:
            assert tx.get_node(node_id).get("value") == 100
        db.close()
