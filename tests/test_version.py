"""Unit tests for versions, version chains, visibility and tombstones."""

import pytest

from repro.core.snapshot import Snapshot
from repro.core.tombstone import chain_fully_deleted, is_tombstone, make_tombstone
from repro.core.version import Version, VersionChain
from repro.core.visibility import (
    payload_visible_from_store,
    resolve_chain,
    resolve_payload,
    version_visible,
)
from repro.graph.entity import EntityKey, NodeData

KEY = EntityKey.node(1)


def version(commit_ts, payload="payload"):
    data = None if payload is None else NodeData(1, properties={"value": payload})
    return Version(KEY, data, commit_ts)


class TestVersion:
    def test_tombstone_flag(self):
        assert version(1, None).is_tombstone
        assert not version(1, "x").is_tombstone

    def test_make_tombstone(self):
        tomb = make_tombstone(KEY, 9)
        assert tomb.is_tombstone and tomb.commit_ts == 9
        assert is_tombstone(tomb)
        assert not is_tombstone(None)
        assert not is_tombstone(version(1, "x"))


class TestVersionChain:
    def test_add_and_newest(self):
        chain = VersionChain(KEY)
        assert chain.newest() is None
        assert chain.oldest() is None
        v1 = version(1)
        assert chain.add_committed(v1) is None
        v2 = version(2)
        assert chain.add_committed(v2) is v1
        assert chain.newest() is v2
        assert chain.oldest() is v1
        assert len(chain) == 2

    def test_out_of_order_insert_rejected(self):
        chain = VersionChain(KEY)
        chain.add_committed(version(5))
        with pytest.raises(ValueError):
            chain.add_committed(version(3))

    def test_visibility_read_rule(self):
        chain = VersionChain(KEY)
        for ts in (2, 5, 9):
            chain.add_committed(version(ts, f"v{ts}"))
        assert chain.visible_to(1) is None
        assert chain.visible_to(2).commit_ts == 2
        assert chain.visible_to(4).commit_ts == 2
        assert chain.visible_to(5).commit_ts == 5
        assert chain.visible_to(100).commit_ts == 9

    def test_remove(self):
        chain = VersionChain(KEY)
        v1, v2 = version(1), version(2)
        chain.add_committed(v1)
        chain.add_committed(v2)
        assert chain.remove(v1)
        assert not chain.remove(v1)
        assert len(chain) == 1
        assert chain.visible_to(1) is None

    def test_is_empty_and_footprint(self):
        chain = VersionChain(KEY)
        assert chain.is_empty()
        chain.add_committed(version(1))
        assert not chain.is_empty()
        assert chain.memory_footprint() == 1
        assert chain.version_count() == 1

    def test_versions_returns_copy(self):
        chain = VersionChain(KEY)
        chain.add_committed(version(1))
        snapshot = chain.versions()
        snapshot.clear()
        assert len(chain) == 1


class TestVisibilityHelpers:
    def test_version_visible(self):
        assert version_visible(version(3), 5)
        assert version_visible(version(5), 5)
        assert not version_visible(version(6), 5)

    def test_resolve_chain_and_payload(self):
        chain = VersionChain(KEY)
        chain.add_committed(version(2, "old"))
        chain.add_committed(version(4, "new"))
        assert resolve_chain(None, 10) is None
        assert resolve_chain(chain, 3).commit_ts == 2
        assert resolve_payload(chain, 3).properties["value"] == "old"
        assert resolve_payload(chain, 1) is None

    def test_resolve_payload_tombstone_is_none(self):
        chain = VersionChain(KEY)
        chain.add_committed(version(2, "data"))
        chain.add_committed(version(4, None))
        assert resolve_payload(chain, 5) is None
        assert resolve_payload(chain, 3) is not None

    def test_payload_visible_from_store(self):
        assert payload_visible_from_store(3, 4)
        assert payload_visible_from_store(4, 4)
        assert not payload_visible_from_store(5, 4)


class TestTombstoneRetention:
    def test_chain_fully_deleted(self):
        chain = VersionChain(KEY)
        chain.add_committed(version(2, "data"))
        chain.add_committed(make_tombstone(KEY, 5))
        assert not chain_fully_deleted(chain, watermark=4)
        assert chain_fully_deleted(chain, watermark=5)
        assert chain_fully_deleted(chain, watermark=9)

    def test_live_chain_never_fully_deleted(self):
        chain = VersionChain(KEY)
        chain.add_committed(version(2, "data"))
        assert not chain_fully_deleted(chain, watermark=100)


class TestSnapshot:
    def test_includes_and_concurrent(self):
        snapshot = Snapshot(txn_id=1, start_ts=10)
        assert snapshot.includes(10)
        assert snapshot.includes(3)
        assert not snapshot.includes(11)
        assert snapshot.is_concurrent_with(11)
        assert not snapshot.is_concurrent_with(10)
