"""Unit tests for the threaded-list garbage collector and the vacuum baseline."""

from repro.core.gc import GarbageCollector, ThreadedVersionList
from repro.core.si_manager import SnapshotIsolationEngine
from repro.core.timestamps import TimestampOracle
from repro.core.vacuum import VacuumCollector
from repro.core.version import Version
from repro.core.version_store import VersionStore
from repro.core.versioned_index import VersionedIndexSet
from repro.graph.entity import EntityKey, NodeData
from repro.graph.store_manager import StoreManager

KEY = EntityKey.node(1)


def version(commit_ts, payload="x", key=KEY):
    data = None if payload is None else NodeData(key.entity_id, properties={"v": payload})
    return Version(key, data, commit_ts)


class TestThreadedVersionList:
    def test_append_and_len(self):
        gc_list = ThreadedVersionList()
        v1, v2 = version(1), version(2)
        gc_list.append(v1, reclaim_ts=3)
        gc_list.append(v2, reclaim_ts=5)
        assert len(gc_list) == 2
        assert gc_list.peek_oldest() is v1

    def test_double_append_ignored(self):
        gc_list = ThreadedVersionList()
        v1 = version(1)
        gc_list.append(v1, 3)
        gc_list.append(v1, 9)
        assert len(gc_list) == 1
        assert v1.reclaim_ts == 3

    def test_pop_reclaimable_stops_at_watermark(self):
        gc_list = ThreadedVersionList()
        versions = [version(ts) for ts in (1, 2, 3)]
        for v, reclaim in zip(versions, (2, 4, 6)):
            gc_list.append(v, reclaim)
        popped = gc_list.pop_reclaimable(watermark=4)
        assert popped == versions[:2]
        assert len(gc_list) == 1
        assert not versions[0].in_gc_list

    def test_remove_middle(self):
        gc_list = ThreadedVersionList()
        versions = [version(ts) for ts in (1, 2, 3)]
        for v in versions:
            gc_list.append(v, v.commit_ts)
        gc_list.remove(versions[1])
        assert len(gc_list) == 2
        assert gc_list.pop_reclaimable(10) == [versions[0], versions[2]]

    def test_remove_untracked_is_noop(self):
        gc_list = ThreadedVersionList()
        gc_list.remove(version(1))
        assert len(gc_list) == 0

    def test_out_of_order_append_inserts_in_sorted_position(self):
        # Sharded commits can finish installing out of timestamp order; a
        # newer version appended first must not block older reclaimable
        # versions queued behind it.
        gc_list = ThreadedVersionList()
        newer, older, newest = version(6), version(5), version(7)
        gc_list.append(newer, reclaim_ts=6)
        gc_list.append(older, reclaim_ts=5)
        gc_list.append(newest, reclaim_ts=7)
        assert gc_list.peek_oldest() is older
        assert gc_list.pop_reclaimable(watermark=5) == [older]
        assert gc_list.pop_reclaimable(watermark=10) == [newer, newest]
        assert len(gc_list) == 0


class TestGarbageCollectorUnit:
    def make(self):
        store = VersionStore()
        oracle = TimestampOracle()
        indexes = VersionedIndexSet()
        collector = GarbageCollector(store, oracle, indexes)
        return store, oracle, indexes, collector

    def test_superseded_version_collected_when_watermark_passes(self):
        store, oracle, _indexes, collector = self.make()
        chain = store.ensure_chain(KEY)
        old = version(1, "old")
        new = version(3, "new")
        chain.add_committed(old)
        chain.add_committed(new)
        collector.version_superseded(old, superseding_commit_ts=3)

        # An active transaction still reading at ts 2 pins the old version.
        reader_txn, _ = oracle.begin_transaction()  # start_ts == 0
        stats = collector.collect()
        assert stats.versions_collected == 0
        assert len(chain) == 2

        oracle.retire_transaction(reader_txn)
        oracle.advance_to(3)
        stats = collector.collect()
        assert stats.versions_collected == 1
        assert len(chain) == 1
        assert chain.newest() is new

    def test_tombstone_purges_whole_entity(self):
        store, oracle, indexes, collector = self.make()
        node = NodeData(KEY.entity_id, {"Person"})
        indexes.apply_node_change(None, node, commit_ts=1)
        chain = store.ensure_chain(KEY)
        base = Version(KEY, node, 1)
        tomb = Version(KEY, None, 4)
        chain.add_committed(base)
        chain.add_committed(tomb)
        collector.version_superseded(base, superseding_commit_ts=4)
        collector.tombstone_installed(tomb)

        oracle.advance_to(4)
        stats = collector.collect()
        assert stats.versions_collected == 2
        assert stats.entities_purged == 1
        assert store.get_chain(KEY) is None
        assert indexes.node_labels.visible("Person", 10) == set()

    def test_collect_accumulates_totals(self):
        _store, oracle, _indexes, collector = self.make()
        oracle.advance_to(1)
        collector.collect()
        collector.collect()
        assert collector.collections_run == 2
        assert collector.total_stats.watermark == 1


class TestGcThroughEngine:
    def test_long_reader_pins_versions_then_gc_reclaims(self):
        store = StoreManager(None, reuse_entity_ids=False)
        engine = SnapshotIsolationEngine(store)
        setup = engine.begin()
        node_id = engine.allocate_node_id()
        setup.put_node(NodeData(node_id, {"Item"}, {"value": 0}), create=True)
        setup.commit()

        long_reader = engine.begin(read_only=True)
        for value in range(1, 6):
            writer = engine.begin()
            current = writer.read_node(node_id)
            writer.put_node(current.with_property("value", value))
            writer.commit()

        # The long reader pins its snapshot: nothing can be reclaimed yet.
        assert engine.run_gc().versions_collected == 0
        assert engine.versions.get_chain(EntityKey.node(node_id)).version_count() == 6
        assert long_reader.read_node(node_id).properties["value"] == 0

        long_reader.rollback()
        stats = engine.run_gc()
        assert stats.versions_collected == 5
        assert engine.versions.get_chain(EntityKey.node(node_id)).version_count() == 1
        store.close()


class TestVacuumCollector:
    def test_vacuum_scans_everything_and_collects_the_same_garbage(self):
        store = StoreManager(None, reuse_entity_ids=False)
        engine = SnapshotIsolationEngine(store)
        setup = engine.begin()
        node_ids = []
        for index in range(10):
            node_id = engine.allocate_node_id()
            node_ids.append(node_id)
            setup.put_node(NodeData(node_id, {"Item"}, {"value": 0}), create=True)
        setup.commit()
        for value in range(1, 4):
            writer = engine.begin()
            for node_id in node_ids:
                current = writer.read_node(node_id)
                writer.put_node(current.with_property("value", value))
            writer.commit()

        vacuum = engine.create_vacuum_collector()
        stats = vacuum.collect()
        # Full scan: every chain and every persistent record was examined.
        assert stats.chains_scanned >= 10
        assert stats.store_records_scanned >= 10
        assert stats.versions_collected == 30
        assert engine.versions.total_versions() == 10
        assert vacuum.collections_run == 1
        store.close()

    def test_vacuum_purges_deleted_entities(self):
        store = StoreManager(None, reuse_entity_ids=False)
        engine = SnapshotIsolationEngine(store)
        txn = engine.begin()
        node_id = engine.allocate_node_id()
        txn.put_node(NodeData(node_id, {"Temp"}), create=True)
        txn.commit()
        deleter = engine.begin()
        deleter.delete_node(node_id)
        deleter.commit()

        vacuum = VacuumCollector(engine.versions, engine.oracle, engine.indexes, store)
        stats = vacuum.collect()
        assert stats.versions_collected == 2
        assert stats.entities_purged == 1
        assert engine.versions.get_chain(EntityKey.node(node_id)) is None
        store.close()
