"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.version import Version, VersionChain
from repro.core.versioned_index import VersionedEntrySet
from repro.graph.dynamic_store import DynamicStore
from repro.graph.entity import EntityKey, NodeData
from repro.graph.id_allocator import IdAllocator
from repro.graph.paging import InMemoryBackend, PageCache, PagedFile
from repro.graph.property_store import PropertyStore, decode_array, encode_array

# -- strategies -----------------------------------------------------------------

scalar_values = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2 ** 62), max_value=2 ** 62),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=40),
)

array_values = st.one_of(
    st.lists(st.integers(min_value=-(2 ** 62), max_value=2 ** 62), max_size=12),
    st.lists(st.booleans(), max_size=12),
    st.lists(st.floats(allow_nan=False, allow_infinity=False, width=64), max_size=12),
    st.lists(st.text(max_size=12), max_size=12),
)

property_values = st.one_of(scalar_values, array_values)


def make_property_store():
    cache = PageCache(capacity_pages=512, page_size=256)
    values = DynamicStore(PagedFile(InMemoryBackend(), cache), "values")
    return PropertyStore(PagedFile(InMemoryBackend(), cache), values)


# -- storage round trips -----------------------------------------------------------

@given(st.lists(st.integers(min_value=-(2 ** 62), max_value=2 ** 62), max_size=30))
def test_int_array_codec_roundtrip(values):
    assert decode_array(encode_array(values)) == values


@given(st.lists(st.text(max_size=20), max_size=20))
def test_string_array_codec_roundtrip(values):
    assert decode_array(encode_array(values)) == values


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
@given(st.dictionaries(st.integers(min_value=0, max_value=30), property_values, max_size=8))
def test_property_chain_roundtrip(properties):
    store = make_property_store()
    ref = store.write_chain(dict(properties))
    assert store.read_chain(ref) == properties


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
@given(st.binary(max_size=600))
def test_dynamic_store_roundtrip(payload):
    cache = PageCache(capacity_pages=512, page_size=256)
    store = DynamicStore(PagedFile(InMemoryBackend(), cache), "dyn")
    assert store.read_bytes(store.write_bytes(payload)) == payload


# -- id allocator invariants ---------------------------------------------------------

@given(st.lists(st.sampled_from(["alloc", "free"]), max_size=60))
def test_id_allocator_never_hands_out_a_live_id(script):
    allocator = IdAllocator()
    live = set()
    for action in script:
        if action == "alloc":
            new_id = allocator.allocate()
            assert new_id not in live
            live.add(new_id)
        elif live:
            victim = sorted(live)[0]
            live.discard(victim)
            allocator.free(victim)


# -- version chain visibility (the read rule) ------------------------------------------

@given(
    commit_steps=st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=15),
    read_offset=st.integers(min_value=0, max_value=80),
)
def test_version_chain_visibility_matches_brute_force(commit_steps, read_offset):
    key = EntityKey.node(1)
    chain = VersionChain(key)
    commit_ts = 0
    all_versions = []
    for step in commit_steps:
        commit_ts += step
        version = Version(key, NodeData(1, properties={"at": commit_ts}), commit_ts)
        chain.add_committed(version)
        all_versions.append(version)

    start_ts = read_offset
    expected = max(
        (version for version in all_versions if version.commit_ts <= start_ts),
        key=lambda version: version.commit_ts,
        default=None,
    )
    assert chain.visible_to(start_ts) is expected


# -- versioned index intervals vs a brute-force model ------------------------------------

@settings(max_examples=60)
@given(
    st.lists(
        st.tuples(st.sampled_from(["add", "remove"]), st.integers(min_value=0, max_value=5)),
        max_size=20,
    ),
    st.integers(min_value=0, max_value=25),
)
def test_versioned_entry_set_matches_brute_force(events, read_ts):
    entries = VersionedEntrySet()
    model = {}  # entity -> list of (op, ts)
    commit_ts = 0
    for operation, entity in events:
        commit_ts += 1
        history = model.setdefault(entity, [])
        if operation == "add":
            entries.add(entity, commit_ts)
            history.append(("add", commit_ts))
        else:
            entries.mark_removed(entity, commit_ts)
            history.append(("remove", commit_ts))

    def visible_in_model(entity):
        member = False
        open_interval = False
        for operation, ts in model.get(entity, []):
            if operation == "add":
                open_interval = True
                if ts <= read_ts:
                    member = True
            elif open_interval:
                open_interval = False
                if ts <= read_ts:
                    member = False
        return member

    expected = {entity for entity in model if visible_in_model(entity)}
    assert entries.visible(read_ts) == expected


# -- end-to-end engine invariant: committed money is conserved under SI ------------------

@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(1, 50)), max_size=12))
def test_snapshot_isolation_conserves_total_balance(transfers):
    from repro import GraphDatabase, IsolationLevel, WriteWriteConflictError

    db = GraphDatabase.in_memory(isolation=IsolationLevel.SNAPSHOT)
    with db.transaction() as tx:
        accounts = [tx.create_node(["Account"], {"balance": 100}).id for _ in range(5)]
    for source_index, target_index, amount in transfers:
        if source_index == target_index:
            continue
        try:
            with db.transaction() as tx:
                source = tx.get_node(accounts[source_index])
                target = tx.get_node(accounts[target_index])
                tx.set_node_property(accounts[source_index], "balance", int(source["balance"]) - amount)
                tx.set_node_property(accounts[target_index], "balance", int(target["balance"]) + amount)
        except WriteWriteConflictError:
            pass
    with db.transaction(read_only=True) as tx:
        total = sum(int(tx.get_node(account)["balance"]) for account in accounts)
    assert total == 500
    db.close()
