"""Unit tests for the unversioned indexes and the index manager."""

from repro.graph.entity import NodeData, RelationshipData
from repro.graph.store_manager import StoreManager
from repro.index import (
    IndexManager,
    LabelIndex,
    PropertyIndex,
    RelationshipPropertyIndex,
    RelationshipTypeIndex,
)


class TestLabelIndex:
    def test_add_get_remove(self):
        index = LabelIndex()
        index.add("Person", 1)
        index.add("Person", 2)
        assert index.get("Person") == {1, 2}
        index.remove("Person", 1)
        assert index.get("Person") == {2}
        assert index.count("Person") == 1

    def test_update_applies_diff(self):
        index = LabelIndex()
        index.update(1, frozenset(), frozenset({"A", "B"}))
        index.update(1, frozenset({"A", "B"}), frozenset({"B", "C"}))
        assert index.get("A") == set()
        assert index.get("B") == {1}
        assert index.get("C") == {1}

    def test_remove_node_and_labels_listing(self):
        index = LabelIndex()
        index.add("A", 1)
        index.add("B", 1)
        index.remove_node(1, ["A", "B"])
        assert index.get("A") == set()
        assert index.labels() == ["A", "B"]

    def test_unknown_label_is_empty(self):
        assert LabelIndex().get("Nope") == set()


class TestPropertyIndex:
    def test_add_get(self):
        index = PropertyIndex()
        index.add("name", "alice", 1)
        assert index.get("name", "alice") == {1}
        assert index.get("name", "bob") == set()

    def test_array_values_are_hashable(self):
        index = PropertyIndex()
        index.add("tags", ["a", "b"], 1)
        assert index.get("tags", ["a", "b"]) == {1}
        assert index.get("tags", ("a", "b")) == {1}

    def test_update_moves_entries(self):
        index = PropertyIndex()
        index.update(1, {}, {"age": 30})
        index.update(1, {"age": 30}, {"age": 31, "name": "x"})
        assert index.get("age", 30) == set()
        assert index.get("age", 31) == {1}
        assert index.get("name", "x") == {1}

    def test_get_by_key(self):
        index = PropertyIndex()
        index.add("age", 30, 1)
        index.add("age", 31, 2)
        assert index.get_by_key("age") == {1, 2}

    def test_remove_node(self):
        index = PropertyIndex()
        index.add("age", 30, 1)
        index.remove_node(1, {"age": 30})
        assert index.get("age", 30) == set()


class TestRelationshipIndexes:
    def test_property_index(self):
        index = RelationshipPropertyIndex()
        index.add("since", 2016, 4)
        assert index.get("since", 2016) == {4}
        index.update(4, {"since": 2016}, {"since": 2017})
        assert index.get("since", 2017) == {4}
        index.remove_relationship(4, {"since": 2017})
        assert index.get("since", 2017) == set()

    def test_type_index(self):
        index = RelationshipTypeIndex()
        index.add("KNOWS", 1)
        index.add("KNOWS", 2)
        index.add("LIKES", 3)
        assert index.get("KNOWS") == {1, 2}
        assert index.types() == {"KNOWS", "LIKES"}
        assert index.count("KNOWS") == 2
        index.remove("KNOWS", 1)
        assert index.get("KNOWS") == {2}


class TestIndexManager:
    def test_node_lifecycle(self):
        manager = IndexManager()
        created = NodeData(1, {"Person"}, {"name": "alice", "age": 30})
        manager.apply_node_change(None, created)
        assert manager.nodes_with_label("Person") == {1}
        assert manager.nodes_with_property("age", 30) == {1}
        assert manager.nodes_with_label_and_property("Person", "name", "alice") == {1}

        updated = NodeData(1, {"Admin"}, {"name": "alice", "age": 31})
        manager.apply_node_change(created, updated)
        assert manager.nodes_with_label("Person") == set()
        assert manager.nodes_with_label("Admin") == {1}
        assert manager.nodes_with_property("age", 31) == {1}

        manager.apply_node_change(updated, None)
        assert manager.nodes_with_label("Admin") == set()
        assert manager.nodes_with_property("age", 31) == set()

    def test_relationship_lifecycle(self):
        manager = IndexManager()
        created = RelationshipData(5, "KNOWS", 1, 2, {"since": 2016})
        manager.apply_relationship_change(None, created)
        assert manager.relationships_with_property("since", 2016) == {5}
        assert manager.relationships_of_type("KNOWS") == {5}
        manager.apply_relationship_change(created, None)
        assert manager.relationships_with_property("since", 2016) == set()
        assert manager.relationships_of_type("KNOWS") == set()

    def test_rebuild_from_store(self):
        store = StoreManager(None)
        store.write_node(NodeData(0, {"Person"}, {"name": "a"}))
        store.write_node(NodeData(1, {"Person"}, {"name": "b"}))
        store.write_relationship(RelationshipData(0, "KNOWS", 0, 1, {"w": 1}))
        manager = IndexManager()
        manager.rebuild(store)
        assert manager.nodes_with_label("Person") == {0, 1}
        assert manager.relationships_of_type("KNOWS") == {0}
        assert manager.relationships_with_property("w", 1) == {0}
        store.close()

    def test_clear(self):
        manager = IndexManager()
        manager.apply_node_change(None, NodeData(1, {"Person"}))
        manager.clear()
        assert manager.nodes_with_label("Person") == set()
