"""Concurrent stress tests: end-to-end invariants under real thread interleavings.

These complement the deterministic interleavings in ``test_isolation_anomalies``:
they run genuinely concurrent workloads and assert global invariants that must
hold regardless of scheduling — money conservation under snapshot isolation,
store consistency after mixed structural churn, and snapshot stability for a
reader that stays open for the whole run.
"""

import random
import threading

import pytest

from repro import GraphDatabase, IsolationLevel, WriteWriteConflictError
from repro.errors import TransactionAbortedError
from repro.graph.recovery import check_store
from repro.workload.generators import build_account_graph, build_social_graph

WORKERS = 4
OPS = 30


def run_threads(worker, count=WORKERS):
    threads = [threading.Thread(target=worker, args=(i,), daemon=True) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not any(thread.is_alive() for thread in threads)


class TestMoneyConservation:
    def test_snapshot_isolation_with_retries_conserves_total(self):
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SNAPSHOT)
        graph = build_account_graph(db, accounts=10, initial_balance=1_000, seed=1)
        accounts = graph.group("accounts")

        def worker(worker_id):
            rng = random.Random(worker_id)
            for _ in range(OPS):
                for _attempt in range(20):
                    source, target = rng.sample(accounts, 2)
                    amount = rng.randint(1, 25)
                    try:
                        with db.transaction() as tx:
                            src = tx.get_node(source)
                            dst = tx.get_node(target)
                            tx.set_node_property(source, "balance", int(src["balance"]) - amount)
                            tx.set_node_property(target, "balance", int(dst["balance"]) + amount)
                        break
                    except (WriteWriteConflictError, TransactionAbortedError):
                        continue

        run_threads(worker)
        with db.transaction(read_only=True) as tx:
            total = sum(int(tx.get_node(account)["balance"]) for account in accounts)
        assert total == 10 * 1_000
        db.close()


class TestStructuralChurn:
    @pytest.mark.parametrize("isolation", [IsolationLevel.SNAPSHOT, IsolationLevel.READ_COMMITTED],
                             ids=["snapshot", "read_committed"])
    def test_store_stays_consistent_under_concurrent_churn(self, isolation):
        db = GraphDatabase.in_memory(isolation=isolation)
        graph = build_social_graph(db, people=60, avg_friends=3, seed=2)
        people = graph.group("people")

        def worker(worker_id):
            rng = random.Random(worker_id + 100)
            for _ in range(OPS):
                try:
                    action = rng.random()
                    with db.transaction() as tx:
                        if action < 0.4:
                            left, right = rng.sample(people, 2)
                            if tx.try_get_node(left) and tx.try_get_node(right):
                                tx.create_relationship(left, right, "KNOWS")
                        elif action < 0.7:
                            victim = rng.choice(people)
                            if tx.try_get_node(victim) is not None:
                                tx.delete_node(victim, detach=True)
                        else:
                            node = tx.create_node(["Person"], {"name": f"new-{worker_id}"})
                            anchor = rng.choice(people)
                            if tx.try_get_node(anchor) is not None:
                                tx.create_relationship(node, anchor, "KNOWS")
                except (WriteWriteConflictError, TransactionAbortedError):
                    continue

        run_threads(worker)
        # Whatever interleaving happened, the persistent store must be
        # structurally sound and the two entity counts must agree with a scan.
        if db.is_snapshot_isolation:
            db.run_gc()
        report = check_store(db.store)
        assert report.consistent, report.errors
        with db.transaction(read_only=True) as tx:
            assert tx.node_count() == db.store.node_count()
        db.close()


class TestSnapshotStabilityUnderLoad:
    def test_long_reader_sees_a_frozen_world(self):
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SNAPSHOT)
        graph = build_social_graph(db, people=40, avg_friends=2, seed=3)
        people = graph.group("people")

        reader = db.begin(read_only=True)
        initial_people = {node.id for node in reader.find_nodes(label="Person")}
        initial_scores = {node_id: reader.get_node(node_id).get("score", 0) for node_id in people[:10]}

        def worker(worker_id):
            rng = random.Random(worker_id + 7)
            for _ in range(OPS):
                try:
                    with db.transaction() as tx:
                        if rng.random() < 0.5:
                            tx.create_node(["Person"], {"name": "noise"})
                        else:
                            victim = rng.choice(people)
                            if tx.try_get_node(victim) is not None:
                                tx.set_node_property(victim, "score", rng.randint(1, 10_000))
                except (WriteWriteConflictError, TransactionAbortedError):
                    continue

        run_threads(worker)

        # The reader's view is byte-for-byte what it was at its start timestamp.
        assert {node.id for node in reader.find_nodes(label="Person")} == initial_people
        for node_id, score in initial_scores.items():
            assert reader.get_node(node_id).get("score", 0) == score
        reader.rollback()

        # A fresh reader sees the churned world.
        with db.transaction(read_only=True) as tx:
            assert {node.id for node in tx.find_nodes(label="Person")} != initial_people
        db.close()
