"""Concurrent stress tests: end-to-end invariants under real thread interleavings.

These complement the deterministic interleavings in ``test_isolation_anomalies``:
they run genuinely concurrent workloads and assert global invariants that must
hold regardless of scheduling — money conservation under snapshot isolation,
store consistency after mixed structural churn, and snapshot stability for a
reader that stays open for the whole run.
"""

import random
import threading

import pytest

from repro import GraphDatabase, IsolationLevel, WriteWriteConflictError
from repro.errors import (
    ConstraintViolationError,
    EntityNotFoundError,
    TransactionAbortedError,
)
from repro.graph.recovery import check_store
from repro.workload.generators import build_account_graph, build_social_graph

WORKERS = 4
OPS = 30


def run_threads(worker, count=WORKERS):
    """Run workers to completion, re-raising any worker exception.

    Swallowed worker crashes would let the post-run assertions pass against
    a workload that never actually completed.
    """
    errors = []

    def guarded(worker_id):
        try:
            worker(worker_id)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)

    threads = [threading.Thread(target=guarded, args=(i,), daemon=True) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not any(thread.is_alive() for thread in threads)
    if errors:
        raise errors[0]


class TestMoneyConservation:
    def test_snapshot_isolation_with_retries_conserves_total(self):
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SNAPSHOT)
        graph = build_account_graph(db, accounts=10, initial_balance=1_000, seed=1)
        accounts = graph.group("accounts")

        def worker(worker_id):
            rng = random.Random(worker_id)
            for _ in range(OPS):
                for _attempt in range(20):
                    source, target = rng.sample(accounts, 2)
                    amount = rng.randint(1, 25)
                    try:
                        with db.transaction() as tx:
                            src = tx.get_node(source)
                            dst = tx.get_node(target)
                            tx.set_node_property(source, "balance", int(src["balance"]) - amount)
                            tx.set_node_property(target, "balance", int(dst["balance"]) + amount)
                        break
                    except (WriteWriteConflictError, TransactionAbortedError):
                        continue

        run_threads(worker)
        with db.transaction(read_only=True) as tx:
            total = sum(int(tx.get_node(account)["balance"]) for account in accounts)
        assert total == 10 * 1_000
        db.close()

    def test_serializable_holds_cross_account_floor(self):
        """A constraint spanning two entities survives concurrent withdrawals.

        Every transaction reads *both* balances and withdraws from one only
        if the combined balance stays non-negative — the write-skew shape
        snapshot isolation cannot protect.  Under SERIALIZABLE with
        ``run_transaction`` retries the invariant must hold at every point,
        so the final combined balance is non-negative by serializability.
        """
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SERIALIZABLE)
        with db.transaction() as tx:
            a = tx.create_node(labels=["Account"], properties={"balance": 300})
            b = tx.create_node(labels=["Account"], properties={"balance": 300})
        ids = (a.id, b.id)

        def worker(worker_id):
            rng = random.Random(worker_id + 500)

            def body(tx):
                balance_a = int(tx.get_node(ids[0])["balance"])
                balance_b = int(tx.get_node(ids[1])["balance"])
                amount = rng.randint(1, 40)
                if balance_a + balance_b >= amount:
                    target, balance = rng.choice(
                        [(ids[0], balance_a), (ids[1], balance_b)]
                    )
                    tx.set_node_property(target, "balance", balance - amount)

            for _ in range(OPS):
                try:
                    db.run_transaction(body, retries=30, rng=rng)
                except TransactionAbortedError:
                    continue

        run_threads(worker)
        with db.transaction(read_only=True) as tx:
            combined = sum(int(tx.get_node(i)["balance"]) for i in ids)
        assert combined >= 0
        reasons = db.statistics()["engine"]["transactions"]["abort_reasons"]
        assert set(reasons) == {
            "ww-conflict",
            "rw-antidependency",
            "safe-snapshot",
            "deadlock",
            "io-error",
            "degraded-mode",
        }
        # Every abort the engine counted must be attributed to some cause
        # (the breakdown is not allowed to silently under-report).
        engine_stats = db.statistics()["engine"]["transactions"]
        assert sum(reasons.values()) >= engine_stats["aborted"]
        db.run_gc()
        assert db.statistics()["engine"]["concurrency_control"]["siread_entries"] == 0
        db.close()


class TestStructuralChurn:
    @pytest.mark.parametrize("isolation",
                             [IsolationLevel.SNAPSHOT, IsolationLevel.READ_COMMITTED,
                              IsolationLevel.SERIALIZABLE],
                             ids=["snapshot", "read_committed", "serializable"])
    def test_store_stays_consistent_under_concurrent_churn(self, isolation):
        db = GraphDatabase.in_memory(isolation=isolation)
        graph = build_social_graph(db, people=60, avg_friends=3, seed=2)
        people = graph.group("people")

        def worker(worker_id):
            rng = random.Random(worker_id + 100)
            for _ in range(OPS):
                try:
                    action = rng.random()
                    with db.transaction() as tx:
                        if action < 0.4:
                            left, right = rng.sample(people, 2)
                            if tx.try_get_node(left) and tx.try_get_node(right):
                                tx.create_relationship(left, right, "KNOWS")
                        elif action < 0.7:
                            victim = rng.choice(people)
                            if tx.try_get_node(victim) is not None:
                                tx.delete_node(victim, detach=True)
                        else:
                            node = tx.create_node(["Person"], {"name": f"new-{worker_id}"})
                            anchor = rng.choice(people)
                            if tx.try_get_node(anchor) is not None:
                                tx.create_relationship(node, anchor, "KNOWS")
                except (WriteWriteConflictError, TransactionAbortedError):
                    continue
                except (ConstraintViolationError, EntityNotFoundError):
                    # Read committed permits these races by design: a commit
                    # can apply a relationship create whose endpoint a
                    # concurrent delete removed between the existence check
                    # and apply (NodeNotFoundError), or a node delete whose
                    # victim a concurrent commit re-attached relationships to
                    # (ConstraintViolationError).  The MVCC engines turn the
                    # same interleavings into write-write conflicts at
                    # validation instead.
                    continue

        run_threads(worker)
        # Whatever interleaving happened, the persistent store must be
        # structurally sound and the two entity counts must agree with a scan.
        if db.is_snapshot_isolation:
            db.run_gc()
        report = check_store(db.store)
        assert report.consistent, report.errors
        with db.transaction(read_only=True) as tx:
            assert tx.node_count() == db.store.node_count()
        db.close()


class TestSnapshotStabilityUnderLoad:
    def test_long_reader_sees_a_frozen_world(self):
        db = GraphDatabase.in_memory(isolation=IsolationLevel.SNAPSHOT)
        graph = build_social_graph(db, people=40, avg_friends=2, seed=3)
        people = graph.group("people")

        reader = db.begin(read_only=True)
        initial_people = {node.id for node in reader.find_nodes(label="Person")}
        initial_scores = {node_id: reader.get_node(node_id).get("score", 0) for node_id in people[:10]}

        def worker(worker_id):
            rng = random.Random(worker_id + 7)
            for _ in range(OPS):
                try:
                    with db.transaction() as tx:
                        if rng.random() < 0.5:
                            tx.create_node(["Person"], {"name": "noise"})
                        else:
                            victim = rng.choice(people)
                            if tx.try_get_node(victim) is not None:
                                tx.set_node_property(victim, "score", rng.randint(1, 10_000))
                except (WriteWriteConflictError, TransactionAbortedError):
                    continue

        run_threads(worker)

        # The reader's view is byte-for-byte what it was at its start timestamp.
        assert {node.id for node in reader.find_nodes(label="Person")} == initial_people
        for node_id, score in initial_scores.items():
            assert reader.get_node(node_id).get("score", 0) == score
        reader.rollback()

        # A fresh reader sees the churned world.
        with db.transaction(read_only=True) as tx:
            assert {node.id for node in tx.find_nodes(label="Person")} != initial_people
        db.close()
