"""Account transfers: lost updates, first-updater-wins retries, and write skew.

Three things this example shows on a bank-style graph (Customer-[:OWNS]->Account):

1. Under read committed, concurrent read-modify-write transfers silently lose
   updates: the final total balance does not add up.
2. Under snapshot isolation, the write rule (first-updater-wins) aborts one of
   two conflicting transfers; with a retry loop the books always balance.
3. Snapshot isolation still permits *write skew* — the one anomaly the paper
   acknowledges SI does not prevent — shown with the classic two-account
   constraint.

Run with::

    python examples/bank_transfers.py
"""

import threading

from repro import GraphDatabase, IsolationLevel, WriteWriteConflictError
from repro.errors import TransactionAbortedError
from repro.workload.anomaly import WriteSkewProbe
from repro.workload.generators import build_account_graph

ACCOUNTS = 20
INITIAL_BALANCE = 1_000
TRANSFERS_PER_WORKER = 50
WORKERS = 4


def total_balance(db, accounts) -> int:
    with db.transaction(read_only=True) as tx:
        return sum(int(tx.get_node(account)["balance"]) for account in accounts)


def run_transfers(db, accounts, *, retry: bool) -> dict:
    """Concurrent random transfers; optionally retry on write-write conflicts."""
    lost = {"aborts": 0, "retries": 0}
    lock = threading.Lock()

    def worker(worker_id: int) -> None:
        import random

        rng = random.Random(worker_id)
        for _ in range(TRANSFERS_PER_WORKER):
            while True:
                source, target = rng.sample(accounts, 2)
                amount = rng.randint(1, 50)
                try:
                    with db.transaction() as tx:
                        src = tx.get_node(source)
                        dst = tx.get_node(target)
                        tx.set_node_property(source, "balance", int(src["balance"]) - amount)
                        tx.set_node_property(target, "balance", int(dst["balance"]) + amount)
                    break
                except (WriteWriteConflictError, TransactionAbortedError):
                    with lock:
                        lost["aborts"] += 1
                    if not retry:
                        break
                    with lock:
                        lost["retries"] += 1

    threads = [threading.Thread(target=worker, args=(i,), daemon=True) for i in range(WORKERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return lost


def demonstrate_transfers() -> None:
    expected_total = ACCOUNTS * INITIAL_BALANCE
    print(f"{WORKERS} workers x {TRANSFERS_PER_WORKER} random transfers; "
          f"money in the system should stay {expected_total}\n")

    for isolation in (IsolationLevel.READ_COMMITTED, IsolationLevel.SNAPSHOT):
        db = GraphDatabase.in_memory(isolation=isolation)
        graph = build_account_graph(db, accounts=ACCOUNTS, initial_balance=INITIAL_BALANCE, seed=3)
        accounts = graph.group("accounts")
        outcome = run_transfers(db, accounts, retry=isolation is IsolationLevel.SNAPSHOT)
        final = total_balance(db, accounts)
        drift = final - expected_total
        print(f"{isolation.value:>15}: final total {final} (drift {drift:+d}), "
              f"conflicts aborted {outcome['aborts']}, retried {outcome['retries']}")
        db.close()
    print("\nRead committed silently loses concurrent updates (non-zero drift); "
          "snapshot isolation aborts the second updater, and with retries the books balance.\n")


def demonstrate_write_skew() -> None:
    print("Write skew (the anomaly snapshot isolation does NOT prevent):")
    db = GraphDatabase.in_memory(isolation=IsolationLevel.SNAPSHOT)
    with db.transaction() as tx:
        account_a = tx.create_node(["Account"], {"balance": 60}).id
        account_b = tx.create_node(["Account"], {"balance": 60}).id
    probe = WriteSkewProbe(account_a, account_b, withdraw_amount=80)

    # Two concurrent transactions each read both balances (total 120 >= 80),
    # then withdraw from *different* accounts — no write-write conflict, both
    # commit, and the combined constraint is violated.
    t1 = db.begin()
    t2 = db.begin()
    probe.withdraw(t1, account_a)
    probe.withdraw(t2, account_b)
    t1.commit()
    t2.commit()

    with db.transaction(read_only=True) as tx:
        balance_a = tx.get_node(account_a)["balance"]
        balance_b = tx.get_node(account_b)["balance"]
        violated = probe.constraint_violated(tx)
    print(f"  balances after both withdrawals: {balance_a} + {balance_b} = {balance_a + balance_b}"
          f"  -> constraint violated: {violated}")
    print("  (As the paper notes, many workloads — e.g. TPC-C — never trigger this anomaly.)")
    db.close()


if __name__ == "__main__":
    demonstrate_transfers()
    demonstrate_write_skew()
