"""Observability tour: metrics, transaction traces, slow queries, Prometheus.

Runs a short mixed workload against an in-memory database with tracing and
the slow-query log enabled, then prints what each observability surface saw:

* the metrics snapshot (``db.metrics_snapshot()``) — every registry
  instrument plus the flattened legacy ``statistics()`` counters,
* the slow-query log — statement text, latency, rows, plan and snapshot
  timestamp of every execution above the threshold,
* one full transaction trace — the per-phase timing breakdown of a write
  commit (begin → read → stripe_wait → validate → install → wal → publish),
* a sample of the Prometheus text exposition.

Run with::

    python examples/observability_demo.py

or, to also start an HTTP scrape endpoint and keep serving until Ctrl-C::

    python examples/observability_demo.py --serve
"""

import argparse
import json
import random
import time

from repro import GraphDatabase, IsolationLevel


def build_and_run_workload(db: GraphDatabase) -> None:
    """A small social graph plus a read/write mix to light every instrument up."""
    rng = random.Random(7)
    with db.transaction() as tx:
        people = [
            tx.create_node(["Person"], {"name": f"p{i}", "score": 0})
            for i in range(50)
        ]
        for person in people:
            for _ in range(3):
                other = people[rng.randrange(len(people))]
                if other.id != person.id:
                    tx.create_relationship(person, other, "KNOWS")

    for index in range(40):
        name = f"p{rng.randrange(50)}"
        if index % 4 == 0:
            with db.transaction() as tx:
                tx.execute(
                    "MATCH (n:Person {name: $name}) SET n.score = $s",
                    {"name": name, "s": index},
                )
        else:
            with db.transaction(read_only=True) as tx:
                tx.execute(
                    "MATCH (n:Person {name: $name})-[:KNOWS]->(m) "
                    "RETURN m.name ORDER BY m.name",
                    {"name": name},
                ).consume()

    # One deliberately slow statement so the slow-query log has a headline
    # entry even on fast machines.
    with db.transaction(read_only=True) as tx:
        result = tx.execute(
            "MATCH (n:Person)-[:KNOWS]->(m:Person) RETURN n.name, m.name"
        )
        result.consume()
        time.sleep(0.01)


def show_metrics(db: GraphDatabase) -> None:
    snapshot = db.metrics_snapshot()
    print("== metrics snapshot (selected instruments) ==")
    for name in sorted(snapshot["instruments"]):
        info = snapshot["instruments"][name]
        if info["type"] != "counter":
            continue
        for sample in info["samples"]:
            labels = (
                "{" + ", ".join(f"{k}={v}" for k, v in sample["labels"].items()) + "}"
                if sample["labels"]
                else ""
            )
            print(f"  {name}{labels} = {sample['value']:.0f}")
    histogram = snapshot["instruments"]["repro_txn_seconds"]["samples"][0]
    print(f"  repro_txn_seconds: count={histogram['count']} sum={histogram['sum']:.4f}s")


def show_slow_queries(db: GraphDatabase) -> None:
    print("\n== slow-query log ==")
    entries = db.slow_queries()
    if not entries:
        print("  (empty — raise --slow-ms if this machine is very fast)")
    for entry in entries[-3:]:
        payload = entry.as_dict()
        print(
            f"  {payload['seconds'] * 1000:.2f}ms rows={payload['rows']} "
            f"snapshot_ts={payload['snapshot_ts']} read_only={payload['read_only']}"
        )
        print(f"    {payload['text']}")


def show_trace(db: GraphDatabase) -> None:
    print("\n== one transaction trace ==")
    # Prefer a committed writer: its trace exercises every phase.
    traces = db.recent_traces()
    chosen = next(
        (t for t in reversed(traces) if dict(t.phases).get("wal")), traces[-1]
    )
    print(json.dumps(chosen.as_dict(), indent=2))


def show_prometheus(db: GraphDatabase) -> None:
    print("\n== Prometheus exposition (first 20 lines) ==")
    for line in db.prometheus_metrics().splitlines()[:20]:
        print(f"  {line}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--serve", action="store_true",
        help="after the demo, serve /metrics over HTTP until interrupted",
    )
    parser.add_argument(
        "--slow-ms", type=float, default=1.0,
        help="slow-query threshold in milliseconds (default 1.0)",
    )
    args = parser.parse_args()

    db = GraphDatabase.in_memory(
        isolation=IsolationLevel.SNAPSHOT,
        tracing=True,
        slow_query_seconds=args.slow_ms / 1000.0,
    )
    build_and_run_workload(db)
    show_metrics(db)
    show_slow_queries(db)
    show_trace(db)
    show_prometheus(db)

    if args.serve:
        exporter = db.serve_metrics()
        print(f"\nServing {exporter.url}/metrics — Ctrl-C to stop.")
        try:
            while True:
                time.sleep(1.0)
        except KeyboardInterrupt:
            pass
        finally:
            exporter.stop()
    db.close()


if __name__ == "__main__":
    main()
