"""The paper's motivating scenario: a two-step graph algorithm under concurrent deletes.

Section 1 of the paper: under read committed "a path that has been traversed,
might not exist when trying to go through it later in the same transaction
(e.g. due to a two-step graph algorithm)".

This example runs a friends-of-friends computation (step 1: collect friends,
step 2: revisit each friend to collect their friends) while a concurrent
thread keeps deleting people.  Under read committed the second step regularly
finds that a friend observed in step 1 has vanished; under snapshot isolation
the whole algorithm runs against one consistent snapshot and that never
happens.

Run with::

    python examples/two_step_traversal.py
"""

import threading
import time

from repro import GraphDatabase, IsolationLevel
from repro.api.traversal import two_step_neighbourhood
from repro.workload.generators import build_social_graph

PEOPLE = 120
ALGORITHM_RUNS = 60


def run_scenario(isolation: IsolationLevel) -> dict:
    db = GraphDatabase.in_memory(isolation=isolation)
    graph = build_social_graph(db, people=PEOPLE, avg_friends=5, seed=99)
    people = list(graph.group("people"))
    hubs = people[:10]
    stop = threading.Event()
    deleted = []

    def churn() -> None:
        """Keep deleting (detach) random people while the algorithm runs."""
        index = len(people) - 1
        while not stop.is_set() and index > 20:
            victim = people[index]
            index -= 1
            try:
                with db.transaction() as tx:
                    if tx.try_get_node(victim) is not None:
                        tx.delete_node(victim, detach=True)
                        deleted.append(victim)
            except Exception:
                # Write-write conflicts and lock timeouts are expected noise here.
                pass
            time.sleep(0.001)

    churner = threading.Thread(target=churn, daemon=True)
    churner.start()

    broken_traversals = 0
    for run in range(ALGORITHM_RUNS):
        start = hubs[run % len(hubs)]
        with db.transaction(read_only=True) as tx:
            if tx.try_get_node(start) is None:
                continue
            friends = [node.id for node in tx.neighbours(start, rel_types=["KNOWS"])]
            time.sleep(0.002)  # give the churn thread a window between the two steps
            for friend in friends:
                if tx.try_get_node(friend) is None:
                    # The path we just traversed no longer exists in our own view.
                    broken_traversals += 1
                    break

    stop.set()
    churner.join(timeout=5.0)

    # Bonus: the same two-step helper from the traversal framework.
    with db.transaction(read_only=True) as tx:
        remaining_hub = next(h for h in hubs if tx.try_get_node(h) is not None)
        first_hop, second_hop = two_step_neighbourhood(tx, remaining_hub, rel_types=["KNOWS"])
    db.close()
    return {
        "isolation": isolation.value,
        "algorithm_runs": ALGORITHM_RUNS,
        "broken_traversals": broken_traversals,
        "people_deleted_concurrently": len(deleted),
        "example_fof_counts": (len(first_hop), len(second_hop)),
    }


def main() -> None:
    print("Two-step traversal while a concurrent thread deletes nodes\n")
    for isolation in (IsolationLevel.READ_COMMITTED, IsolationLevel.SNAPSHOT):
        result = run_scenario(isolation)
        print(f"{result['isolation']:>15}: "
              f"{result['broken_traversals']} of {result['algorithm_runs']} traversals "
              f"saw a friend disappear mid-algorithm "
              f"({result['people_deleted_concurrently']} people deleted concurrently)")
    print("\nSnapshot isolation runs every multi-step algorithm against one "
          "consistent snapshot, so the second step always finds what the first step saw.")


if __name__ == "__main__":
    main()
