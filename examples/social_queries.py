"""Walkthrough of the declarative query subsystem on a social graph.

Shows the Cypher-subset language end to end: parameterised CREATE/MATCH,
filters, traversals (fixed and variable-length), aggregation, EXPLAIN with
the cardinality-aware planner, and a query that spans a concurrent commit
under one snapshot.

Run with::

    PYTHONPATH=src python examples/social_queries.py
"""

from repro import GraphDatabase, IsolationLevel


def main() -> None:
    db = GraphDatabase.in_memory(isolation=IsolationLevel.SNAPSHOT)

    # -- build the graph declaratively ---------------------------------------------
    db.execute(
        """
        CREATE (alice:Person {name: 'Alice', age: 34}),
               (bob:Person {name: 'Bob', age: 29}),
               (carol:Person {name: 'Carol', age: 41}),
               (dan:Person {name: 'Dan', age: 23}),
               (madrid:City {name: 'Madrid'}),
               (lisbon:City {name: 'Lisbon'}),
               (alice)-[:KNOWS {since: 2010}]->(bob),
               (bob)-[:KNOWS {since: 2015}]->(carol),
               (carol)-[:KNOWS {since: 2012}]->(dan),
               (alice)-[:LIVES_IN]->(madrid),
               (bob)-[:LIVES_IN]->(madrid),
               (carol)-[:LIVES_IN]->(lisbon),
               (dan)-[:LIVES_IN]->(lisbon)
        """
    )

    # -- indexed point lookup with a parameter ----------------------------------------
    record = db.execute(
        "MATCH (p:Person {name: $name}) RETURN p.name AS name, p.age AS age",
        name="Alice",
    ).single()
    print(f"Point lookup: {record['name']} is {record['age']}")

    # -- filter + order + limit ---------------------------------------------------------
    print("Oldest people:")
    for row in db.execute(
        "MATCH (p:Person) WHERE p.age >= 25 "
        "RETURN p.name AS name, p.age AS age ORDER BY p.age DESC LIMIT 3"
    ):
        print(f"  {row['name']} ({row['age']})")

    # -- traversals ----------------------------------------------------------------------
    friends = db.execute(
        "MATCH (:Person {name: 'Bob'})-[:KNOWS]-(f) RETURN f.name ORDER BY f.name"
    ).values()
    print(f"Bob's direct contacts: {friends}")

    reachable = db.execute(
        "MATCH (:Person {name: 'Alice'})-[:KNOWS*1..3]->(f) "
        "RETURN DISTINCT f.name ORDER BY f.name"
    ).values()
    print(f"Within three KNOWS hops of Alice: {reachable}")

    # -- aggregation ----------------------------------------------------------------------
    print("Residents per city:")
    for row in db.execute(
        "MATCH (p:Person)-[:LIVES_IN]->(c:City) "
        "RETURN c.name AS city, count(p) AS residents, avg(p.age) AS mean_age "
        "ORDER BY residents DESC, city"
    ):
        print(f"  {row['city']}: {row['residents']} people, mean age {row['mean_age']}")

    # -- writes through the language ------------------------------------------------------
    result = db.execute(
        "MATCH (p:Person {name: 'Dan'}) SET p.age = p.age + 1, p:Birthday"
    )
    print(f"Birthday update: {result.stats.as_dict()}")

    # -- EXPLAIN / PROFILE: the planner picks the index seek over a scan ------------------
    # EXPLAIN shows the plan without executing; PROFILE also runs the query
    # and records the actual rows each operator produced.
    explained = db.execute(
        "EXPLAIN MATCH (p:Person {name: 'Carol'})-[:KNOWS]->(f) RETURN f.name"
    )
    print("EXPLAIN (note the PropertyIndexSeek chosen over a label/all-nodes scan):")
    print(explained.render_plan())
    profiled = db.execute(
        "PROFILE MATCH (p:Person {name: 'Carol'})-[:KNOWS]->(f) RETURN f.name"
    )
    print("PROFILE (estimated vs. actual rows):")
    print(profiled.render_plan())

    # -- one snapshot, even across a concurrent commit ------------------------------------
    reader = db.begin(read_only=True)
    result = reader.execute("MATCH (p:Person) RETURN p.age AS age ORDER BY age")
    iterator = iter(result)
    first = next(iterator)  # start iterating, then let a writer commit
    db.execute("MATCH (p:Person) SET p.age = 99")
    remaining = [row["age"] for row in iterator]
    reader.rollback()
    print(
        "Ages seen by a query spanning a concurrent commit "
        f"(one snapshot, no 99s): {[first['age']] + remaining}"
    )

    db.close()


if __name__ == "__main__":
    main()
