"""Version chains, tombstones and garbage collection, observed from the outside.

This example walks through the memory-management story of Section 4 of the
paper:

* updates create versions that live in the object cache, while the persistent
  store only ever holds the newest committed version;
* a long-running reader pins the watermark, so history (and tombstones of
  deleted entities) is retained for exactly as long as it might be read;
* the threaded-list garbage collector reclaims precisely the dead versions,
  while the PostgreSQL-style vacuum baseline re-scans the whole database to
  find the same garbage.

Run with::

    python examples/version_housekeeping.py
"""

from repro import GraphDatabase, IsolationLevel
from repro.workload.generators import build_social_graph

UPDATES = 300
HOT = 10


def describe(db, moment: str) -> None:
    engine = db.engine
    print(f"{moment}:")
    print(f"  versions retained in the object cache : {engine.versions.total_versions()}")
    print(f"  chains with history (>1 version)      : {engine.versions.multi_version_chains()}")
    print(f"  versions waiting on the GC list       : {engine.gc.pending_versions()}")
    print(f"  persistent nodes in the store          : {db.store.node_count()}")


def main() -> None:
    db = GraphDatabase.in_memory(isolation=IsolationLevel.SNAPSHOT)
    graph = build_social_graph(db, people=150, avg_friends=3, seed=5)
    hot = graph.group("people")[:HOT]

    describe(db, "After loading the graph")

    # A long-running analytical reader opens its snapshot now.
    long_reader = db.begin(read_only=True)
    baseline_score = long_reader.get_node(hot[0]).get("score", 0)

    # Update a hot set of nodes many times, and delete a few people.
    for index in range(UPDATES):
        with db.transaction() as tx:
            node_id = hot[index % HOT]
            tx.set_node_property(node_id, "score", index)
    victims = graph.group("people")[-5:]
    for victim in victims:
        with db.transaction() as tx:
            tx.delete_node(victim, detach=True)

    describe(db, f"\nAfter {UPDATES} updates and {len(victims)} deletes (reader still open)")

    stats = db.run_gc()
    print(f"\nGC while the reader pins the watermark: collected {stats.versions_collected} "
          f"versions (everything is still readable by the open snapshot)")
    print(f"  the long reader still sees score={long_reader.get_node(hot[0]).get('score', 0)} "
          f"(it started at {baseline_score}) and still sees the deleted people: "
          f"{sum(1 for victim in victims if long_reader.try_get_node(victim) is not None)} of {len(victims)}")

    long_reader.rollback()
    stats = db.run_gc()
    print(f"\nGC after the reader finished: collected {stats.versions_collected} versions, "
          f"purged {stats.entities_purged} deleted entities, "
          f"in {stats.duration_seconds * 1000:.2f} ms")
    describe(db, "\nAfter garbage collection")

    # Compare with the stop-the-world vacuum baseline on a fresh pile of garbage.
    for index in range(UPDATES // 2):
        with db.transaction() as tx:
            tx.set_node_property(hot[index % HOT], "score", -index)
    vacuum = db.create_vacuum_collector()
    vacuum_stats = vacuum.collect()
    print(f"\nVacuum baseline on the same kind of garbage: examined "
          f"{vacuum_stats.versions_examined} versions and {vacuum_stats.store_records_scanned} "
          f"store records to collect {vacuum_stats.versions_collected} "
          f"({vacuum_stats.duration_seconds * 1000:.2f} ms, commits stalled while it ran)")
    db.close()


if __name__ == "__main__":
    main()
