"""Quickstart: create a small graph, query it, and see snapshot isolation at work.

Run with::

    python examples/quickstart.py
"""

from repro import Direction, GraphDatabase, IsolationLevel, shortest_path


def main() -> None:
    # A database under the paper's snapshot-isolation engine (in memory; pass a
    # directory path instead to persist to disk).
    db = GraphDatabase.in_memory(isolation=IsolationLevel.SNAPSHOT)

    # -- build a tiny social graph ------------------------------------------------
    with db.transaction() as tx:
        alice = tx.create_node(["Person"], {"name": "Alice", "age": 34})
        bob = tx.create_node(["Person"], {"name": "Bob", "age": 29})
        carol = tx.create_node(["Person"], {"name": "Carol", "age": 41})
        madrid = tx.create_node(["City"], {"name": "Madrid"})
        tx.create_relationship(alice, bob, "KNOWS", {"since": 2010})
        tx.create_relationship(bob, carol, "KNOWS", {"since": 2015})
        tx.create_relationship(alice, madrid, "LIVES_IN")

    # -- read it back ----------------------------------------------------------------
    with db.transaction(read_only=True) as tx:
        print("People in the graph:")
        for person in tx.find_nodes(label="Person"):
            friends = [
                rel.other_node(person)["name"]
                for rel in tx.relationships_of(person, Direction.BOTH, ["KNOWS"])
            ]
            print(f"  {person['name']} (age {person['age']}), knows: {friends}")

        path = shortest_path(tx, alice.id, carol.id, rel_types=["KNOWS"])
        names = [tx.get_node(node_id)["name"] for node_id in path.node_ids()]
        print(f"Shortest KNOWS path from Alice to Carol: {' -> '.join(names)}")

    # -- snapshot isolation in one picture --------------------------------------------
    # A reader opened *before* an update keeps seeing its snapshot; a reader
    # opened after sees the new value.  Under Neo4j's stock read-committed this
    # first reader would observe the change mid-transaction.
    reader = db.begin(read_only=True)
    before = reader.get_node(alice.id)["age"]

    with db.transaction() as tx:
        tx.set_node_property(alice.id, "age", 35)

    still_sees = reader.get_node(alice.id)["age"]
    reader.rollback()
    with db.transaction(read_only=True) as tx:
        after = tx.get_node(alice.id)["age"]

    print(f"Reader opened before the update: sees age {before}, then {still_sees} (unchanged)")
    print(f"Reader opened after the update:  sees age {after}")

    print("\nEngine statistics:")
    for key, value in db.statistics()["engine"]["transactions"].items():
        print(f"  {key}: {value}")
    db.close()


if __name__ == "__main__":
    main()
