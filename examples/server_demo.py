"""The network service layer: one database, many clients, graceful drain.

What this example shows, all in one process (the server runs on a
background thread, so no subprocess management is needed):

1. serving an embedded database with :class:`repro.server.GraphServer` and
   connecting :class:`repro.client.GraphClient` sessions to it;
2. per-session isolation negotiation — the database runs snapshot
   isolation, so a read-committed request is granted *snapshot* (stronger
   is always a correct answer) and a hard serializable requirement is
   refused;
3. session-scoped explicit transactions and the write-conflict error
   mapped back onto the same :class:`WriteWriteConflictError` embedded
   code catches;
4. graceful drain: shutdown refuses new sessions, finishes in-flight
   requests, and every acked commit stays durable.

Run with::

    python examples/server_demo.py
"""

from repro import GraphDatabase, IsolationLevel, WriteWriteConflictError
from repro.client import GraphClient
from repro.errors import IsolationNegotiationError, ServerDrainingError
from repro.server import GraphServer


def main():
    db = GraphDatabase.in_memory(isolation=IsolationLevel.SNAPSHOT)
    server = GraphServer(db, port=0).start()
    host, port = server.address
    print(f"serving an in-memory snapshot-isolation database on {host}:{port}\n")

    # -- negotiation --------------------------------------------------------
    relaxed = GraphClient(host, port, isolation="read_committed")
    print(f"asked for read_committed, granted: {relaxed.isolation}")
    try:
        GraphClient(host, port, isolation="serializable", require_isolation=True)
    except IsolationNegotiationError as exc:
        print(f"hard serializable requirement refused: {exc}\n")

    # -- statements and explicit transactions -------------------------------
    result = relaxed.execute(
        "CREATE (a:Person {name: 'Alice'})-[:KNOWS]->(b:Person {name: 'Bob'}) "
        "RETURN a.name, b.name"
    )
    print(f"auto-commit write acked at commit_ts={result.commit_ts}")

    reader = GraphClient(host, port, read_only=True, client_name="reader")
    relaxed.begin()
    relaxed.execute("CREATE (:Person {name: 'Carol'})")
    before = reader.execute("MATCH (n:Person) RETURN count(n) AS c").single()[0]
    relaxed.commit()
    after = reader.execute("MATCH (n:Person) RETURN count(n) AS c").single()[0]
    print(f"reader saw {before} people before the commit, {after} after\n")

    # -- conflicts map onto the embedded error classes ----------------------
    left = GraphClient(host, port, client_name="left")
    right = GraphClient(host, port, client_name="right")
    left.begin()
    left.execute("MATCH (n:Person {name: 'Alice'}) SET n.age = 30")
    right.begin()
    try:
        right.execute("MATCH (n:Person {name: 'Alice'}) SET n.age = 31")
    except WriteWriteConflictError as exc:
        print(f"first-updater-wins over the wire: {exc}")
        print(f"  retryable={exc.retryable} reason={exc.remote_reason}")
        right.rollback()
    left.commit()
    for client in (left, right, reader):
        client.close()

    # -- graceful drain ------------------------------------------------------
    stats = relaxed.server_stats()
    print(f"\n{stats['session_count']} session(s) live before shutdown")
    server.shutdown(close_database=False)
    try:
        GraphClient(host, port)
    except (ServerDrainingError, OSError) as exc:
        print(f"new session after drain refused: {type(exc).__name__}")
    # Acked work is still there for embedded use (or the next server).
    with db.begin(read_only=True) as tx:
        names = sorted(node["name"] for node in tx.find_nodes(label="Person"))
    print(f"durable after drain: {names}")
    db.close()


if __name__ == "__main__":
    main()
