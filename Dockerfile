# Runs the graph database as a network service (see docker-compose.yml).
# The engine is pure standard-library Python, so the slim base needs no
# extra packages installed.
FROM python:3.12-slim

WORKDIR /app
COPY src/ src/
ENV PYTHONPATH=/app/src \
    PYTHONUNBUFFERED=1

# Store directory is a volume so the graph survives container restarts.
VOLUME /data

EXPOSE 7688 9464

# SIGTERM (docker stop) triggers the graceful drain: in-flight requests
# finish and are acked, then the process exits 0.
ENTRYPOINT ["python", "-m", "repro.server"]
CMD ["--path", "/data/graph", "--host", "0.0.0.0", "--port", "7688", \
     "--metrics-port", "9464", "--isolation", "snapshot"]
