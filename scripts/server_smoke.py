#!/usr/bin/env python
"""End-to-end smoke of the network service layer, as CI runs it.

The script is the deployment acceptance test:

1. start ``python -m repro.server`` as a real subprocess on ephemeral ports
   (database on disk, ``/metrics`` exporter on);
2. run 8 concurrent clients with per-session isolation requests spread over
   all three levels and a mixed read/write load, retrying retryable aborts;
3. scrape ``/metrics`` and assert the server instruments are exported;
4. SIGTERM the server mid-load and assert it exits 0 (graceful drain);
5. reopen the store directory and assert every *acked* commit is durable.

Exits non-zero with a diagnostic on any violation.  Usage::

    PYTHONPATH=src python scripts/server_smoke.py
"""

import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request

from repro import GraphDatabase
from repro.client import GraphClient
from repro.errors import ProtocolError, ReproError, ServerError

CLIENTS = 8
WARMUP_ACKS = 40  # drain fires only after this much load is in flight
ISOLATION_MIX = ["read_committed", "snapshot", "serializable", None]


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def start_server(db_path):
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.server",
            "--path",
            db_path,
            "--port",
            "0",
            "--metrics-port",
            "0",
            "--isolation",
            "snapshot",
        ],
        stdout=subprocess.PIPE,
        text=True,
    )
    address = metrics_url = None
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline and (address is None or metrics_url is None):
        line = proc.stdout.readline()
        if not line:
            break
        sys.stdout.write(f"server: {line}")
        listening = re.match(r"listening (\S+):(\d+)", line)
        if listening:
            address = (listening.group(1), int(listening.group(2)))
        metrics = re.match(r"metrics (\S+)", line)
        if metrics:
            metrics_url = metrics.group(1)
    if address is None or metrics_url is None:
        proc.kill()
        fail("server did not report its listening/metrics addresses")
    return proc, address, metrics_url


def worker(tid, address, acked, acked_lock, stop_reasons):
    host, port = address
    isolation = ISOLATION_MIX[tid % len(ISOLATION_MIX)]
    try:
        client = GraphClient(
            host, port, isolation=isolation, client_name=f"smoke-{tid}"
        )
    except (ReproError, OSError) as exc:
        stop_reasons.append(f"client {tid} could not connect: {exc}")
        return
    seq = 0
    with client:
        while True:
            name = f"{tid}-{seq}"
            try:
                if seq % 5 == 4:
                    # Mixed load: every fifth operation is an explicit
                    # read-then-write transaction instead of an auto-commit.
                    client.begin()
                    client.execute("MATCH (n:Smoke) RETURN count(n)")
                    client.execute("CREATE (:Smoke {name: $n})", n=name)
                    client.commit()
                else:
                    client.execute("CREATE (:Smoke {name: $n})", n=name)
            except (ServerError, ProtocolError, OSError):
                return  # drain or connection teardown: never acked
            except ReproError as exc:
                if getattr(exc, "retryable", False):
                    continue
                stop_reasons.append(f"client {tid} hit non-retryable {exc!r}")
                return
            with acked_lock:
                acked.append(name)
            seq += 1


def main():
    with tempfile.TemporaryDirectory() as tmp:
        db_path = f"{tmp}/db"
        proc, address, metrics_url = start_server(db_path)
        drainer = threading.Thread(
            target=lambda: [line for line in proc.stdout], daemon=True
        )
        drainer.start()

        acked, acked_lock, stop_reasons = [], threading.Lock(), []
        threads = [
            threading.Thread(
                target=worker, args=(tid, address, acked, acked_lock, stop_reasons)
            )
            for tid in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()

        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            with acked_lock:
                if len(acked) >= WARMUP_ACKS:
                    break
            time.sleep(0.05)
        else:
            proc.kill()
            fail(f"load never ramped up: {stop_reasons}")

        with urllib.request.urlopen(f"{metrics_url}/metrics", timeout=10) as response:
            metrics = response.read().decode()
        for needle in (
            "repro_server_sessions",
            'repro_server_requests_total{op="execute"}',
            "repro_txn_committed_total",
        ):
            if needle not in metrics:
                proc.kill()
                fail(f"metrics scrape is missing {needle}")
        print(f"metrics scrape ok ({len(metrics.splitlines())} lines)")

        print("sending SIGTERM mid-load")
        proc.send_signal(signal.SIGTERM)
        returncode = proc.wait(timeout=30)
        for thread in threads:
            thread.join(timeout=30)
        if returncode != 0:
            fail(f"server exited {returncode}, expected a clean drain (0)")
        if stop_reasons:
            fail(f"client errors during the run: {stop_reasons}")
        print(f"server drained cleanly; {len(acked)} acked commits")

        db = GraphDatabase.open(db_path)
        try:
            with db.begin(read_only=True) as tx:
                durable = {node["name"] for node in tx.find_nodes(label="Smoke")}
        finally:
            db.close()
        missing = sorted(set(acked) - durable)
        if missing:
            fail(f"{len(missing)} acked commits lost in drain: {missing[:10]}")
        print(f"durability ok: all {len(acked)} acked commits present after reopen")
        print("PASS")


if __name__ == "__main__":
    main()
