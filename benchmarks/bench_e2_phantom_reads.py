"""E2 — phantom reads on predicate scans (paper Section 1).

Claim: read committed lets a repeated predicate selection (label scan) return
different result sets within one transaction; snapshot isolation — thanks to
the multi-versioned label/property indexes — returns the same set both times.

Workload: writer threads insert and delete ``Person`` nodes while readers run
the same label scan twice per transaction.
"""

from __future__ import annotations

import pytest

from repro.workload.anomaly import check_phantom_read
from repro.workload.generators import build_social_graph
from repro.workload.operations import delete_random_node, insert_labelled_node
from repro.workload.runner import ConcurrentWorkloadRunner, WorkerOutcome

from bench_helpers import open_db, print_row

WORKERS = 6
OPS_PER_WORKER = 30


def _run_experiment(isolation):
    db = open_db(isolation)
    graph = build_social_graph(db, people=40, avg_friends=2, seed=13)
    victims = list(graph.group("people"))

    def work(db, rng, worker_id, _iteration):
        outcome = WorkerOutcome()
        if worker_id % 2 == 0:
            with db.transaction() as tx:
                if rng.random() < 0.6:
                    insert_labelled_node(tx, "Person", rng)
                else:
                    delete_random_node(tx, victims, rng)
        else:
            with db.transaction(read_only=True) as tx:
                outcome.anomalies.checks += 1
                if check_phantom_read(tx, label="Person", delay_seconds=0.002):
                    outcome.anomalies.phantom_reads += 1
        return outcome

    runner = ConcurrentWorkloadRunner(
        db, workers=WORKERS, operations_per_worker=OPS_PER_WORKER, seed=17
    )
    result = runner.run(work)
    db.close()
    return result


@pytest.mark.benchmark(group="e2-phantom-reads")
def test_e2_phantom_reads(benchmark, isolation):
    result = benchmark.pedantic(_run_experiment, args=(isolation,), rounds=1, iterations=1)
    checks = max(1, result.anomalies.checks)
    row = {
        "isolation": isolation.value,
        "scan_txns": result.anomalies.checks,
        "phantom_reads": result.anomalies.phantom_reads,
        "per_100_scans": round(100.0 * result.anomalies.phantom_reads / checks, 2),
        "committed": result.committed,
        "aborted": result.aborted,
    }
    benchmark.extra_info.update(row)
    print_row("E2", row)
    if isolation.value == "snapshot":
        assert result.anomalies.phantom_reads == 0
