"""Pytest fixtures shared by the experiment benchmarks."""

from __future__ import annotations

import pytest

from repro import IsolationLevel


@pytest.fixture(params=[IsolationLevel.READ_COMMITTED, IsolationLevel.SNAPSHOT],
                ids=["read_committed", "snapshot"])
def isolation(request) -> IsolationLevel:
    """Parametrises an experiment over both isolation levels."""
    return request.param
