"""E7 — the enriched iterator and the multi-versioned indexes (paper Section 4).

Claims measured here:

* the enriched store iterator merges the transaction's own uncommitted writes
  with cached versions (read-your-own-writes) at a modest overhead over a
  plain committed-state scan, and
* multi-versioned index lookups stay snapshot-consistent while versions
  accumulate, with lookup cost growing only with the number of retained
  intervals for the queried key.

Series: time per full label scan (a) with no pending writes, (b) with the
transaction's own pending writes, and (c) with accumulated committed history
from a pinned reader.
"""

from __future__ import annotations

import pytest

from repro import IsolationLevel
from repro.workload.generators import build_social_graph

from bench_helpers import open_db, print_row

PEOPLE = 300
OWN_WRITES = 100
HISTORY_UPDATES = 200


def _scan(tx):
    return len(tx.find_nodes(label="Person"))


@pytest.mark.benchmark(group="e7-iterator-index")
def test_e7_plain_snapshot_scan(benchmark):
    db = open_db(IsolationLevel.SNAPSHOT)
    build_social_graph(db, people=PEOPLE, avg_friends=2, seed=47)
    tx = db.begin(read_only=True)
    count = benchmark(_scan, tx)
    row = {"scenario": "committed_only", "people": PEOPLE, "scan_result": count}
    benchmark.extra_info.update(row)
    print_row("E7", row)
    assert count == PEOPLE
    tx.rollback()
    db.close()


@pytest.mark.benchmark(group="e7-iterator-index")
def test_e7_scan_with_own_writes(benchmark):
    db = open_db(IsolationLevel.SNAPSHOT)
    build_social_graph(db, people=PEOPLE, avg_friends=2, seed=47)
    tx = db.begin()
    for index in range(OWN_WRITES):
        tx.create_node(["Person"], {"name": f"pending-{index}"})
    count = benchmark(_scan, tx)
    row = {
        "scenario": "own_writes_merged",
        "people": PEOPLE,
        "own_pending_writes": OWN_WRITES,
        "scan_result": count,
    }
    benchmark.extra_info.update(row)
    print_row("E7", row)
    # Read-your-own-writes: the pending nodes are part of this scan only.
    assert count == PEOPLE + OWN_WRITES
    tx.rollback()
    db.close()


@pytest.mark.benchmark(group="e7-iterator-index")
def test_e7_scan_with_version_history(benchmark):
    db = open_db(IsolationLevel.SNAPSHOT)
    graph = build_social_graph(db, people=PEOPLE, avg_friends=2, seed=47)
    hot = graph.group("people")[:20]
    pin = db.begin(read_only=True)
    pin.get_node(hot[0])
    for index in range(HISTORY_UPDATES):
        with db.transaction() as tx:
            node_id = hot[index % len(hot)]
            tx.set_node_property(node_id, "score", index)
    tx = db.begin(read_only=True)
    count = benchmark(_scan, tx)
    row = {
        "scenario": "with_retained_history",
        "people": PEOPLE,
        "retained_versions": db.engine.versions.total_versions(),
        "scan_result": count,
    }
    benchmark.extra_info.update(row)
    print_row("E7", row)
    assert count == PEOPLE
    tx.rollback()
    pin.rollback()
    db.close()
