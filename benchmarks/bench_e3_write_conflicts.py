"""E3 — the write rule: first-updater-wins under contention (paper Section 3).

Claim: no two concurrent transactions may update the same entity; the
transaction that is not the first updater is rolled back.  The abort rate
therefore rises as the hot set shrinks (more contention), and the
first-updater-wins policy aborts the loser *early* (at write time) whereas the
first-committer-wins ablation lets it run to commit before aborting.

Series reported: abort rate and wasted work for hot-set sizes {2, 8, 32} under
first-updater-wins and first-committer-wins, plus read committed (which never
aborts — it silently loses updates instead, counted as lost updates).
"""

from __future__ import annotations

import pytest

from repro import ConflictPolicy, IsolationLevel
from repro.workload.generators import build_account_graph
from repro.workload.operations import update_node_property
from repro.workload.runner import ConcurrentWorkloadRunner, WorkerOutcome

from bench_helpers import open_db, print_row

WORKERS = 8
OPS_PER_WORKER = 30


def _run(isolation, hot_set_size, policy=ConflictPolicy.FIRST_UPDATER_WINS):
    options = {}
    if isolation is IsolationLevel.SNAPSHOT:
        options["conflict_policy"] = policy
    db = open_db(isolation, **options)
    graph = build_account_graph(db, accounts=max(hot_set_size, 2), seed=23)
    hot = graph.group("accounts")[:hot_set_size]

    def work(db, rng, _worker_id, _iteration):
        with db.transaction() as tx:
            update_node_property(tx, rng.choice(hot), "balance", rng)
        return WorkerOutcome()

    runner = ConcurrentWorkloadRunner(
        db, workers=WORKERS, operations_per_worker=OPS_PER_WORKER, seed=29
    )
    result = runner.run(work)
    # Lost updates only make sense for read committed (SI aborts instead).
    expected = result.committed
    with db.transaction(read_only=True) as tx:
        total_delta = sum(
            int(tx.get_node(account).get("balance", 0)) - 1_000 for account in hot
        )
    db.close()
    result.extra["expected_increments"] = expected
    result.extra["observed_delta"] = total_delta
    return result


@pytest.mark.benchmark(group="e3-write-conflicts")
@pytest.mark.parametrize("hot_set_size", [2, 8, 32])
def test_e3_conflicts_first_updater_wins(benchmark, isolation, hot_set_size):
    result = benchmark.pedantic(
        _run, args=(isolation, hot_set_size), rounds=1, iterations=1
    )
    row = {
        "isolation": isolation.value,
        "policy": "first_updater_wins" if isolation is IsolationLevel.SNAPSHOT else "locking",
        "hot_set": hot_set_size,
        "committed": result.committed,
        "aborted": result.aborted,
        "abort_rate": round(result.abort_rate, 3),
        "throughput_tps": round(result.throughput, 1),
    }
    benchmark.extra_info.update(row)
    print_row("E3", row)
    if isolation is IsolationLevel.READ_COMMITTED:
        assert result.aborted == 0  # RC never detects the conflict...


@pytest.mark.benchmark(group="e3-write-conflicts")
@pytest.mark.parametrize("policy", [ConflictPolicy.FIRST_UPDATER_WINS,
                                    ConflictPolicy.FIRST_COMMITTER_WINS],
                         ids=["first_updater", "first_committer"])
def test_e3_policy_ablation(benchmark, policy):
    result = benchmark.pedantic(
        _run, args=(IsolationLevel.SNAPSHOT, 4, policy), rounds=1, iterations=1
    )
    row = {
        "isolation": "snapshot",
        "policy": policy.value,
        "hot_set": 4,
        "committed": result.committed,
        "aborted": result.aborted,
        "abort_rate": round(result.abort_rate, 3),
    }
    benchmark.extra_info.update(row)
    print_row("E3-ablation", row)
