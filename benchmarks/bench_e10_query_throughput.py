"""E10 — declarative query throughput under concurrent writers.

The query subsystem compiles a Cypher-subset query and runs it entirely
inside one transaction, so under snapshot isolation a long MATCH observes a
single snapshot while committers run.  This experiment measures what that
costs (and buys): four reader threads drain the weighted query mix from
:mod:`repro.workload.queries` while four writer threads commit score bumps
and new friendships, under both isolation levels.

Per cell we record completed queries/second, write throughput, conflicts and
the per-template query counts.  Results go to
``BENCH_e10_query_throughput.json`` so future PRs can track the trajectory.
Run standalone::

    PYTHONPATH=src python benchmarks/bench_e10_query_throughput.py

or through pytest (reduced duration)::

    PYTHONPATH=src python -m pytest benchmarks/bench_e10_query_throughput.py -q
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import threading
import time
from typing import Dict, List

sys.path.insert(0, os.path.dirname(__file__))

from repro import GraphDatabase, IsolationLevel, TransactionAbortedError
from repro.workload import (
    QueryMix,
    READ_TEMPLATES,
    WRITE_TEMPLATES,
    build_social_graph,
    person_names_of,
)

from repro.workload.metrics import LatencyRecorder

from bench_helpers import (
    abort_reasons_of,
    latency_percentiles,
    open_db,
    print_row,
    write_json,
)

PEOPLE = 200
AVG_FRIENDS = 4
READERS = 4
WRITERS = 4


def _run_cell(isolation: IsolationLevel, *, seconds: float, readers: int,
              writers: int, seed: int = 7) -> Dict[str, object]:
    """One isolation-level cell: readers drain the mix while writers commit."""
    db = open_db(isolation)
    build_social_graph(db, people=PEOPLE, avg_friends=AVG_FRIENDS, seed=seed)
    names = person_names_of(db)
    read_mix = QueryMix(names, READ_TEMPLATES)
    write_mix = QueryMix(names, WRITE_TEMPLATES)

    stop = threading.Event()
    barrier = threading.Barrier(readers + writers + 1)
    query_counts = [0] * readers
    row_counts = [0] * readers
    template_counts: List[Dict[str, int]] = [dict() for _ in range(readers)]
    write_counts = [0] * writers
    conflict_counts = [0] * writers
    read_latencies = LatencyRecorder()
    write_latencies = LatencyRecorder()

    def reader(reader_id: int) -> None:
        rng = random.Random(seed * 1_009 + reader_id)
        barrier.wait()
        while not stop.is_set():
            template, params = read_mix.sample(rng)
            op_started = time.perf_counter()
            try:
                with db.transaction(read_only=True) as tx:
                    result = tx.execute(template.text, params)
                    row_counts[reader_id] += len(result.records())
            except TransactionAbortedError:
                # An RC reader can lose a conservative deadlock check against
                # a writer's long locks; retry instead of dying mid-cell.
                continue
            read_latencies.record(time.perf_counter() - op_started)
            query_counts[reader_id] += 1
            counts = template_counts[reader_id]
            counts[template.name] = counts.get(template.name, 0) + 1

    def writer(writer_id: int) -> None:
        rng = random.Random(seed * 2_003 + writer_id)
        barrier.wait()
        while not stop.is_set():
            template, params = write_mix.sample(rng)
            op_started = time.perf_counter()
            try:
                with db.transaction() as tx:
                    tx.execute(template.text, params)
                write_latencies.record(time.perf_counter() - op_started)
                write_counts[writer_id] += 1
            except TransactionAbortedError:
                conflict_counts[writer_id] += 1

    threads = [
        threading.Thread(target=reader, args=(i,), daemon=True) for i in range(readers)
    ] + [
        threading.Thread(target=writer, args=(i,), daemon=True) for i in range(writers)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    time.sleep(seconds)
    stop.set()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - started

    queries = sum(query_counts)
    merged_templates: Dict[str, int] = {}
    for counts in template_counts:
        for name, count in counts.items():
            merged_templates[name] = merged_templates.get(name, 0) + count
    row: Dict[str, object] = {
        "isolation": isolation.value,
        "readers": readers,
        "writers": writers,
        "duration_seconds": round(duration, 3),
        "queries": queries,
        "queries_per_second": round(queries / duration, 1),
        "rows_returned": sum(row_counts),
        "writes_committed": sum(write_counts),
        "writes_per_second": round(sum(write_counts) / duration, 1),
        "write_conflicts": sum(conflict_counts),
        "read_latency": latency_percentiles(read_latencies),
        "write_latency": latency_percentiles(write_latencies),
        "abort_reasons": abort_reasons_of(db),
        "query_mix": merged_templates,
    }
    db.close()
    return row


def run_benchmark(*, seconds: float = 4.0, readers: int = READERS,
                  writers: int = WRITERS, output: str = None) -> Dict[str, object]:
    """Both isolation levels, one JSON result document."""
    rows = []
    for isolation in (IsolationLevel.SNAPSHOT, IsolationLevel.READ_COMMITTED):
        row = _run_cell(isolation, seconds=seconds, readers=readers, writers=writers)
        hidden = ("query_mix", "abort_reasons", "read_latency", "write_latency")
        print_row("E10", {k: v for k, v in row.items() if k not in hidden})
        rows.append(row)
    payload: Dict[str, object] = {
        "experiment": "e10_query_throughput",
        "workload": {
            "people": PEOPLE,
            "avg_friends": AVG_FRIENDS,
            "readers": readers,
            "writers": writers,
            "seconds_per_cell": seconds,
            "read_templates": [t.name for t in READ_TEMPLATES],
            "write_templates": [t.name for t in WRITE_TEMPLATES],
        },
        "series": rows,
    }
    if output is None:
        output = "BENCH_e10_query_throughput.json"
    write_json(output, payload)
    si_row = rows[0]
    print(
        f"\n[E10] wrote {output}  "
        f"si_queries_per_second={si_row['queries_per_second']} "
        f"under {si_row['writers']} writers"
    )
    return payload


def test_e10_query_throughput(tmp_path):
    """Reduced duration for pytest runs: both engines serve the mix and emit JSON."""
    output = str(tmp_path / "BENCH_e10_query_throughput.json")
    payload = run_benchmark(seconds=1.0, output=output)
    assert os.path.exists(output)
    by_isolation = {row["isolation"]: row for row in payload["series"]}
    snapshot = by_isolation["snapshot"]
    assert snapshot["writers"] == 4
    assert snapshot["queries"] > 0
    assert snapshot["writes_committed"] > 0
    assert by_isolation["read_committed"]["queries"] > 0
    assert snapshot["read_latency"]["count"] == snapshot["queries"]
    assert snapshot["read_latency"]["p50"] <= snapshot["read_latency"]["p99"]
    assert "ww-conflict" in snapshot["abort_reasons"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seconds", type=float, default=4.0, help="measured duration per cell"
    )
    parser.add_argument("--readers", type=int, default=READERS)
    parser.add_argument("--writers", type=int, default=WRITERS)
    parser.add_argument(
        "--output",
        default="BENCH_e10_query_throughput.json",
        help="where to write the result document",
    )
    args = parser.parse_args()
    run_benchmark(
        seconds=args.seconds,
        readers=args.readers,
        writers=args.writers,
        output=args.output,
    )
