"""E9 — commit scaling: committed transactions/sec vs committer threads.

The seed serialised every snapshot-isolation commit behind one global mutex,
so adding committer threads could never add commit throughput.  The sharded
pipeline serialises only commits whose write sets share a stripe, publishes
snapshots through the oracle's contiguous watermark, and (with group commit)
coalesces concurrent committers' WAL appends — one fsync per *group*.

This experiment drives 1/2/4/8 committer threads over **disjoint** write sets
(each thread updates only its own accounts) against an on-disk store with
``wal_sync=True``, so every commit pays a real durability round trip:

* ``global_mutex`` — ``commit_stripes=1``, no group commit (the seed path),
* ``sharded`` — striped commit locks plus group commit.

Results go to ``BENCH_e9_commit_scaling.json`` so future PRs can track the
trajectory.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_e9_commit_scaling.py

or through pytest (reduced matrix)::

    PYTHONPATH=src python -m pytest benchmarks/bench_e9_commit_scaling.py -q
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import threading
import time
from typing import Dict, List

sys.path.insert(0, os.path.dirname(__file__))

from repro import GraphDatabase, IsolationLevel, WriteWriteConflictError

from bench_helpers import print_row, write_json

DEFAULT_THREADS = (1, 2, 4, 8)
ACCOUNTS_PER_THREAD = 8

CONFIGS = {
    "global_mutex": {"commit_stripes": 1, "group_commit": False},
    "sharded": {"commit_stripes": 32, "group_commit": True},
}


def _run_cell(config: str, threads: int, ops_per_thread: int) -> Dict[str, object]:
    """One (config, thread-count) cell: disjoint per-thread account updates."""
    options = CONFIGS[config]
    with tempfile.TemporaryDirectory(prefix="bench_e9_") as path:
        db = GraphDatabase.open(
            os.path.join(path, "store"),
            isolation=IsolationLevel.SNAPSHOT,
            wal_sync=True,
            **options,
        )
        with db.transaction() as tx:
            owned: List[List[int]] = [
                [
                    tx.create_node(labels=["Account"], properties={"balance": 0}).id
                    for _ in range(ACCOUNTS_PER_THREAD)
                ]
                for _ in range(threads)
            ]

        barrier = threading.Barrier(threads + 1)
        committed_counts = [0] * threads
        retry_counts = [0] * threads

        def worker(worker_id: int, accounts: List[int]) -> None:
            # The write sets are disjoint, but under out-of-order publication
            # a snapshot can briefly lag this thread's own previous commit
            # (the watermark waits for older in-flight committers), which
            # first-updater-wins conservatively aborts.  Real applications
            # retry; so does the benchmark, and only successes are counted.
            barrier.wait()
            for iteration in range(ops_per_thread):
                while True:
                    try:
                        with db.transaction() as tx:
                            tx.set_node_property(
                                accounts[iteration % len(accounts)],
                                "balance",
                                iteration,
                            )
                        committed_counts[worker_id] += 1
                        break
                    except WriteWriteConflictError:
                        retry_counts[worker_id] += 1

        pool = [
            threading.Thread(target=worker, args=(i, owned[i]), daemon=True)
            for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in pool:
            thread.join()
        duration = time.perf_counter() - started

        engine_stats = db.engine.statistics()
        store_stats = db.store.stats
        committed = sum(committed_counts)
        row: Dict[str, object] = {
            "config": config,
            "threads": threads,
            "committed": committed,
            "conflict_retries": sum(retry_counts),
            "duration_seconds": round(duration, 4),
            "committed_per_second": round(committed / duration, 1),
            "stripe_waits": engine_stats["commit_pipeline"]["stripe_waits"],
            "group_flushes": store_stats.group_flushes,
            "group_max_coalesced": store_stats.group_max_coalesced,
        }
        db.close()
        return row


def run_scaling(
    threads_series=DEFAULT_THREADS, ops_per_thread: int = 40, output: str = None
) -> Dict[str, object]:
    """Run the full matrix and write the JSON result document."""
    rows = []
    for config in CONFIGS:
        for threads in threads_series:
            row = _run_cell(config, threads, ops_per_thread)
            print_row("E9", row)
            rows.append(row)

    def tps(config: str, threads: int) -> float:
        for row in rows:
            if row["config"] == config and row["threads"] == threads:
                return float(row["committed_per_second"])
        return 0.0

    speedup_threads = 4 if 4 in threads_series else max(threads_series)
    baseline = tps("global_mutex", speedup_threads)
    payload: Dict[str, object] = {
        "experiment": "e9_commit_scaling",
        "workload": {
            "accounts_per_thread": ACCOUNTS_PER_THREAD,
            "ops_per_thread": ops_per_thread,
            "threads_series": list(threads_series),
            "wal_sync": True,
            "disjoint_write_sets": True,
        },
        "configs": CONFIGS,
        "series": rows,
        "speedup_at_threads": speedup_threads,
        "sharded_speedup": round(
            tps("sharded", speedup_threads) / baseline, 3
        )
        if baseline
        else None,
    }
    if output is None:
        output = "BENCH_e9_commit_scaling.json"
    write_json(output, payload)
    print(f"\n[E9] wrote {output}  sharded_speedup={payload['sharded_speedup']}x")
    return payload


def test_e9_commit_scaling(tmp_path):
    """Reduced matrix for pytest runs: the pipeline scales and emits JSON."""
    output = str(tmp_path / "BENCH_e9_commit_scaling.json")
    payload = run_scaling(threads_series=(1, 4), ops_per_thread=15, output=output)
    assert os.path.exists(output)
    by_key = {(row["config"], row["threads"]): row for row in payload["series"]}
    assert by_key[("sharded", 4)]["committed"] == 60
    assert by_key[("global_mutex", 4)]["committed"] == 60


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ops-per-thread", type=int, default=40, help="commits per thread per cell"
    )
    parser.add_argument(
        "--threads",
        type=int,
        nargs="+",
        default=list(DEFAULT_THREADS),
        help="committer thread counts to sweep",
    )
    parser.add_argument(
        "--output",
        default="BENCH_e9_commit_scaling.json",
        help="where to write the result document",
    )
    args = parser.parse_args()
    run_scaling(
        threads_series=tuple(args.threads),
        ops_per_thread=args.ops_per_thread,
        output=args.output,
    )
