"""Executor regression guard: the batch runtime must not lose to the row one.

A tiny single-threaded run of the E10 read mix against the same small social
graph under both executors.  The vectorized batch executor is the default;
if a change makes it slower than the row-at-a-time reference on even this
mix, that is a regression worth failing CI over.  The guard asserts
``batch >= 1.0x row`` (the real margin is far larger — see
``BENCH_e10_query_throughput.json``) after taking the best of three rounds
per executor to shrug off scheduler noise.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_batch_guard.py

or through pytest (CI runs this)::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_guard.py -q
"""

from __future__ import annotations

import os
import random
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from repro import GraphDatabase, IsolationLevel
from repro.workload import QueryMix, READ_TEMPLATES, build_social_graph, person_names_of

PEOPLE = 120
AVG_FRIENDS = 4
SEED = 7
QUERIES = 150
ROUNDS = 3


def _mix_rate(executor: str) -> float:
    """Best-of-N queries/second for one executor on the tiny mix."""
    db = GraphDatabase.in_memory(
        isolation=IsolationLevel.SNAPSHOT, query_executor=executor
    )
    try:
        build_social_graph(db, people=PEOPLE, avg_friends=AVG_FRIENDS, seed=SEED)
        mix = QueryMix(person_names_of(db), READ_TEMPLATES)
        best = 0.0
        for round_number in range(ROUNDS):
            rng = random.Random(SEED * 31 + round_number)
            started = time.perf_counter()
            for _ in range(QUERIES):
                template, params = mix.sample(rng)
                with db.transaction(read_only=True) as tx:
                    tx.execute(template.text, params).consume()
            best = max(best, QUERIES / (time.perf_counter() - started))
        return best
    finally:
        db.close()


def run_guard() -> dict:
    row_rate = _mix_rate("row")
    batch_rate = _mix_rate("batch")
    return {
        "row_queries_per_second": round(row_rate, 1),
        "batch_queries_per_second": round(batch_rate, 1),
        "speedup": round(batch_rate / row_rate, 2),
    }


def test_batch_executor_not_slower_than_row():
    result = run_guard()
    print(f"[guard] {result}")
    assert result["speedup"] >= 1.0, (
        f"batch executor regressed below the row executor: {result}"
    )


if __name__ == "__main__":
    result = run_guard()
    print(
        f"[guard] row={result['row_queries_per_second']} q/s  "
        f"batch={result['batch_queries_per_second']} q/s  "
        f"speedup={result['speedup']}x"
    )
    if result["speedup"] < 1.0:
        raise SystemExit("batch executor regressed below the row executor")
