"""E5 — garbage collection: threaded list vs PostgreSQL-style vacuum (paper Section 4).

Claim: threading the obsolete versions on a doubly-linked list sorted by
timestamp reduces the cost of garbage collection to "traversing those versions
that must be garbage collected", whereas a vacuum-style collector scans every
chain and every store record and stalls commits while it runs.

Series: collection time for the threaded collector and the vacuum collector at
database sizes {500, 2000} nodes with a fixed number of dead versions, plus
how much of the database each collector had to examine.
"""

from __future__ import annotations

import pytest

from repro import IsolationLevel
from repro.workload.generators import build_social_graph

from bench_helpers import open_db, print_row

DEAD_VERSIONS = 300


def _prepare(db, graph, dead_versions):
    """Create exactly ``dead_versions`` obsolete versions on a small hot set."""
    people = graph.group("people")
    hot = people[: max(4, dead_versions // 50)]
    created = 0
    while created < dead_versions:
        with db.transaction() as tx:
            node_id = hot[created % len(hot)]
            node = tx.get_node(node_id)
            tx.set_node_property(node_id, "score", int(node.get("score", 0)) + 1)
        created += 1


@pytest.mark.benchmark(group="e5-gc")
@pytest.mark.parametrize("nodes", [500, 2000])
def test_e5_threaded_gc(benchmark, nodes):
    db = open_db(IsolationLevel.SNAPSHOT)
    graph = build_social_graph(db, people=nodes, avg_friends=2, seed=41)
    _prepare(db, graph, DEAD_VERSIONS)
    engine = db.engine

    stats = benchmark.pedantic(engine.run_gc, rounds=1, iterations=1)
    row = {
        "collector": "threaded_list",
        "db_nodes": nodes,
        "dead_versions": DEAD_VERSIONS,
        "versions_examined": stats.versions_examined,
        "versions_collected": stats.versions_collected,
        "store_records_scanned": 0,
        "duration_ms": round(stats.duration_seconds * 1000, 3),
    }
    benchmark.extra_info.update(row)
    print_row("E5", row)
    # The whole point of the threaded list: GC work is proportional to the
    # dead versions, not to the size of the database.
    assert stats.versions_examined <= DEAD_VERSIONS + 5
    db.close()


@pytest.mark.benchmark(group="e5-gc")
@pytest.mark.parametrize("nodes", [500, 2000])
def test_e5_vacuum_gc(benchmark, nodes):
    db = open_db(IsolationLevel.SNAPSHOT)
    graph = build_social_graph(db, people=nodes, avg_friends=2, seed=41)
    _prepare(db, graph, DEAD_VERSIONS)
    vacuum = db.create_vacuum_collector()

    stats = benchmark.pedantic(vacuum.collect, rounds=1, iterations=1)
    row = {
        "collector": "vacuum_full_scan",
        "db_nodes": nodes,
        "dead_versions": DEAD_VERSIONS,
        "versions_examined": stats.versions_examined,
        "versions_collected": stats.versions_collected,
        "store_records_scanned": stats.store_records_scanned,
        "duration_ms": round(stats.duration_seconds * 1000, 3),
    }
    benchmark.extra_info.update(row)
    print_row("E5", row)
    # Vacuum cost grows with database size: it touched every persistent record.
    assert stats.store_records_scanned >= nodes
    db.close()
