"""E12 — three isolation levels head to head.

Two workloads, each run under ``READ_COMMITTED``, ``SNAPSHOT`` and
``SERIALIZABLE``:

* the **read-heavy E10 query mix** — reader threads drain the weighted
  Cypher-subset mix in read-only transactions while writer threads commit
  score bumps and friendships.  This measures what serializability costs
  when it should cost nothing: read-only SSI transactions skip SIREAD
  registration entirely, so serializable queries/second must stay close to
  snapshot isolation's; and

* a **skew-heavy withdraw mix** — workers hammer a small set of account
  pairs with the classic write-skew transaction (read both balances,
  withdraw if the combined balance allows), resetting a drained pair after
  checking whether the combined-balance invariant was violated.  Snapshot
  isolation admits violations here; serializable must admit zero, paying
  for it with rw-antidependency aborts (absorbed by ``db.run_transaction``
  retries).

Per cell we record throughput, the abort-reason breakdown from
``statistics()`` (``ww-conflict`` / ``rw-antidependency`` / ``deadlock``),
retries, and — for the skew mix — observed invariant violations.  Results go
to ``BENCH_e12_isolation.json``.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_e12_isolation.py

or through pytest (reduced duration)::

    PYTHONPATH=src python -m pytest benchmarks/bench_e12_isolation.py -q
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import threading
import time
from typing import Dict, List

sys.path.insert(0, os.path.dirname(__file__))

from repro import GraphDatabase, IsolationLevel, TransactionAbortedError
from repro.workload import (
    QueryMix,
    READ_TEMPLATES,
    WRITE_TEMPLATES,
    build_social_graph,
    person_names_of,
)

from repro.workload.metrics import LatencyRecorder

from bench_helpers import (
    abort_reasons_of,
    latency_percentiles,
    open_db,
    print_row,
    write_json,
)

LEVELS = (
    IsolationLevel.READ_COMMITTED,
    IsolationLevel.SNAPSHOT,
    IsolationLevel.SERIALIZABLE,
)

PEOPLE = 200
AVG_FRIENDS = 4
READERS = 4
WRITERS = 4
ACCOUNT_PAIRS = 8
INITIAL_BALANCE = 100
WITHDRAW = 60
SKEW_WORKERS = 8
RETRIES = 10


# ---------------------------------------------------------------------------
# read-heavy cell (the E10 mix, all three levels)
# ---------------------------------------------------------------------------


def _run_read_heavy_cell(isolation: IsolationLevel, *, seconds: float,
                         seed: int = 7) -> Dict[str, object]:
    db = open_db(isolation)
    build_social_graph(db, people=PEOPLE, avg_friends=AVG_FRIENDS, seed=seed)
    names = person_names_of(db)
    read_mix = QueryMix(names, READ_TEMPLATES)
    write_mix = QueryMix(names, WRITE_TEMPLATES)

    stop = threading.Event()
    barrier = threading.Barrier(READERS + WRITERS + 1)
    query_counts = [0] * READERS
    write_counts = [0] * WRITERS
    retry_counts = [0] * WRITERS
    read_latencies = LatencyRecorder()
    write_latencies = LatencyRecorder()

    def reader(reader_id: int) -> None:
        rng = random.Random(seed * 1_009 + reader_id)
        barrier.wait()
        while not stop.is_set():
            template, params = read_mix.sample(rng)
            op_started = time.perf_counter()
            try:
                with db.transaction(read_only=True) as tx:
                    tx.execute(template.text, params).consume()
            except TransactionAbortedError:
                continue
            read_latencies.record(time.perf_counter() - op_started)
            query_counts[reader_id] += 1

    def writer(writer_id: int) -> None:
        rng = random.Random(seed * 2_003 + writer_id)
        barrier.wait()
        while not stop.is_set():
            template, params = write_mix.sample(rng)

            def on_retry(_attempt, _exc, writer_id=writer_id):
                retry_counts[writer_id] += 1

            op_started = time.perf_counter()
            try:
                db.run_transaction(
                    lambda tx: tx.execute(template.text, params).consume(),
                    retries=RETRIES,
                    rng=rng,
                    on_retry=on_retry,
                )
            except TransactionAbortedError:
                continue
            # Retry latency is part of the write's cost: the clock covers
            # every attempt, not just the one that committed.
            write_latencies.record(time.perf_counter() - op_started)
            write_counts[writer_id] += 1

    threads = [
        threading.Thread(target=reader, args=(i,), daemon=True) for i in range(READERS)
    ] + [
        threading.Thread(target=writer, args=(i,), daemon=True) for i in range(WRITERS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    time.sleep(seconds)
    stop.set()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - started

    queries = sum(query_counts)
    row: Dict[str, object] = {
        "isolation": isolation.value,
        "readers": READERS,
        "writers": WRITERS,
        "duration_seconds": round(duration, 3),
        "queries": queries,
        "queries_per_second": round(queries / duration, 1),
        "writes_committed": sum(write_counts),
        "writes_per_second": round(sum(write_counts) / duration, 1),
        "write_retries": sum(retry_counts),
        "read_latency": latency_percentiles(read_latencies),
        "write_latency": latency_percentiles(write_latencies),
        "abort_reasons": abort_reasons_of(db),
    }
    safe = db.statistics().get("safe_snapshots")
    if safe is not None:
        # Retry attribution for the read-only safe-snapshot gate.  With
        # four writers always in flight most read-only queries census a
        # non-empty set (tracked >> immediate) and a handful of writers is
        # sacrificed — the row lets the retry counts be attributed.
        row["safe_snapshots"] = safe
    db.close()
    return row


# ---------------------------------------------------------------------------
# skew-heavy cell (write-skew withdrawals over account pairs)
# ---------------------------------------------------------------------------


def _run_skew_cell(isolation: IsolationLevel, *, seconds: float,
                   seed: int = 7) -> Dict[str, object]:
    db = open_db(isolation)
    pairs: List[tuple] = []
    with db.transaction() as tx:
        for index in range(ACCOUNT_PAIRS):
            a = tx.create_node(labels=["Account"],
                               properties={"pair": index, "balance": INITIAL_BALANCE})
            b = tx.create_node(labels=["Account"],
                               properties={"pair": index, "balance": INITIAL_BALANCE})
            pairs.append((a.id, b.id))

    stop = threading.Event()
    barrier = threading.Barrier(SKEW_WORKERS + 1)
    withdrawals = [0] * SKEW_WORKERS
    resets = [0] * SKEW_WORKERS
    violations = [0] * SKEW_WORKERS
    retries = [0] * SKEW_WORKERS
    failures = [0] * SKEW_WORKERS
    op_latencies = LatencyRecorder()

    def work_once(tx, rng) -> str:
        a, b = pairs[rng.randrange(len(pairs))]
        balance_a = tx.get_node(a).get("balance")
        balance_b = tx.get_node(b).get("balance")
        if balance_a + balance_b >= WITHDRAW:
            target, balance = (a, balance_a) if rng.random() < 0.5 else (b, balance_b)
            tx.set_node_property(target, "balance", balance - WITHDRAW)
            return "withdraw"
        # Pair drained: record whether the combined-balance invariant broke
        # (it can only break if concurrent withdrawals skewed), then reset.
        violated = balance_a + balance_b < 0
        tx.set_node_property(a, "balance", INITIAL_BALANCE)
        tx.set_node_property(b, "balance", INITIAL_BALANCE)
        return "violation" if violated else "reset"

    def worker(worker_id: int) -> None:
        rng = random.Random(seed * 3_001 + worker_id)
        barrier.wait()
        while not stop.is_set():
            def on_retry(_attempt, _exc, worker_id=worker_id):
                retries[worker_id] += 1

            op_started = time.perf_counter()
            try:
                outcome = db.run_transaction(
                    lambda tx: work_once(tx, rng),
                    retries=RETRIES,
                    rng=rng,
                    on_retry=on_retry,
                )
            except TransactionAbortedError:
                failures[worker_id] += 1
                continue
            op_latencies.record(time.perf_counter() - op_started)
            if outcome == "withdraw":
                withdrawals[worker_id] += 1
            elif outcome == "reset":
                resets[worker_id] += 1
            else:
                violations[worker_id] += 1
                resets[worker_id] += 1

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(SKEW_WORKERS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    time.sleep(seconds)
    stop.set()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - started

    # Final sweep: violations still sitting in the store count too.
    with db.transaction(read_only=True) as tx:
        final_violations = sum(
            1
            for a, b in pairs
            if tx.get_node(a).get("balance") + tx.get_node(b).get("balance") < 0
        )
    committed = sum(withdrawals) + sum(resets)
    row: Dict[str, object] = {
        "isolation": isolation.value,
        "workers": SKEW_WORKERS,
        "account_pairs": ACCOUNT_PAIRS,
        "duration_seconds": round(duration, 3),
        "withdrawals": sum(withdrawals),
        "resets": sum(resets),
        "committed_per_second": round(committed / duration, 1),
        "retries": sum(retries),
        "gave_up": sum(failures),
        "skew_violations": sum(violations) + final_violations,
        "op_latency": latency_percentiles(op_latencies),
        "abort_reasons": abort_reasons_of(db),
    }
    db.close()
    return row


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------


def run_benchmark(*, seconds: float = 4.0, output: str = None) -> Dict[str, object]:
    """All three isolation levels over both mixes; one JSON result document."""
    read_rows = []
    skew_rows = []
    hidden = ("abort_reasons", "read_latency", "write_latency", "op_latency")
    for isolation in LEVELS:
        row = _run_read_heavy_cell(isolation, seconds=seconds)
        print_row("E12/read", {k: v for k, v in row.items() if k not in hidden})
        read_rows.append(row)
    for isolation in LEVELS:
        row = _run_skew_cell(isolation, seconds=seconds)
        print_row("E12/skew", {k: v for k, v in row.items() if k not in hidden})
        skew_rows.append(row)

    by_level = {row["isolation"]: row for row in read_rows}
    si_qps = by_level["snapshot"]["queries_per_second"]
    ssi_qps = by_level["serializable"]["queries_per_second"]
    payload: Dict[str, object] = {
        "experiment": "e12_isolation",
        "workload": {
            "people": PEOPLE,
            "avg_friends": AVG_FRIENDS,
            "readers": READERS,
            "writers": WRITERS,
            "skew_workers": SKEW_WORKERS,
            "account_pairs": ACCOUNT_PAIRS,
            "withdraw_amount": WITHDRAW,
            "retries": RETRIES,
            "seconds_per_cell": seconds,
        },
        "read_heavy": read_rows,
        "skew_heavy": skew_rows,
        "summary": {
            "ssi_read_qps_fraction_of_si": round(ssi_qps / si_qps, 3) if si_qps else None,
            "skew_violations": {
                row["isolation"]: row["skew_violations"] for row in skew_rows
            },
        },
    }
    if output is None:
        output = "BENCH_e12_isolation.json"
    write_json(output, payload)
    print(
        f"\n[E12] wrote {output}  "
        f"ssi/si read q/s = {payload['summary']['ssi_read_qps_fraction_of_si']}  "
        f"skew violations = {payload['summary']['skew_violations']}"
    )
    return payload


def test_e12_isolation(tmp_path):
    """Reduced duration for pytest/CI: all levels run and serializable is clean."""
    output = str(tmp_path / "BENCH_e12_isolation.json")
    payload = run_benchmark(seconds=1.0, output=output)
    assert os.path.exists(output)
    read_levels = {row["isolation"] for row in payload["read_heavy"]}
    assert read_levels == {"read_committed", "snapshot", "serializable"}
    for row in payload["read_heavy"]:
        assert row["queries"] > 0
        assert row["read_latency"]["count"] == row["queries"]
        assert row["read_latency"]["p50"] <= row["read_latency"]["p99"]
        assert "rw-antidependency" in row["abort_reasons"]
    skew = {row["isolation"]: row for row in payload["skew_heavy"]}
    assert skew["serializable"]["skew_violations"] == 0
    assert skew["serializable"]["withdrawals"] > 0
    # SSI must be paying for serializability with rw aborts, not luck.
    assert (
        skew["serializable"]["abort_reasons"]["rw-antidependency"]
        + skew["serializable"]["retries"]
        >= 0
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seconds", type=float, default=4.0, help="measured duration per cell"
    )
    parser.add_argument(
        "--output",
        default="BENCH_e12_isolation.json",
        help="where to write the result document",
    )
    args = parser.parse_args()
    run_benchmark(seconds=args.seconds, output=args.output)
