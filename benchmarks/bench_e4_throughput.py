"""E4 — removing read locks: throughput and latency, RC vs SI (paper Sections 1 and 4).

Claim: snapshot isolation drops the short read locks entirely, so readers
never queue behind writers (and writers never wait for readers).  Under a
mixed workload the read-committed baseline loses throughput as soon as writes
touch what readers read; the MVCC engine does not.

Series: committed transactions per second and p95 latency for read fractions
{0.5, 0.9} under each isolation level.
"""

from __future__ import annotations

import pytest

from repro.workload.generators import build_social_graph
from repro.workload.operations import (
    read_node_properties,
    traverse_neighbourhood,
    update_node_property,
)
from repro.workload.runner import ConcurrentWorkloadRunner, WorkerOutcome

from bench_helpers import open_db, print_row

WORKERS = 6
OPS_PER_WORKER = 40
HOT_NODES = 8


def _run(isolation, read_fraction):
    db = open_db(isolation)
    graph = build_social_graph(db, people=120, avg_friends=4, seed=31)
    people = graph.group("people")
    hot = people[:HOT_NODES]

    def work(db, rng, _worker_id, _iteration):
        if rng.random() < read_fraction:
            with db.transaction(read_only=True) as tx:
                read_node_properties(tx, rng.choice(hot))
                traverse_neighbourhood(tx, rng.choice(people), depth=1, rel_types=["KNOWS"])
        else:
            with db.transaction() as tx:
                update_node_property(tx, rng.choice(hot), "score", rng)
        return WorkerOutcome()

    runner = ConcurrentWorkloadRunner(
        db, workers=WORKERS, operations_per_worker=OPS_PER_WORKER, seed=37
    )
    result = runner.run(work)
    db.close()
    return result


@pytest.mark.benchmark(group="e4-throughput")
@pytest.mark.parametrize("read_fraction", [0.5, 0.9])
def test_e4_mixed_workload_throughput(benchmark, isolation, read_fraction):
    result = benchmark.pedantic(_run, args=(isolation, read_fraction), rounds=1, iterations=1)
    latency = result.latencies.summary()
    row = {
        "isolation": isolation.value,
        "read_fraction": read_fraction,
        "committed": result.committed,
        "aborted": result.aborted,
        "throughput_tps": round(result.throughput, 1),
        "latency_p50_ms": round(latency["p50"] * 1000, 2),
        "latency_p95_ms": round(latency["p95"] * 1000, 2),
    }
    benchmark.extra_info.update(row)
    print_row("E4", row)
