"""E6 — version retention under a long-running reader (paper Sections 3 and 4).

Claim: obsolete versions (and tombstones) are retained exactly as long as an
active transaction might still read them; once the oldest active transaction
finishes, garbage collection reclaims everything older than the watermark.

Series: retained version count and index interval count while a long reader
pins the watermark, and again after it finishes, for different update volumes.
"""

from __future__ import annotations

import pytest

from repro import IsolationLevel
from repro.workload.generators import build_social_graph

from bench_helpers import open_db, print_row

HOT_NODES = 10


def _churn(db, hot, updates):
    for index in range(updates):
        with db.transaction() as tx:
            node_id = hot[index % len(hot)]
            node = tx.get_node(node_id)
            tx.set_node_property(node_id, "score", int(node.get("score", 0)) + 1)


@pytest.mark.benchmark(group="e6-version-retention")
@pytest.mark.parametrize("updates", [100, 400])
def test_e6_long_reader_pins_versions(benchmark, updates):
    db = open_db(IsolationLevel.SNAPSHOT)
    graph = build_social_graph(db, people=50, avg_friends=2, seed=43)
    hot = graph.group("people")[:HOT_NODES]
    engine = db.engine

    long_reader = db.begin(read_only=True)
    long_reader.get_node(hot[0])

    def run_with_pinned_reader():
        _churn(db, hot, updates)
        return engine.run_gc()

    pinned_stats = benchmark.pedantic(run_with_pinned_reader, rounds=1, iterations=1)
    retained_while_pinned = engine.versions.total_versions()
    pending_while_pinned = engine.gc.pending_versions()

    long_reader.rollback()
    released_stats = engine.run_gc()
    retained_after = engine.versions.total_versions()

    row = {
        "updates": updates,
        "collected_while_reader_active": pinned_stats.versions_collected,
        "versions_retained_while_pinned": retained_while_pinned,
        "gc_pending_while_pinned": pending_while_pinned,
        "collected_after_reader_finished": released_stats.versions_collected,
        "versions_retained_after": retained_after,
    }
    benchmark.extra_info.update(row)
    print_row("E6", row)

    # While the reader pins the watermark nothing it can still see is reclaimed...
    assert pinned_stats.versions_collected == 0
    assert retained_while_pinned >= updates
    # ...and once it finishes the history collapses back to one version per entity.
    assert released_stats.versions_collected >= updates - len(hot)
    assert retained_after < retained_while_pinned
    db.close()
