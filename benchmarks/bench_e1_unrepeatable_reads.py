"""E1 — unrepeatable reads (paper Section 1).

Claim: read committed lets a transaction observe two different values for the
same entity within one transaction; snapshot isolation does not.

Workload: writer threads repeatedly bump a property on a small hot set of
nodes while reader transactions read the same node twice with a small pause in
between.  The reported series is the number of unrepeatable reads observed per
100 reader transactions under each isolation level.
"""

from __future__ import annotations

import pytest

from repro.workload.anomaly import check_unrepeatable_read
from repro.workload.generators import build_social_graph
from repro.workload.operations import update_node_property
from repro.workload.runner import ConcurrentWorkloadRunner, WorkerOutcome

from bench_helpers import open_db, print_row

WORKERS = 6
OPS_PER_WORKER = 40
HOT_NODES = 4


def _run_experiment(isolation):
    db = open_db(isolation)
    graph = build_social_graph(db, people=60, avg_friends=3, seed=11)
    hot = graph.group("people")[:HOT_NODES]

    def work(db, rng, worker_id, _iteration):
        outcome = WorkerOutcome()
        if worker_id % 2 == 0:
            with db.transaction() as tx:
                update_node_property(tx, rng.choice(hot), "score", rng)
        else:
            with db.transaction(read_only=True) as tx:
                outcome.anomalies.checks += 1
                if check_unrepeatable_read(tx, rng.choice(hot), "score", delay_seconds=0.002):
                    outcome.anomalies.unrepeatable_reads += 1
        return outcome

    runner = ConcurrentWorkloadRunner(
        db, workers=WORKERS, operations_per_worker=OPS_PER_WORKER, seed=5
    )
    result = runner.run(work)
    db.close()
    return result


@pytest.mark.benchmark(group="e1-unrepeatable-reads")
def test_e1_unrepeatable_reads(benchmark, isolation):
    result = benchmark.pedantic(_run_experiment, args=(isolation,), rounds=1, iterations=1)
    checks = max(1, result.anomalies.checks)
    row = {
        "isolation": isolation.value,
        "reader_txns": result.anomalies.checks,
        "unrepeatable_reads": result.anomalies.unrepeatable_reads,
        "per_100_readers": round(100.0 * result.anomalies.unrepeatable_reads / checks, 2),
        "committed": result.committed,
        "aborted": result.aborted,
    }
    benchmark.extra_info.update(row)
    print_row("E1", row)
    # The qualitative claim must hold: SI never observes the anomaly.
    if isolation.value == "snapshot":
        assert result.anomalies.unrepeatable_reads == 0
