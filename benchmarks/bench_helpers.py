"""Shared helpers for the experiment benchmarks (imported by every bench module)."""

from __future__ import annotations

import json
from typing import Dict

from repro import GraphDatabase, IsolationLevel
from repro.workload.metrics import LatencyRecorder


def open_db(isolation: IsolationLevel, **options) -> GraphDatabase:
    """An in-memory database for benchmarking (WAL on, fsync off).

    Transaction tracing is on at the default sampling rate: the committed
    BENCH_*.json documents measure the engine as it would run with
    observability enabled, and the ≥0.95x acceptance bar for the tracing
    overhead is checked against these numbers.
    """
    options.setdefault("tracing", True)
    return GraphDatabase.in_memory(isolation=isolation, wal_sync=False, **options)


def latency_percentiles(recorder: LatencyRecorder) -> Dict[str, float]:
    """count/p50/p95/p99 (seconds) for one per-operation latency recorder."""
    return {
        "count": recorder.count(),
        "p50": round(recorder.percentile(0.50), 6),
        "p95": round(recorder.percentile(0.95), 6),
        "p99": round(recorder.percentile(0.99), 6),
    }


def abort_reasons_of(db: GraphDatabase) -> Dict[str, int]:
    """The engine's abort breakdown (ww-conflict / rw-antidependency / ...)."""
    return dict(db.statistics()["engine"]["transactions"]["abort_reasons"])


def print_row(experiment: str, row: Dict[str, object]) -> None:
    """Print one result row in a stable, grep-friendly format."""
    columns = "  ".join(f"{key}={value}" for key, value in row.items())
    print(f"\n[{experiment}] {columns}")


def write_json(path: str, payload: Dict[str, object]) -> None:
    """Write one experiment's result document (for trajectory tracking)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
