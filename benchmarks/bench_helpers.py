"""Shared helpers for the experiment benchmarks (imported by every bench module)."""

from __future__ import annotations

import json
from typing import Dict

from repro import GraphDatabase, IsolationLevel


def open_db(isolation: IsolationLevel, **options) -> GraphDatabase:
    """An in-memory database for benchmarking (WAL on, fsync off)."""
    return GraphDatabase.in_memory(isolation=isolation, wal_sync=False, **options)


def print_row(experiment: str, row: Dict[str, object]) -> None:
    """Print one result row in a stable, grep-friendly format."""
    columns = "  ".join(f"{key}={value}" for key, value in row.items())
    print(f"\n[{experiment}] {columns}")


def write_json(path: str, payload: Dict[str, object]) -> None:
    """Write one experiment's result document (for trajectory tracking)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
