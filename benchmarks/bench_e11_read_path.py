"""E11 — the lock-free read path, measured layer by layer.

Three series, each isolating one layer of the PR-3 read-path overhaul:

* ``chain_resolve`` — microbenchmark of ``VersionChain.visible_to`` on the
  copy-on-write chains (plus a liveness probe proving resolution succeeds
  while another thread holds the chain's write lock — zero lock
  acquisitions on the read path).
* ``traversal`` — ``two_step_neighbourhood`` (the paper's friends-of-friends
  motivating workload) under snapshot isolation with the snapshot-local
  adjacency/payload caches on vs. off.
* ``query_mix`` — the E10 declarative query mix (4 readers / 4 writers)
  under snapshot isolation (plan cache on and off) and read committed
  (eager read-unlock on and off — the RC satellite's before/after).

When the repository's committed ``BENCH_e10_query_throughput.json`` is
present, the SI cell is also reported as a ratio over that file's
snapshot row — a same-code cross-check of the two harnesses.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_e11_read_path.py

or through pytest (reduced duration)::

    PYTHONPATH=src python -m pytest benchmarks/bench_e11_read_path.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import threading
import time
from typing import Dict, List, Optional

sys.path.insert(0, os.path.dirname(__file__))

from repro import GraphDatabase, IsolationLevel, TransactionAbortedError
from repro.api.traversal import two_step_neighbourhood
from repro.core.version import Version, VersionChain
from repro.graph.entity import EntityKey, NodeData
from repro.workload import (
    QueryMix,
    READ_TEMPLATES,
    WRITE_TEMPLATES,
    build_social_graph,
    person_names_of,
)

from repro.workload.metrics import LatencyRecorder

from bench_helpers import (
    abort_reasons_of,
    latency_percentiles,
    open_db,
    print_row,
    write_json,
)

PEOPLE = 200
AVG_FRIENDS = 4
READERS = 4
WRITERS = 4

_BASELINE_FILE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_e10_query_throughput.json",
)


# ---------------------------------------------------------------------------
# Series 1: chain-resolution microbenchmark
# ---------------------------------------------------------------------------


def _bench_chain_resolve(*, versions: int, resolutions: int) -> Dict[str, object]:
    key = EntityKey.node(1)
    chain = VersionChain(key)
    for index in range(versions):
        payload = NodeData(1, properties={"value": index})
        chain.add_committed(Version(key, payload, commit_ts=index * 2 + 1))
    max_ts = versions * 2 + 2

    # Liveness probe: resolve while another thread holds the write lock.
    lock_taken = threading.Event()
    release = threading.Event()

    def hold() -> None:
        with chain.write_lock:
            lock_taken.set()
            release.wait(timeout=10.0)

    holder = threading.Thread(target=hold, daemon=True)
    holder.start()
    lock_taken.wait(timeout=10.0)
    probe = chain.visible_to(max_ts)
    lock_free = probe is not None and probe.payload.properties["value"] == versions - 1
    release.set()
    holder.join(timeout=10.0)

    rng = random.Random(11)
    timestamps = [rng.randint(0, max_ts) for _ in range(1024)]
    started = time.perf_counter()
    for index in range(resolutions):
        chain.visible_to(timestamps[index & 1023])
    duration = time.perf_counter() - started
    return {
        "series": "chain_resolve",
        "chain_versions": versions,
        "resolutions": resolutions,
        "duration_seconds": round(duration, 4),
        "resolutions_per_second": round(resolutions / duration, 0),
        "read_succeeds_while_write_lock_held": bool(lock_free),
    }


# ---------------------------------------------------------------------------
# Series 2: friends-of-friends traversal, snapshot cache on/off
# ---------------------------------------------------------------------------


def _bench_traversal(*, seconds: float, snapshot_read_cache: bool,
                     seed: int = 7) -> Dict[str, object]:
    db = open_db(IsolationLevel.SNAPSHOT, snapshot_read_cache=snapshot_read_cache)
    build_social_graph(db, people=PEOPLE, avg_friends=AVG_FRIENDS, seed=seed)
    with db.begin(read_only=True) as tx:
        person_ids = [node.id for node in tx.find_nodes(label="Person")]
    rng = random.Random(seed)
    traversals = 0
    cache_hits = cache_misses = 0
    deadline = time.perf_counter() + seconds
    started = time.perf_counter()
    while time.perf_counter() < deadline:
        with db.begin(read_only=True) as tx:
            for _ in range(10):
                start = person_ids[rng.randrange(len(person_ids))]
                two_step_neighbourhood(tx, start, rel_types=["KNOWS"])
                traversals += 1
            stats = tx.engine_transaction.snapshot_cache_stats()
            cache_hits += stats["hits"]
            cache_misses += stats["misses"]
    duration = time.perf_counter() - started
    db.close()
    lookups = cache_hits + cache_misses
    return {
        "series": "traversal",
        "snapshot_read_cache": snapshot_read_cache,
        "traversals": traversals,
        "duration_seconds": round(duration, 3),
        "traversals_per_second": round(traversals / duration, 1),
        "cache_hit_ratio": round(cache_hits / lookups, 3) if lookups else 0.0,
    }


# ---------------------------------------------------------------------------
# Series 3: the E10 query mix with per-layer knobs
# ---------------------------------------------------------------------------


def _bench_query_mix(label: str, *, seconds: float, readers: int, writers: int,
                     seed: int = 7, **db_options) -> Dict[str, object]:
    isolation = db_options.pop("isolation")
    db = open_db(isolation, **db_options)
    build_social_graph(db, people=PEOPLE, avg_friends=AVG_FRIENDS, seed=seed)
    names = person_names_of(db)
    read_mix = QueryMix(names, READ_TEMPLATES)
    write_mix = QueryMix(names, WRITE_TEMPLATES)

    stop = threading.Event()
    barrier = threading.Barrier(readers + writers + 1)
    query_counts = [0] * readers
    write_counts = [0] * writers
    conflict_counts = [0] * writers
    read_latencies = LatencyRecorder()
    write_latencies = LatencyRecorder()

    def reader(reader_id: int) -> None:
        rng = random.Random(seed * 1_009 + reader_id)
        barrier.wait()
        while not stop.is_set():
            template, params = read_mix.sample(rng)
            op_started = time.perf_counter()
            try:
                with db.transaction(read_only=True) as tx:
                    result = tx.execute(template.text, params)
                    result.consume()
            except TransactionAbortedError:
                # RC readers can lose a (rare, conservative) deadlock check
                # against a writer's long locks; retry, don't count.
                continue
            read_latencies.record(time.perf_counter() - op_started)
            query_counts[reader_id] += 1

    def writer(writer_id: int) -> None:
        rng = random.Random(seed * 2_003 + writer_id)
        barrier.wait()
        while not stop.is_set():
            template, params = write_mix.sample(rng)
            op_started = time.perf_counter()
            try:
                with db.transaction() as tx:
                    tx.execute(template.text, params)
                write_latencies.record(time.perf_counter() - op_started)
                write_counts[writer_id] += 1
            except TransactionAbortedError:
                conflict_counts[writer_id] += 1

    threads = [
        threading.Thread(target=reader, args=(i,), daemon=True) for i in range(readers)
    ] + [
        threading.Thread(target=writer, args=(i,), daemon=True) for i in range(writers)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    time.sleep(seconds)
    stop.set()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - started
    stats = db.statistics()
    row: Dict[str, object] = {
        "series": "query_mix",
        "cell": label,
        "isolation": isolation.value,
        "readers": readers,
        "writers": writers,
        "duration_seconds": round(duration, 3),
        "queries": sum(query_counts),
        "queries_per_second": round(sum(query_counts) / duration, 1),
        "writes_committed": sum(write_counts),
        "writes_per_second": round(sum(write_counts) / duration, 1),
        "write_conflicts": sum(conflict_counts),
        "read_latency": latency_percentiles(read_latencies),
        "write_latency": latency_percentiles(write_latencies),
        "abort_reasons": abort_reasons_of(db),
        "plan_cache": stats["query_cache"]["plan"],
    }
    db.close()
    return row


def _load_baseline() -> Optional[float]:
    """SI queries/sec from the committed E10 result, if present.

    The E10 artifact is refreshed whenever that benchmark runs, so this is
    a same-code cross-check of the two harnesses, not a historical baseline.
    """
    try:
        with open(_BASELINE_FILE, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        for row in payload.get("series", []):
            if row.get("isolation") == "snapshot":
                return float(row["queries_per_second"])
    except (OSError, ValueError, KeyError):
        return None
    return None


# ---------------------------------------------------------------------------
# Orchestration
# ---------------------------------------------------------------------------


def run_benchmark(*, seconds: float = 4.0, readers: int = READERS,
                  writers: int = WRITERS, resolutions: int = 300_000,
                  output: str = None) -> Dict[str, object]:
    micro = _bench_chain_resolve(versions=8, resolutions=resolutions)
    print_row("E11", micro)

    traversal_rows = [
        _bench_traversal(seconds=max(seconds / 2, 0.5), snapshot_read_cache=cache)
        for cache in (True, False)
    ]
    for row in traversal_rows:
        print_row("E11", row)

    cells = [
        ("si_full", dict(isolation=IsolationLevel.SNAPSHOT)),
        ("si_no_plan_cache", dict(isolation=IsolationLevel.SNAPSHOT, query_cache_size=0)),
        ("rc_eager_unlock", dict(isolation=IsolationLevel.READ_COMMITTED)),
        (
            "rc_legacy_locks",
            dict(isolation=IsolationLevel.READ_COMMITTED, rc_eager_read_unlock=False),
        ),
    ]
    mix_rows: List[Dict[str, object]] = []
    for label, options in cells:
        row = _bench_query_mix(
            label, seconds=seconds, readers=readers, writers=writers, **options
        )
        hidden = ("plan_cache", "abort_reasons", "read_latency", "write_latency")
        print_row("E11", {k: v for k, v in row.items() if k not in hidden})
        mix_rows.append(row)

    baseline_qps = _load_baseline()
    si_row = mix_rows[0]
    speedup = (
        round(si_row["queries_per_second"] / baseline_qps, 2)
        if baseline_qps
        else None
    )
    payload: Dict[str, object] = {
        "experiment": "e11_read_path",
        "workload": {
            "people": PEOPLE,
            "avg_friends": AVG_FRIENDS,
            "readers": readers,
            "writers": writers,
            "seconds_per_cell": seconds,
        },
        "series": [micro] + traversal_rows + mix_rows,
        "baseline": {
            "source": os.path.basename(_BASELINE_FILE),
            "si_queries_per_second_e10": baseline_qps,
            "si_queries_per_second_now": si_row["queries_per_second"],
            "speedup": speedup,
        },
    }
    if output is None:
        output = "BENCH_e11_read_path.json"
    write_json(output, payload)
    print(
        f"\n[E11] wrote {output}  "
        f"si_queries_per_second={si_row['queries_per_second']}"
        + (f"  vs_committed_e10={speedup}x" if speedup else "")
    )
    return payload


def test_e11_read_path(tmp_path):
    """Reduced duration for pytest/CI: every series runs and emits JSON."""
    output = str(tmp_path / "BENCH_e11_read_path.json")
    payload = run_benchmark(seconds=1.0, resolutions=20_000, output=output)
    assert os.path.exists(output)
    by_series: Dict[str, List[Dict[str, object]]] = {}
    for row in payload["series"]:
        by_series.setdefault(row["series"], []).append(row)
    assert by_series["chain_resolve"][0]["read_succeeds_while_write_lock_held"] is True
    assert all(row["traversals"] > 0 for row in by_series["traversal"])
    cells = {row["cell"]: row for row in by_series["query_mix"]}
    assert cells["si_full"]["queries"] > 0
    assert cells["si_full"]["read_latency"]["count"] == cells["si_full"]["queries"]
    assert cells["si_full"]["read_latency"]["p50"] <= cells["si_full"]["read_latency"]["p99"]
    assert "ww-conflict" in cells["si_full"]["abort_reasons"]
    assert cells["si_full"]["plan_cache"]["hits"] > 0
    assert cells["si_no_plan_cache"]["plan_cache"]["size"] == 0
    assert cells["rc_eager_unlock"]["queries"] > 0
    assert cells["rc_legacy_locks"]["queries"] > 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seconds", type=float, default=4.0, help="measured duration per mix cell"
    )
    parser.add_argument("--readers", type=int, default=READERS)
    parser.add_argument("--writers", type=int, default=WRITERS)
    parser.add_argument("--resolutions", type=int, default=300_000)
    parser.add_argument(
        "--output",
        default="BENCH_e11_read_path.json",
        help="where to write the result document",
    )
    args = parser.parse_args()
    run_benchmark(
        seconds=args.seconds,
        readers=args.readers,
        writers=args.writers,
        resolutions=args.resolutions,
        output=args.output,
    )
