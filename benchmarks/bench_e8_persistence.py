"""E8 — only the newest committed version reaches the persistent store (paper Section 4).

Claim: the approach "avoids this issue by only writing to the persistent data
store the most recent committed version of each data item.  The other versions
are kept in memory."  Consequently the number of persistent entity writes per
commit stays constant no matter how much version history accumulates in the
object cache, and the persistent store never grows with the version count.

Series: persistent entity writes per commit and persistent record count for
increasing numbers of updates to a fixed hot set, with a pinned reader forcing
the full history to be retained in memory.
"""

from __future__ import annotations

import pytest

from repro import IsolationLevel
from repro.workload.generators import build_social_graph

from bench_helpers import open_db, print_row

HOT_NODES = 5


def _update_round(db, hot, rounds):
    for index in range(rounds):
        with db.transaction() as tx:
            node_id = hot[index % len(hot)]
            tx.set_node_property(node_id, "score", index)


@pytest.mark.benchmark(group="e8-persistence")
@pytest.mark.parametrize("updates", [50, 200])
def test_e8_store_writes_stay_flat(benchmark, updates):
    db = open_db(IsolationLevel.SNAPSHOT)
    graph = build_social_graph(db, people=40, avg_friends=2, seed=53)
    hot = graph.group("people")[:HOT_NODES]
    pin = db.begin(read_only=True)  # force every old version to stay in memory
    pin.get_node(hot[0])

    writes_before = db.store.stats.entity_writes()
    batches_before = db.store.stats.batches_applied
    benchmark.pedantic(_update_round, args=(db, hot, updates), rounds=1, iterations=1)
    writes_after = db.store.stats.entity_writes()
    batches_after = db.store.stats.batches_applied

    store_writes = writes_after - writes_before
    commits = batches_after - batches_before
    retained_versions = db.engine.versions.total_versions()
    row = {
        "updates": updates,
        "commits": commits,
        "persistent_entity_writes": store_writes,
        "writes_per_commit": round(store_writes / max(1, commits), 3),
        "versions_retained_in_memory": retained_versions,
        "persistent_nodes": db.store.node_count(),
    }
    benchmark.extra_info.update(row)
    print_row("E8", row)

    # One persistent write per committed update, regardless of history size.
    assert store_writes == commits == updates
    # History stays in memory only; the persistent store does not grow.
    assert retained_versions >= updates
    assert db.store.node_count() == 40 + 5  # people + cities, unchanged
    pin.rollback()
    db.close()
