"""Wait-for graph used for deadlock detection.

The lock manager records a "transaction A waits for transaction B" edge
whenever A blocks on a lock held by B.  Before A actually goes to sleep the
graph is checked for a cycle through A; if one exists, A is chosen as the
victim and receives :class:`~repro.errors.DeadlockError`.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Set


class WaitForGraph:
    """Thread-safe directed graph of waits-for edges between transaction ids."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._edges: Dict[int, Set[int]] = {}

    def add_waits(self, waiter: int, holders: Iterable[int]) -> None:
        """Record that ``waiter`` is blocked on each transaction in ``holders``."""
        holders = {holder for holder in holders if holder != waiter}
        if not holders:
            return
        with self._lock:
            self._edges.setdefault(waiter, set()).update(holders)

    def remove_waiter(self, waiter: int) -> None:
        """Remove every outgoing edge of ``waiter`` (it stopped waiting)."""
        with self._lock:
            self._edges.pop(waiter, None)

    def remove_transaction(self, txn_id: int) -> None:
        """Remove a finished transaction from both sides of the graph."""
        with self._lock:
            self._edges.pop(txn_id, None)
            for targets in self._edges.values():
                targets.discard(txn_id)

    def creates_cycle(self, waiter: int, holders: Iterable[int]) -> bool:
        """Whether adding ``waiter -> holders`` edges would close a cycle.

        The check is done *before* the edges are added so the caller can
        refuse to wait instead of deadlocking.
        """
        holders = {holder for holder in holders if holder != waiter}
        if not holders:
            return False
        with self._lock:
            # Depth-first search from the holders; a path back to the waiter
            # through existing edges means waiting would close a cycle.
            stack: List[int] = list(holders)
            seen: Set[int] = set()
            while stack:
                current = stack.pop()
                if current == waiter:
                    return True
                if current in seen:
                    continue
                seen.add(current)
                stack.extend(self._edges.get(current, ()))
            return False

    def waiting_transactions(self) -> Set[int]:
        """Ids of transactions currently recorded as waiting."""
        with self._lock:
            return set(self._edges)

    def edge_count(self) -> int:
        """Total number of waits-for edges (for tests and diagnostics)."""
        with self._lock:
            return sum(len(targets) for targets in self._edges.values())
