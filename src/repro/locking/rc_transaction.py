"""Read-committed transactions (the Neo4j baseline).

This is the behaviour the paper sets out to improve: reads take a short shared
lock (released as soon as the value has been read) and writes take long
exclusive locks held until commit.  Because nothing is retained about what a
transaction has read, two reads of the same entity inside one transaction can
observe different committed values (unrepeatable reads) and repeated predicate
scans can observe different result sets (phantom reads).  The anomaly
experiments E1 and E2 measure exactly this.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.engine import EngineTransaction, TransactionState
from repro.errors import ReadOnlyTransactionError, classify_abort
from repro.graph.entity import Direction, EntityKey, EntityKind, NodeData, RelationshipData
from repro.graph.operations import (
    DeleteNodeOp,
    DeleteRelationshipOp,
    StoreOperation,
    WriteNodeOp,
    WriteRelationshipOp,
)
from repro.graph.properties import PropertyValue
from repro.locking.lock_manager import LockMode


class ReadCommittedTransaction(EngineTransaction):
    """One transaction running under the read-committed engine."""

    def __init__(self, engine, txn_id: int, *, read_only: bool = False) -> None:
        super().__init__(txn_id, read_only=read_only)
        self._engine = engine
        #: Buffered writes: entity key -> new state (``None`` buffers a delete).
        self._writes: Dict[EntityKey, Optional[object]] = {}
        #: Keys created by this transaction (they do not exist in the store yet).
        self._created: Set[EntityKey] = set()
        #: Observability trace (set by the engine for sampled transactions).
        self.trace = None
        #: Classified cause when :meth:`commit` aborts (``None`` for explicit
        #: rollbacks); feeds the labelled abort counter and the trace.
        self.abort_reason: Optional[str] = None

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def read_node(self, node_id: int) -> Optional[NodeData]:
        self.ensure_open()
        key = EntityKey.node(node_id)
        if key in self._writes:
            return self._writes[key]  # type: ignore[return-value]
        return self._locked_read(key, lambda: self._engine.store.read_node(node_id))

    def read_relationship(self, rel_id: int) -> Optional[RelationshipData]:
        self.ensure_open()
        key = EntityKey.relationship(rel_id)
        if key in self._writes:
            return self._writes[key]  # type: ignore[return-value]
        return self._locked_read(
            key, lambda: self._engine.store.read_relationship(rel_id)
        )

    def _locked_read(self, key: EntityKey, reader):
        """Perform one read under a *short* shared lock (released immediately).

        With the engine's ``eager_read_unlock`` (the default) the lock lives
        inside :meth:`LockManager.shared_guard`: one lock-table visit, no
        holder bookkeeping, release before the statement returns, and a read
        of an entity the transaction already write-locked (e.g. an endpoint
        node of a created relationship) piggybacks instead of — as the
        legacy pair did — dropping the retained exclusive lock.
        """
        locks = self._engine.locks
        if getattr(self._engine, "eager_read_unlock", False):
            with locks.shared_guard(self.txn_id, key):
                return reader()
        locks.acquire(self.txn_id, key, LockMode.SHARED)
        try:
            return reader()
        finally:
            locks.release(self.txn_id, key)

    def iter_nodes(self) -> Iterator[NodeData]:
        self.ensure_open()
        seen: Set[int] = set()
        for key, value in list(self._writes.items()):
            if key.kind is EntityKind.NODE:
                seen.add(key.entity_id)
                if value is not None:
                    yield value  # type: ignore[misc]
        for node in self._engine.store.iter_nodes():
            if node.node_id not in seen:
                yield node

    def iter_relationships(self) -> Iterator[RelationshipData]:
        self.ensure_open()
        seen: Set[int] = set()
        for key, value in list(self._writes.items()):
            if key.kind is EntityKind.RELATIONSHIP:
                seen.add(key.entity_id)
                if value is not None:
                    yield value  # type: ignore[misc]
        for relationship in self._engine.store.iter_relationships():
            if relationship.rel_id not in seen:
                yield relationship

    def find_nodes_by_label(self, label: str) -> Set[int]:
        self.ensure_open()
        result = self._engine.indexes.nodes_with_label(label)
        return self._merge_node_predicate(result, lambda node: label in node.labels)

    def find_nodes_by_property(self, key: str, value: PropertyValue) -> Set[int]:
        self.ensure_open()
        result = self._engine.indexes.nodes_with_property(key, value)
        return self._merge_node_predicate(
            result, lambda node: node.properties.get(key) == value
        )

    def find_relationships_by_property(self, key: str, value: PropertyValue) -> Set[int]:
        self.ensure_open()
        result = self._engine.indexes.relationships_with_property(key, value)
        return self._merge_relationship_predicate(
            result, lambda rel: rel.properties.get(key) == value
        )

    def find_relationships_by_type(self, rel_type: str) -> Set[int]:
        self.ensure_open()
        result = self._engine.indexes.relationships_of_type(rel_type)
        return self._merge_relationship_predicate(
            result, lambda rel: rel.rel_type == rel_type
        )

    def _merge_node_predicate(self, result: Set[int], predicate) -> Set[int]:
        """Overlay this transaction's own node writes onto an index result."""
        return self._merge_predicate(result, predicate, EntityKind.NODE)

    def _merge_relationship_predicate(self, result: Set[int], predicate) -> Set[int]:
        """Overlay this transaction's own relationship writes onto an index result."""
        return self._merge_predicate(result, predicate, EntityKind.RELATIONSHIP)

    def _merge_predicate(self, result: Set[int], predicate, kind: EntityKind) -> Set[int]:
        for entity_key, data in self._writes.items():
            if entity_key.kind is not kind:
                continue
            if data is None:
                result.discard(entity_key.entity_id)
            elif predicate(data):
                result.add(entity_key.entity_id)
            else:
                result.discard(entity_key.entity_id)
        return result

    def relationships_of(
        self,
        node_id: int,
        direction: Direction = Direction.BOTH,
        rel_types: Optional[Sequence[str]] = None,
    ) -> List[RelationshipData]:
        self.ensure_open()
        store = self._engine.store
        candidate_ids: Set[int] = set()
        if store.node_exists(node_id):
            candidate_ids.update(store.node_relationship_ids(node_id))
        for entity_key, data in self._writes.items():
            if entity_key.kind is EntityKind.RELATIONSHIP and data is not None:
                if data.touches(node_id):
                    candidate_ids.add(entity_key.entity_id)
        wanted_types = set(rel_types) if rel_types else None
        result: List[RelationshipData] = []
        for rel_id in sorted(candidate_ids):
            relationship = self.read_relationship(rel_id)
            if relationship is None:
                continue
            if not direction.matches(node_id, relationship.start_node, relationship.end_node):
                continue
            if wanted_types is not None and relationship.rel_type not in wanted_types:
                continue
            result.append(relationship)
        return result

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def put_node(self, node: NodeData, *, create: bool = False) -> None:
        self.ensure_open()
        self._check_writable()
        key = node.key
        self._engine.locks.acquire(self.txn_id, key, LockMode.EXCLUSIVE)
        if create:
            self._created.add(key)
        self._writes[key] = node

    def put_relationship(self, relationship: RelationshipData, *, create: bool = False) -> None:
        self.ensure_open()
        self._check_writable()
        key = relationship.key
        locks = self._engine.locks
        locks.acquire(self.txn_id, key, LockMode.EXCLUSIVE)
        if create:
            # Like Neo4j, creating a relationship write-locks both endpoint
            # nodes so they cannot be concurrently deleted.
            locks.acquire(self.txn_id, EntityKey.node(relationship.start_node), LockMode.EXCLUSIVE)
            locks.acquire(self.txn_id, EntityKey.node(relationship.end_node), LockMode.EXCLUSIVE)
            self._created.add(key)
        self._writes[key] = relationship

    def delete_node(self, node_id: int) -> None:
        self.ensure_open()
        self._check_writable()
        key = EntityKey.node(node_id)
        self._engine.locks.acquire(self.txn_id, key, LockMode.EXCLUSIVE)
        self._writes[key] = None

    def delete_relationship(self, rel_id: int) -> None:
        self.ensure_open()
        self._check_writable()
        key = EntityKey.relationship(rel_id)
        locks = self._engine.locks
        locks.acquire(self.txn_id, key, LockMode.EXCLUSIVE)
        existing = self._writes.get(key)
        if existing is None:
            existing = self._engine.store.read_relationship(rel_id)
        if existing is not None:
            locks.acquire(self.txn_id, EntityKey.node(existing.start_node), LockMode.EXCLUSIVE)
            locks.acquire(self.txn_id, EntityKey.node(existing.end_node), LockMode.EXCLUSIVE)
        self._writes[key] = None

    def _check_writable(self) -> None:
        if self.read_only:
            raise ReadOnlyTransactionError(
                f"transaction {self.txn_id} was opened read-only"
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def commit(self) -> None:
        self.ensure_open()
        try:
            self._engine.commit_transaction(self)
            self.state = TransactionState.COMMITTED
        except BaseException as exc:
            self.abort_reason = classify_abort(exc)
            self._engine.abort_transaction(self)
            self.state = TransactionState.ABORTED
            raise

    def rollback(self) -> None:
        if self.state is not TransactionState.ACTIVE:
            return
        self._engine.abort_transaction(self)
        self.state = TransactionState.ABORTED

    # ------------------------------------------------------------------
    # commit support (used by the engine)
    # ------------------------------------------------------------------

    def pending_writes(self) -> Dict[EntityKey, Optional[object]]:
        """The buffered writes of this transaction (key -> new state or None)."""
        return dict(self._writes)

    def build_store_operations(self) -> List[StoreOperation]:
        """Translate buffered writes into ordered store operations.

        Creations are ordered nodes-before-relationships and deletions
        relationships-before-nodes so the store's structural constraints hold
        at every point during application.
        """
        node_writes: List[StoreOperation] = []
        rel_writes: List[StoreOperation] = []
        rel_deletes: List[StoreOperation] = []
        node_deletes: List[StoreOperation] = []
        for key, data in self._writes.items():
            if key.kind is EntityKind.NODE:
                if data is None:
                    if key not in self._created:
                        node_deletes.append(DeleteNodeOp(key.entity_id))
                else:
                    node_writes.append(WriteNodeOp(data))
            else:
                if data is None:
                    if key not in self._created:
                        rel_deletes.append(DeleteRelationshipOp(key.entity_id))
                else:
                    rel_writes.append(WriteRelationshipOp(data))
        return node_writes + rel_writes + rel_deletes + node_deletes
