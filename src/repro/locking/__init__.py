"""Lock-based concurrency control.

This package contains the pieces of Neo4j's stock transaction machinery that
the paper starts from and then modifies:

* a lock manager with shared and exclusive locks, deadlock detection and
  timeouts (:mod:`repro.locking.lock_manager`),
* the read-committed engine that uses *short* read locks and *long* write
  locks (:mod:`repro.locking.rc_manager`,
  :mod:`repro.locking.rc_transaction`) — the baseline whose unrepeatable and
  phantom reads motivate the paper.

The snapshot-isolation engine reuses the same lock manager, but only for its
long write locks (the paper removes the short read locks entirely and turns
the write locks into the first-updater-wins conflict check).
"""

from repro.locking.lock_manager import LockManager, LockMode
from repro.locking.deadlock import WaitForGraph
from repro.locking.rc_manager import ReadCommittedEngine
from repro.locking.rc_transaction import ReadCommittedTransaction

__all__ = [
    "LockManager",
    "LockMode",
    "ReadCommittedEngine",
    "ReadCommittedTransaction",
    "WaitForGraph",
]
