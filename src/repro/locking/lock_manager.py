"""Lock manager: shared/exclusive locks on entities.

This reproduces the locking layer the paper describes Neo4j as having:
"a traditional locking mechanism with short read locks and long write locks".

* The read-committed engine acquires **shared** locks for reads and releases
  them immediately (short), and **exclusive** locks for writes that are held
  until commit (long).
* The snapshot-isolation engine acquires no read locks at all; it keeps the
  long exclusive write locks but acquires them with
  :meth:`LockManager.try_acquire` (no waiting) to implement the
  first-updater-wins write rule.

Deadlocks are prevented by refusing to wait when doing so would close a cycle
in the wait-for graph, and bounded by a timeout as a backstop.
"""

from __future__ import annotations

import contextlib
import enum
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from repro.errors import DeadlockError, LockTimeoutError
from repro.graph.entity import EntityKey
from repro.locking.deadlock import WaitForGraph

#: Default maximum time to wait for a lock before giving up, in seconds.
DEFAULT_LOCK_TIMEOUT = 10.0


class LockMode(enum.Enum):
    """Lock modes supported by the lock manager."""

    SHARED = "shared"
    EXCLUSIVE = "exclusive"

    def compatible_with(self, other: "LockMode") -> bool:
        """Whether a lock in this mode can coexist with one in ``other``."""
        return self is LockMode.SHARED and other is LockMode.SHARED


@dataclass
class _LockEntry:
    """Book-keeping for one lockable resource."""

    holders: Dict[int, LockMode] = field(default_factory=dict)
    waiter_count: int = 0

    def conflicts_with(self, txn_id: int, mode: LockMode) -> Set[int]:
        """Ids of holders that prevent ``txn_id`` from acquiring ``mode``."""
        conflicting: Set[int] = set()
        for holder, held_mode in self.holders.items():
            if holder == txn_id:
                continue
            if not mode.compatible_with(held_mode):
                conflicting.add(holder)
        return conflicting


@dataclass
class LockManagerStats:
    """Counters describing lock traffic (used by experiments and tests)."""

    acquisitions: int = 0
    immediate_grants: int = 0
    waits: int = 0
    deadlocks: int = 0
    timeouts: int = 0
    try_failures: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view of the counters."""
        return {
            "acquisitions": self.acquisitions,
            "immediate_grants": self.immediate_grants,
            "waits": self.waits,
            "deadlocks": self.deadlocks,
            "timeouts": self.timeouts,
            "try_failures": self.try_failures,
        }


class LockManager:
    """Shared/exclusive lock table keyed by :class:`~repro.graph.entity.EntityKey`."""

    def __init__(self, *, default_timeout: float = DEFAULT_LOCK_TIMEOUT) -> None:
        self._default_timeout = default_timeout
        self._mutex = threading.Lock()
        self._released = threading.Condition(self._mutex)
        self._entries: Dict[EntityKey, _LockEntry] = {}
        self._held_by_txn: Dict[int, Set[EntityKey]] = {}
        self._wait_for = WaitForGraph()
        self.stats = LockManagerStats()

    # -- acquisition -----------------------------------------------------------

    def acquire(
        self,
        txn_id: int,
        resource: EntityKey,
        mode: LockMode,
        *,
        timeout: Optional[float] = None,
    ) -> None:
        """Acquire (or upgrade) a lock, waiting if necessary.

        Raises :class:`~repro.errors.DeadlockError` if waiting would create a
        wait-for cycle and :class:`~repro.errors.LockTimeoutError` if the lock
        cannot be obtained within ``timeout`` seconds.
        """
        deadline = time.monotonic() + (timeout if timeout is not None else self._default_timeout)
        with self._mutex:
            self.stats.acquisitions += 1
            entry = self._entries.setdefault(resource, _LockEntry())
            first_attempt = True
            while True:
                conflicting = entry.conflicts_with(txn_id, mode)
                if not conflicting:
                    self._grant(entry, txn_id, resource, mode)
                    if first_attempt:
                        self.stats.immediate_grants += 1
                    self._wait_for.remove_waiter(txn_id)
                    return
                if self._wait_for.creates_cycle(txn_id, conflicting):
                    self.stats.deadlocks += 1
                    self._wait_for.remove_waiter(txn_id)
                    raise DeadlockError(
                        f"transaction {txn_id} would deadlock waiting for "
                        f"{sorted(conflicting)} on {resource}"
                    )
                self._wait_for.add_waits(txn_id, conflicting)
                if first_attempt:
                    self.stats.waits += 1
                    first_attempt = False
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.stats.timeouts += 1
                    self._wait_for.remove_waiter(txn_id)
                    raise LockTimeoutError(
                        f"transaction {txn_id} timed out waiting for {resource}"
                    )
                entry.waiter_count += 1
                try:
                    self._released.wait(timeout=min(remaining, 0.1))
                finally:
                    entry.waiter_count -= 1

    @contextlib.contextmanager
    def shared_guard(
        self,
        txn_id: int,
        resource: EntityKey,
        *,
        timeout: Optional[float] = None,
    ) -> Iterator[None]:
        """A short shared lock scoped to exactly one read (RC's read path).

        Cheaper than an :meth:`acquire`/:meth:`release` pair: the lock is
        never registered in the per-transaction holder set (it cannot outlive
        the ``with`` body, so commit-time ``release_all`` never needs to see
        it) and the condition variable is only notified when another
        transaction is actually waiting.  If the transaction already holds
        the resource — e.g. a long exclusive endpoint lock taken by a
        relationship create — the guard piggybacks on that lock and releases
        nothing on exit; the seed's pair would have dropped the retained
        exclusive lock here.

        Waiting (a writer holds the entity exclusively) still goes through
        the wait-for graph, because a reader that blocks while its
        transaction retains exclusive locks can close a deadlock cycle.
        """
        deadline = time.monotonic() + (
            timeout if timeout is not None else self._default_timeout
        )
        newly_acquired = False
        with self._mutex:
            self.stats.acquisitions += 1
            entry = self._entries.setdefault(resource, _LockEntry())
            if txn_id in entry.holders:
                self.stats.immediate_grants += 1
            else:
                first_attempt = True
                while True:
                    conflicting = entry.conflicts_with(txn_id, LockMode.SHARED)
                    if not conflicting:
                        entry.holders[txn_id] = LockMode.SHARED
                        if first_attempt:
                            self.stats.immediate_grants += 1
                        self._wait_for.remove_waiter(txn_id)
                        newly_acquired = True
                        break
                    if self._wait_for.creates_cycle(txn_id, conflicting):
                        self.stats.deadlocks += 1
                        self._wait_for.remove_waiter(txn_id)
                        self._cleanup_entry(resource, entry)
                        raise DeadlockError(
                            f"transaction {txn_id} would deadlock waiting for "
                            f"{sorted(conflicting)} on {resource}"
                        )
                    self._wait_for.add_waits(txn_id, conflicting)
                    if first_attempt:
                        self.stats.waits += 1
                        first_attempt = False
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self.stats.timeouts += 1
                        self._wait_for.remove_waiter(txn_id)
                        self._cleanup_entry(resource, entry)
                        raise LockTimeoutError(
                            f"transaction {txn_id} timed out waiting for {resource}"
                        )
                    entry.waiter_count += 1
                    try:
                        self._released.wait(timeout=min(remaining, 0.1))
                    finally:
                        entry.waiter_count -= 1
        try:
            yield
        finally:
            if newly_acquired:
                with self._mutex:
                    current = self._entries.get(resource)
                    if current is not None:
                        current.holders.pop(txn_id, None)
                        had_waiters = current.waiter_count > 0
                        self._cleanup_entry(resource, current)
                        if had_waiters:
                            self._released.notify_all()

    def try_acquire(self, txn_id: int, resource: EntityKey, mode: LockMode) -> bool:
        """Acquire a lock without waiting; returns ``False`` on conflict.

        This is the primitive behind the first-updater-wins write rule: a
        transaction that finds the entity already write-locked by a concurrent
        transaction is *not* the first updater and must abort instead of
        queueing behind it.
        """
        with self._mutex:
            self.stats.acquisitions += 1
            entry = self._entries.setdefault(resource, _LockEntry())
            if entry.conflicts_with(txn_id, mode):
                self.stats.try_failures += 1
                return False
            self._grant(entry, txn_id, resource, mode)
            self.stats.immediate_grants += 1
            return True

    # -- release ----------------------------------------------------------------

    def release(self, txn_id: int, resource: EntityKey) -> None:
        """Release one lock held by ``txn_id`` (no-op if it is not held)."""
        with self._mutex:
            entry = self._entries.get(resource)
            if entry is None:
                return
            entry.holders.pop(txn_id, None)
            held = self._held_by_txn.get(txn_id)
            if held is not None:
                held.discard(resource)
            self._cleanup_entry(resource, entry)
            self._released.notify_all()

    def release_all(self, txn_id: int) -> None:
        """Release every lock held by ``txn_id`` (commit/abort path)."""
        with self._mutex:
            held = self._held_by_txn.pop(txn_id, set())
            for resource in held:
                entry = self._entries.get(resource)
                if entry is None:
                    continue
                entry.holders.pop(txn_id, None)
                self._cleanup_entry(resource, entry)
            self._wait_for.remove_transaction(txn_id)
            if held:
                self._released.notify_all()

    # -- introspection ------------------------------------------------------------

    def holders_of(self, resource: EntityKey) -> Dict[int, LockMode]:
        """Current holders of a resource (a copy)."""
        with self._mutex:
            entry = self._entries.get(resource)
            return dict(entry.holders) if entry is not None else {}

    def locks_held_by(self, txn_id: int) -> List[EntityKey]:
        """Resources currently locked by ``txn_id``."""
        with self._mutex:
            return sorted(self._held_by_txn.get(txn_id, set()))

    def is_locked(self, resource: EntityKey) -> bool:
        """Whether any transaction holds a lock on ``resource``."""
        with self._mutex:
            entry = self._entries.get(resource)
            return bool(entry and entry.holders)

    def active_lock_count(self) -> int:
        """Number of resources with at least one holder."""
        with self._mutex:
            return sum(1 for entry in self._entries.values() if entry.holders)

    # -- internal -------------------------------------------------------------------

    def _grant(
        self, entry: _LockEntry, txn_id: int, resource: EntityKey, mode: LockMode
    ) -> None:
        current = entry.holders.get(txn_id)
        if current is LockMode.EXCLUSIVE:
            return
        entry.holders[txn_id] = mode if current is None else (
            LockMode.EXCLUSIVE if LockMode.EXCLUSIVE in (current, mode) else LockMode.SHARED
        )
        self._held_by_txn.setdefault(txn_id, set()).add(resource)

    def _cleanup_entry(self, resource: EntityKey, entry: _LockEntry) -> None:
        if not entry.holders and entry.waiter_count == 0:
            self._entries.pop(resource, None)
