"""Read-committed engine: Neo4j's stock transaction manager.

Commits apply the transaction's buffered writes to the store in one batch and
update the (unversioned) indexes; there is no validation phase because read
committed permits the anomalies that validation would prevent.
"""

from __future__ import annotations

import itertools
import threading
from typing import Dict, Optional

from repro.engine import GraphEngine, IsolationLevel
from repro.graph.entity import EntityKind, NodeData, RelationshipData
from repro.graph.store_manager import StoreManager
from repro.index.index_manager import IndexManager
from repro.locking.lock_manager import LockManager
from repro.locking.rc_transaction import ReadCommittedTransaction
from repro.obs import Observability
from repro.query.cache import DEFAULT_QUERY_CACHE_SIZE, QueryCaches
from repro.stats import CardinalityEpoch, EngineStats

__all__ = ["EngineStats", "ReadCommittedEngine"]


class ReadCommittedEngine(GraphEngine):
    """Lock-based engine providing read-committed isolation."""

    isolation_level = IsolationLevel.READ_COMMITTED

    def __init__(
        self,
        store: StoreManager,
        *,
        lock_manager: Optional[LockManager] = None,
        index_manager: Optional[IndexManager] = None,
        lock_timeout: Optional[float] = None,
        eager_read_unlock: bool = True,
        query_cache_size: int = DEFAULT_QUERY_CACHE_SIZE,
        obs: Optional[Observability] = None,
    ) -> None:
        """``eager_read_unlock`` routes point reads through the lock manager's
        short shared guard — one lock-table visit instead of two, no holder
        bookkeeping, and no risk of a short read dropping a long lock the
        transaction retains.  ``False`` restores the seed's acquire/release
        pair (bench_e11 measures the difference).
        """
        self.store = store
        self.locks = lock_manager or (
            LockManager(default_timeout=lock_timeout) if lock_timeout else LockManager()
        )
        self.stats_epoch = CardinalityEpoch()
        self.indexes = index_manager or IndexManager(stats_epoch=self.stats_epoch)
        if index_manager is None:
            self.indexes.rebuild(store)
        elif self.indexes.stats_epoch is not None:
            self.stats_epoch = self.indexes.stats_epoch
        else:
            # A caller-supplied index manager without an epoch still has to
            # drive plan-cache invalidation: adopt it into ours.
            self.indexes.stats_epoch = self.stats_epoch
        self.eager_read_unlock = eager_read_unlock
        self.query_caches = QueryCaches(query_cache_size)
        # Concurrency control as a policy object, mirroring the MVCC engine:
        # under two-phase locking every conflict the level prevents is
        # prevented by the lock manager itself, so the policy is a no-op —
        # it exists so the engine abstraction and the statistics surface
        # (policy name, abort reasons) have one shape across levels.
        # (Imported lazily: cc_policy sits in repro.core, which imports the
        # lock manager from this package at module-initialisation time.)
        from repro.core.cc_policy import TwoPhaseLockingPolicy

        self.cc = TwoPhaseLockingPolicy(self.locks)
        self.obs = obs if obs is not None else Observability()
        self.stats = EngineStats(self.obs.registry)
        self._txn_ids = itertools.count(1)
        self._commit_lock = threading.Lock()
        self._io_abort_lock = threading.Lock()
        self._io_abort_counts = {"io-error": 0, "degraded-mode": 0}

    # -- transaction lifecycle ---------------------------------------------

    def begin(
        self, *, read_only: bool = False, deferrable: Optional[bool] = None
    ) -> ReadCommittedTransaction:
        """Start a new read-committed transaction.

        ``deferrable`` (a safe-snapshot concept) has no meaning under read
        committed and is accepted for interface uniformity.  A degraded
        engine fences write transactions here (read-only ones proceed).
        """
        if not read_only:
            self.store.health.ensure_writable()
        self.stats.record_begin()
        txn = ReadCommittedTransaction(self, next(self._txn_ids), read_only=read_only)
        trace = self.obs.tracer.maybe_start(txn.txn_id, read_only=read_only)
        if trace is not None:
            trace.mark("begin")
            txn.trace = trace
        return txn

    def commit_transaction(self, txn: ReadCommittedTransaction) -> None:
        """Apply a transaction's writes to the store and indexes."""
        trace = getattr(txn, "trace", None)
        if trace is not None:
            trace.mark("read")
        writes = txn.pending_writes()
        if writes:
            with self._commit_lock:
                if trace is not None:
                    trace.mark("stripe_wait")  # the 2PL engine's one "stripe"
                old_states = self._capture_old_states(writes)
                operations = txn.build_store_operations()
                self.store.apply_batch(txn.txn_id, operations)
                self._update_indexes(writes, old_states)
            if trace is not None:
                trace.mark("wal")
        self.locks.release_all(txn.txn_id)
        self.stats.record_commit()
        if trace is not None:
            trace.mark("publish")
            trace.finish("committed")
            self.obs.tracer.record(trace)

    def abort_transaction(self, txn: ReadCommittedTransaction) -> None:
        """Discard a transaction's writes and release its locks."""
        self.locks.release_all(txn.txn_id)
        self.stats.record_abort()
        reason = getattr(txn, "abort_reason", None) or "rollback"
        if reason in self._io_abort_counts:
            with self._io_abort_lock:
                self._io_abort_counts[reason] += 1
        self.obs.txn_abort_reasons.labels(reason=reason).inc()
        trace = getattr(txn, "trace", None)
        if trace is not None:
            txn.trace = None
            trace.finish("aborted", reason)
            self.obs.tracer.record(trace)

    # -- cardinality fast paths (query planner estimates) ---------------------

    def cardinality_epoch(self) -> int:
        """Current statistics epoch (the plan cache's invalidation key)."""
        return self.stats_epoch.epoch

    def count_nodes_with_label(self, label: str) -> int:
        """Nodes currently carrying ``label`` in O(1) (no set copy)."""
        return self.indexes.count_nodes_with_label(label)

    def count_nodes_with_property(self, key: str, value) -> int:
        """Nodes currently holding ``key`` = ``value`` in O(1)."""
        return self.indexes.count_nodes_with_property(key, value)

    def count_relationships_of_type(self, rel_type: str) -> int:
        """Relationships currently of ``rel_type`` in O(1)."""
        return self.indexes.count_relationships_of_type(rel_type)

    def cardinalities(self) -> Dict[str, Dict[str, int]]:
        """Per-label and per-type cardinalities (stats surface)."""
        return self.indexes.cardinalities()

    def abort_reasons(self) -> Dict[str, int]:
        """Abort counts by cause; 2PL adds only deadlock and IO-path victims."""
        with self._io_abort_lock:
            io_counts = dict(self._io_abort_counts)
        return {
            "ww-conflict": 0,
            "rw-antidependency": 0,
            "safe-snapshot": 0,
            "deadlock": self.locks.stats.deadlocks + self.locks.stats.timeouts,
            "io-error": io_counts["io-error"],
            "degraded-mode": io_counts["degraded-mode"],
        }

    # -- ids ------------------------------------------------------------------

    def allocate_node_id(self) -> int:
        return self.store.allocate_node_id()

    def allocate_relationship_id(self) -> int:
        return self.store.allocate_relationship_id()

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Release engine resources (nothing engine-specific to do here)."""

    # -- internal -----------------------------------------------------------------

    def _capture_old_states(self, writes) -> Dict:
        old_states: Dict = {}
        for key in writes:
            if key.kind is EntityKind.NODE:
                old_states[key] = self.store.read_node(key.entity_id)
            else:
                old_states[key] = self.store.read_relationship(key.entity_id)
        return old_states

    def _update_indexes(self, writes, old_states) -> None:
        for key, new_state in writes.items():
            old_state = old_states.get(key)
            if key.kind is EntityKind.NODE:
                self.indexes.apply_node_change(old_state, new_state)
            else:
                self.indexes.apply_relationship_change(old_state, new_state)
