"""Traversal framework.

The paper's introduction motivates graph databases by their ability to run a
whole traversal inside the query engine instead of ping-ponging between
client and server.  This module provides that capability over the transaction
API: breadth-first and depth-first expansion with configurable relationship
filters, depth limits, uniqueness and user evaluators, plus a few common
derived algorithms (shortest path, reachable set).

Everything here runs inside one transaction, so under snapshot isolation a
multi-step traversal observes one consistent snapshot — the exact property
whose absence under read committed (a traversed path disappearing mid-
algorithm) the paper's introduction calls out.

Performance note: every expansion funnels through ``tx.expand`` →
``tx.relationships_of`` → the engine transaction, which under snapshot
isolation serves repeat visits from its snapshot-local adjacency and payload
caches (safe because a snapshot is immutable).  A traversal that touches the
same neighbourhood from several directions — ``friends_of_friends``, cycle
detection, shortest-path frontiers — resolves each version chain once, not
once per visit.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Iterator, List, Optional, Sequence, Set, Tuple

from repro.api.transaction import Node, NodeLike, Relationship, Transaction, _node_id
from repro.graph.entity import Direction


class Uniqueness(enum.Enum):
    """How often a traversal may revisit the same node."""

    NODE_GLOBAL = "node_global"
    RELATIONSHIP_GLOBAL = "relationship_global"
    NONE = "none"


class Order(enum.Enum):
    """Expansion order of the traversal frontier."""

    BREADTH_FIRST = "breadth_first"
    DEPTH_FIRST = "depth_first"


@dataclass(frozen=True)
class Path:
    """An alternating sequence of nodes and relationships from a start node."""

    nodes: Tuple[Node, ...]
    relationships: Tuple[Relationship, ...] = ()

    @property
    def start_node(self) -> Node:
        """First node of the path."""
        return self.nodes[0]

    @property
    def end_node(self) -> Node:
        """Last node of the path."""
        return self.nodes[-1]

    @property
    def length(self) -> int:
        """Number of relationships in the path."""
        return len(self.relationships)

    def extend(self, relationship: Relationship, node: Node) -> "Path":
        """A new path with one more hop appended."""
        return Path(self.nodes + (node,), self.relationships + (relationship,))

    def node_ids(self) -> List[int]:
        """Ids of the nodes along the path, in order."""
        return [node.id for node in self.nodes]

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Path(" + " -> ".join(str(node.id) for node in self.nodes) + ")"


#: An evaluator decides for each visited path whether to include it in the
#: results and whether to continue expanding past it.
Evaluator = Callable[[Path], Tuple[bool, bool]]


def include_all(path: Path) -> Tuple[bool, bool]:
    """Default evaluator: include every path and keep expanding."""
    return True, True


@dataclass
class TraversalDescription:
    """Builder describing a traversal; immutable-ish (builders return copies)."""

    order: Order = Order.BREADTH_FIRST
    direction: Direction = Direction.BOTH
    rel_types: Optional[Tuple[str, ...]] = None
    max_depth: Optional[int] = None
    min_depth: int = 0
    uniqueness: Uniqueness = Uniqueness.NODE_GLOBAL
    evaluator: Evaluator = include_all

    # -- builder methods -----------------------------------------------------------

    def breadth_first(self) -> "TraversalDescription":
        """Expand the shallowest frontier first."""
        return self._copy(order=Order.BREADTH_FIRST)

    def depth_first(self) -> "TraversalDescription":
        """Expand the deepest frontier first."""
        return self._copy(order=Order.DEPTH_FIRST)

    def relationships(
        self, *rel_types: str, direction: Direction = Direction.BOTH
    ) -> "TraversalDescription":
        """Restrict expansion to the given relationship types and direction."""
        return self._copy(rel_types=tuple(rel_types) or None, direction=direction)

    def with_direction(self, direction: Direction) -> "TraversalDescription":
        """Restrict expansion to one direction."""
        return self._copy(direction=direction)

    def limit_depth(self, max_depth: int) -> "TraversalDescription":
        """Stop expanding past ``max_depth`` hops."""
        return self._copy(max_depth=max_depth)

    def from_depth(self, min_depth: int) -> "TraversalDescription":
        """Only yield paths of at least ``min_depth`` hops."""
        return self._copy(min_depth=min_depth)

    def unique(self, uniqueness: Uniqueness) -> "TraversalDescription":
        """Set the revisit policy."""
        return self._copy(uniqueness=uniqueness)

    def evaluate_with(self, evaluator: Evaluator) -> "TraversalDescription":
        """Attach a custom evaluator (include?, continue?) per path."""
        return self._copy(evaluator=evaluator)

    def _copy(self, **overrides) -> "TraversalDescription":
        values = {
            "order": self.order,
            "direction": self.direction,
            "rel_types": self.rel_types,
            "max_depth": self.max_depth,
            "min_depth": self.min_depth,
            "uniqueness": self.uniqueness,
            "evaluator": self.evaluator,
        }
        values.update(overrides)
        return TraversalDescription(**values)

    # -- execution -------------------------------------------------------------------

    def traverse(self, tx: Transaction, start: NodeLike) -> Iterator[Path]:
        """Run the traversal from ``start`` inside ``tx``, yielding paths."""
        start_node = tx.get_node(_node_id(start))
        initial = Path((start_node,))
        frontier: Deque[Path] = deque([initial])
        visited_nodes: Set[int] = {start_node.id}
        visited_rels: Set[int] = set()
        while frontier:
            if self.order is Order.BREADTH_FIRST:
                path = frontier.popleft()
            else:
                path = frontier.pop()
            include, expand = self.evaluator(path)
            if include and path.length >= self.min_depth:
                yield path
            if not expand:
                continue
            if self.max_depth is not None and path.length >= self.max_depth:
                continue
            for relationship, neighbour in tx.expand(
                path.end_node, self.direction, self.rel_types
            ):
                if self.uniqueness is Uniqueness.NODE_GLOBAL:
                    if neighbour.id in visited_nodes:
                        continue
                    visited_nodes.add(neighbour.id)
                elif self.uniqueness is Uniqueness.RELATIONSHIP_GLOBAL:
                    if relationship.id in visited_rels:
                        continue
                    visited_rels.add(relationship.id)
                else:
                    # No global uniqueness, but never walk straight back along
                    # the relationship we just arrived by.
                    if path.relationships and relationship.id == path.relationships[-1].id:
                        continue
                frontier.append(path.extend(relationship, neighbour))

    def nodes(self, tx: Transaction, start: NodeLike) -> Iterator[Node]:
        """Convenience: yield the end node of every traversed path."""
        for path in self.traverse(tx, start):
            yield path.end_node


# ---------------------------------------------------------------------------
# Batched single-hop expansion
# ---------------------------------------------------------------------------

def batch_expand(
    tx: Transaction,
    sources: Sequence[Node],
    direction: Direction = Direction.BOTH,
    rel_types: Optional[Sequence[str]] = None,
) -> List[List[Tuple[Relationship, Node]]]:
    """One-hop expansion of many source nodes as a single batched read.

    The per-source equivalent of ``list(tx.expand(source, ...))``, but the
    adjacency lists of *all* sources resolve in one engine visit and every
    distinct neighbour id is materialised exactly once for the whole batch
    (one batched point-read, one SIREAD-registration visit under
    serializable isolation).  The vectorized executor's single-hop
    ``Expand`` operator is built on this; per-source output order matches
    ``tx.expand`` exactly.
    """
    adjacency = tx.relationships_of_many(sources, direction, rel_types)
    neighbour_ids: List[int] = []
    seen: Set[int] = set()
    for source, relationships in zip(sources, adjacency):
        source_id = source.id
        for relationship in relationships:
            other = relationship.other_node_id(source_id)
            if other not in seen:
                seen.add(other)
                neighbour_ids.append(other)
    neighbours = {
        node.id: node for node in tx.nodes_by_ids(neighbour_ids)
    }
    expanded: List[List[Tuple[Relationship, Node]]] = []
    for source, relationships in zip(sources, adjacency):
        source_id = source.id
        pairs: List[Tuple[Relationship, Node]] = []
        for relationship in relationships:
            neighbour = neighbours.get(relationship.other_node_id(source_id))
            if neighbour is not None:
                pairs.append((relationship, neighbour))
        expanded.append(pairs)
    return expanded


# ---------------------------------------------------------------------------
# Derived algorithms
# ---------------------------------------------------------------------------

def reachable_node_ids(
    tx: Transaction,
    start: NodeLike,
    *,
    max_depth: Optional[int] = None,
    rel_types: Optional[Sequence[str]] = None,
    direction: Direction = Direction.BOTH,
) -> Set[int]:
    """Ids of every node reachable from ``start`` within ``max_depth`` hops."""
    description = TraversalDescription(
        direction=direction,
        rel_types=tuple(rel_types) if rel_types else None,
        max_depth=max_depth,
    )
    return {path.end_node.id for path in description.traverse(tx, start)}


def shortest_path(
    tx: Transaction,
    start: NodeLike,
    end: NodeLike,
    *,
    max_depth: Optional[int] = None,
    rel_types: Optional[Sequence[str]] = None,
    direction: Direction = Direction.BOTH,
) -> Optional[Path]:
    """Breadth-first shortest path between two nodes, or ``None``."""
    end_id = _node_id(end)
    description = TraversalDescription(
        order=Order.BREADTH_FIRST,
        direction=direction,
        rel_types=tuple(rel_types) if rel_types else None,
        max_depth=max_depth,
    )
    for path in description.traverse(tx, start):
        if path.end_node.id == end_id:
            return path
    return None


def two_step_neighbourhood(
    tx: Transaction,
    start: NodeLike,
    *,
    rel_types: Optional[Sequence[str]] = None,
) -> Tuple[Set[int], Set[int]]:
    """The paper's motivating two-step algorithm: friends, then friends-of-friends.

    Returns ``(direct_neighbour_ids, second_hop_ids)``; the second set excludes
    the start node and the direct neighbours.  Running this inside one snapshot
    transaction guarantees both steps observe the same graph.
    """
    start_id = _node_id(start)
    first_hop = {node.id for node in tx.neighbours(start_id, Direction.BOTH, rel_types)}
    second_hop: Set[int] = set()
    for neighbour_id in first_hop:
        if tx.try_get_node(neighbour_id) is None:
            continue
        for second in tx.neighbours(neighbour_id, Direction.BOTH, rel_types):
            second_hop.add(second.id)
    second_hop -= first_hop
    second_hop.discard(start_id)
    return first_hop, second_hop
