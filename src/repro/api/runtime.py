"""The engine layer, separated from the session layer.

:class:`EngineRuntime` owns everything below the user-facing API: the
storage substrate (:class:`~repro.graph.store_manager.StoreManager`), one
concurrency-control engine, the observability bundle and the failpoint
registry.  It knows nothing about sessions, transactions handed to users,
drain order or exporters — that is :class:`~repro.api.database.GraphDatabase`'s
job (and, one level up, the network server's).

The split exists so the two layers can evolve independently: the network
service layer hosts one runtime behind many sessions, while the embedded
``GraphDatabase`` facade is now a thin session manager over the same class.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

from repro.core.conflict import ConflictPolicy
from repro.core.si_manager import DEFAULT_COMMIT_STRIPES, SnapshotIsolationEngine
from repro.engine import GraphEngine, IsolationLevel
from repro.fault import FailpointRegistry
from repro.graph.store_manager import StoreManager
from repro.health import EngineHealth
from repro.locking.lock_manager import LockManager
from repro.locking.rc_manager import ReadCommittedEngine
from repro.obs import MetricsRegistry, Observability
from repro.query.cache import DEFAULT_QUERY_CACHE_SIZE

__all__ = ["EngineRuntime", "coerce_isolation", "coerce_policy"]


def coerce_isolation(isolation: Union[IsolationLevel, str]) -> IsolationLevel:
    """Accept an :class:`IsolationLevel` or its string value."""
    if isinstance(isolation, IsolationLevel):
        return isolation
    try:
        return IsolationLevel(isolation)
    except ValueError as exc:
        valid = ", ".join(level.value for level in IsolationLevel)
        raise ValueError(
            f"unknown isolation level {isolation!r}; expected one of: {valid}"
        ) from exc


def coerce_policy(policy: Union[ConflictPolicy, str]) -> ConflictPolicy:
    """Accept a :class:`ConflictPolicy` or its string value."""
    if isinstance(policy, ConflictPolicy):
        return policy
    try:
        return ConflictPolicy(policy)
    except ValueError as exc:
        valid = ", ".join(choice.value for choice in ConflictPolicy)
        raise ValueError(
            f"unknown conflict policy {policy!r}; expected one of: {valid}"
        ) from exc


class EngineRuntime:
    """Storage substrate + one transaction engine + observability, as a unit.

    Construction wires the same graph the former ``GraphDatabase.__init__``
    built: failpoints into the store, the observability bundle into store
    and WAL, the degraded-mode gauge onto the health switch, and the engine
    onto all of it.  ``close()`` tears down engine then store; admission
    control and drain ordering live a layer up.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        *,
        isolation: Union[IsolationLevel, str] = IsolationLevel.SNAPSHOT,
        conflict_policy: Union[ConflictPolicy, str] = ConflictPolicy.FIRST_UPDATER_WINS,
        page_cache_pages: int = 4096,
        wal_enabled: bool = True,
        wal_sync: bool = False,
        lock_timeout: float = 10.0,
        version_cache_capacity: int = 200_000,
        gc_every_n_commits: int = 0,
        commit_stripes: int = DEFAULT_COMMIT_STRIPES,
        group_commit: bool = False,
        snapshot_read_cache: bool = True,
        query_cache_size: int = DEFAULT_QUERY_CACHE_SIZE,
        query_executor: str = "batch",
        query_batch_size: int = 1024,
        morsel_workers: int = 0,
        morsel_threshold: int = 2048,
        rc_eager_read_unlock: bool = True,
        safe_snapshots: bool = True,
        defer_readonly: bool = False,
        tracing: bool = False,
        trace_sample_rate: float = 1.0,
        trace_ring_size: int = 256,
        slow_query_seconds: Optional[float] = None,
        slow_query_capacity: int = 128,
        redact_parameters: bool = False,
        metrics_registry: Optional[MetricsRegistry] = None,
        failpoints: Union[FailpointRegistry, Mapping[str, str], str, None] = None,
    ) -> None:
        self.isolation = coerce_isolation(isolation)
        self.failpoints = FailpointRegistry.from_config(failpoints)
        self.observability = Observability(
            registry=metrics_registry,
            tracing=tracing,
            trace_sample_rate=trace_sample_rate,
            trace_ring_size=trace_ring_size,
            slow_query_seconds=slow_query_seconds,
            slow_query_capacity=slow_query_capacity,
            redact_parameters=redact_parameters,
        )
        self.store = StoreManager(
            path,
            page_cache_pages=page_cache_pages,
            wal_enabled=wal_enabled,
            wal_sync=wal_sync,
            # Never recycle entity ids under MVCC: old versions of a deleted
            # entity may still be readable by open snapshots.
            reuse_entity_ids=(self.isolation is IsolationLevel.READ_COMMITTED),
            group_commit=group_commit,
            failpoints=self.failpoints,
        )
        self.store.obs = self.observability
        self.store.wal.obs = self.observability
        if self.failpoints is not None and self.failpoints.on_fire is None:
            faults_injected = self.observability.faults_injected
            self.failpoints.on_fire = lambda fault: faults_injected.labels(
                site=fault.site
            ).inc()
        # The degraded gauge is computed at scrape time from the health
        # switch (the store also pushes 1 eagerly when it degrades, which
        # set_function supersedes — both views agree by construction).
        health = self.store.health
        self.observability.engine_degraded.set_function(
            lambda: 1 if health.is_degraded else 0
        )
        self.observability.health_source = health.as_dict
        locks = LockManager(default_timeout=lock_timeout)
        if self.isolation is not IsolationLevel.READ_COMMITTED:
            # SNAPSHOT and SERIALIZABLE share the MVCC engine; the isolation
            # level selects the concurrency-control policy (plain write rule
            # vs. SSI rw-antidependency tracking).
            self.engine: GraphEngine = SnapshotIsolationEngine(
                self.store,
                lock_manager=locks,
                conflict_policy=coerce_policy(conflict_policy),
                isolation=self.isolation,
                version_cache_capacity=version_cache_capacity,
                gc_every_n_commits=gc_every_n_commits,
                commit_stripes=commit_stripes,
                snapshot_read_cache=snapshot_read_cache,
                query_cache_size=query_cache_size,
                query_executor=query_executor,
                query_batch_size=query_batch_size,
                morsel_workers=morsel_workers,
                morsel_threshold=morsel_threshold,
                safe_snapshots=safe_snapshots,
                defer_readonly=defer_readonly,
                obs=self.observability,
            )
        else:
            self.engine = ReadCommittedEngine(
                self.store,
                lock_manager=locks,
                eager_read_unlock=rc_eager_read_unlock,
                query_cache_size=query_cache_size,
                obs=self.observability,
            )
            # The RC engine takes no executor knobs of its own; attach the
            # shared query-executor configuration (morsels never apply — the
            # eligibility check requires a multi-version snapshot reader).
            self.engine.query_executor = query_executor
            self.engine.query_batch_size = max(1, int(query_batch_size))
            self.engine.morsel_workers = 0

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    @property
    def health(self) -> EngineHealth:
        """The health switch shared by store, engine and exporter."""
        return self.store.health

    @property
    def is_snapshot_isolation(self) -> bool:
        """Whether this runtime runs the paper's MVCC engine (SI or SSI)."""
        return self.isolation is not IsolationLevel.READ_COMMITTED

    def statistics(self) -> Dict[str, object]:
        """Engine-layer statistics (the session layer adds its own on top)."""
        stats: Dict[str, object] = {
            "isolation": self.isolation.value,
            "health": self.store.health.as_dict(),
            "store": self.store.stats.as_dict(),
            "page_cache": self.store.page_cache.stats.as_dict(),
            "wal": self.store.wal_stats(),
            "query_cache": dict(
                self.engine.query_caches.stats(),
                stats_epoch=self.engine.stats_epoch.as_dict(),
            ),
            "observability": self.observability.stats(),
        }
        if self.failpoints is not None:
            stats["failpoints"] = self.failpoints.stats()
        if isinstance(self.engine, SnapshotIsolationEngine):
            stats["engine"] = self.engine.statistics()
            stats["object_cache"] = self.engine.versions.cache.stats.as_dict()
            # Safe-snapshot counters are load-bearing for benchmarks (retry
            # attribution), so they get a top-level alias too.
            stats["safe_snapshots"] = stats["engine"]["safe_snapshots"]
        else:
            stats["engine"] = {
                "transactions": dict(
                    self.engine.stats.as_dict(),
                    abort_reasons=self.engine.abort_reasons(),
                ),
                "concurrency_control": self.engine.cc.statistics(),
                "cardinalities": self.engine.cardinalities(),
            }
            stats["locks"] = self.engine.locks.stats.as_dict()
        return stats

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Flush dirty pages and truncate the write-ahead log."""
        self.store.checkpoint()

    def close(self) -> None:
        """Close engine then store (the caller drains transactions first)."""
        self.engine.close()
        self.store.close()
