"""Public API of the graph database.

* :class:`repro.api.database.GraphDatabase` — open a database (in memory or
  on disk) under either isolation level.
* :class:`repro.api.transaction.Transaction` — the user-facing transaction:
  create/read/update/delete nodes and relationships, predicate lookups, and
  traversal entry points.
* :mod:`repro.api.traversal` — a small traversal framework (breadth/depth
  first, uniqueness, shortest path) that runs whole multi-step algorithms
  inside one transaction, which is the query-side capability the paper's
  introduction motivates.
"""

from repro.api.database import GraphDatabase
from repro.api.transaction import Node, Relationship, Transaction
from repro.api.traversal import Path, TraversalDescription

__all__ = [
    "GraphDatabase",
    "Node",
    "Path",
    "Relationship",
    "Transaction",
    "TraversalDescription",
]
