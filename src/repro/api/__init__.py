"""Public API of the graph database.

* :class:`repro.api.database.GraphDatabase` — open a database (in memory or
  on disk) under either isolation level.
* :class:`repro.api.transaction.Transaction` — the user-facing transaction:
  create/read/update/delete nodes and relationships, predicate lookups, and
  traversal entry points.
* :class:`repro.api.session.Session` — a session-scoped transaction holder
  (one open transaction at a time, session defaults, read-your-writes
  token); the unit the network server maps connections onto.
* :mod:`repro.api.traversal` — a small traversal framework (breadth/depth
  first, uniqueness, shortest path) that runs whole multi-step algorithms
  inside one transaction, which is the query-side capability the paper's
  introduction motivates.

Internally the database splits into an engine layer
(:class:`repro.api.runtime.EngineRuntime`: store, engine, observability)
and a session layer (:class:`GraphDatabase` itself: transaction gate,
sessions, retries, exporters, drain ordering) — the seam the network
service layer builds on.
"""

from repro.api.database import GraphDatabase
from repro.api.lifecycle import TransactionGate
from repro.api.runtime import EngineRuntime
from repro.api.session import Session
from repro.api.transaction import Node, Relationship, Transaction
from repro.api.traversal import Path, TraversalDescription

__all__ = [
    "EngineRuntime",
    "GraphDatabase",
    "Node",
    "Path",
    "Relationship",
    "Session",
    "Transaction",
    "TransactionGate",
    "TraversalDescription",
]
