"""User-facing transactions and entity handles.

:class:`Transaction` wraps an engine transaction (read-committed or snapshot
isolation — the API is identical) and adds the graph-model rules Neo4j
enforces at its API boundary: property and label validation, endpoint
existence checks, and the "cannot delete a node that still has relationships
unless detach-deleting" constraint.

:class:`Node` and :class:`Relationship` are lightweight handles: immutable
snapshots of an entity's state as read by this transaction, with convenience
methods that delegate mutations back to the transaction.
"""

from __future__ import annotations

import sys
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.query.result import QueryResult

from repro.engine import EngineTransaction, TransactionState
from repro.errors import (
    ConstraintViolationError,
    NodeNotFoundError,
    RelationshipNotFoundError,
    ReservedNameError,
    classify_abort,
)
from repro.graph.entity import Direction, NodeData, RelationshipData
from repro.graph.properties import (
    RESERVED_PROPERTY_PREFIX,
    PropertyValue,
    validate_properties,
    validate_property_key,
    validate_property_value,
)

#: Anything accepted where a node is expected: a handle or a raw id.
NodeLike = Union["Node", int]

#: Anything accepted where a relationship is expected: a handle or a raw id.
RelationshipLike = Union["Relationship", int]


def _validate_label(label: str) -> str:
    if not isinstance(label, str) or not label:
        raise ValueError("labels must be non-empty strings")
    if label.startswith(RESERVED_PROPERTY_PREFIX):
        raise ReservedNameError(
            f"label {label!r} uses the reserved prefix {RESERVED_PROPERTY_PREFIX!r}"
        )
    # One canonical string per label spelling: frozenset membership tests on
    # hot read paths then short-circuit on object identity.
    return sys.intern(label) if type(label) is str else label


class Node:
    """A read handle on one node, as seen by one transaction."""

    __slots__ = ("_tx", "_data")

    def __init__(self, tx: "Transaction", data: NodeData) -> None:
        self._tx = tx
        self._data = data

    # -- state ------------------------------------------------------------------

    @property
    def id(self) -> int:
        """The node id."""
        return self._data.node_id

    @property
    def labels(self) -> Set[str]:
        """The node's labels (a copy)."""
        return set(self._data.labels)

    @property
    def properties(self) -> Dict[str, PropertyValue]:
        """The node's properties (a copy)."""
        return dict(self._data.properties)

    @property
    def data(self) -> NodeData:
        """The underlying immutable state."""
        return self._data

    def __getitem__(self, key: str) -> PropertyValue:
        return self._data.properties[key]

    def get(self, key: str, default: Optional[PropertyValue] = None) -> Optional[PropertyValue]:
        """Property value, or ``default`` if the property is absent."""
        return self._data.properties.get(key, default)

    def has_label(self, label: str) -> bool:
        """Whether the node carries ``label``."""
        return label in self._data.labels

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Node) and other.id == self.id

    def __hash__(self) -> int:
        # Nodes hash even, relationships odd (see Relationship.__hash__):
        # cheap, stable, and collision-free across the two handle types.
        return self._data.node_id << 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        labels = ":".join(sorted(self._data.labels))
        return f"Node(id={self.id}, labels=[{labels}])"

    # -- delegated mutations ---------------------------------------------------------

    def set_property(self, key: str, value: PropertyValue) -> "Node":
        """Set one property; returns a refreshed handle."""
        return self._tx.set_node_property(self, key, value)

    def remove_property(self, key: str) -> "Node":
        """Remove one property; returns a refreshed handle."""
        return self._tx.remove_node_property(self, key)

    def add_label(self, label: str) -> "Node":
        """Add a label; returns a refreshed handle."""
        return self._tx.add_label(self, label)

    def remove_label(self, label: str) -> "Node":
        """Remove a label; returns a refreshed handle."""
        return self._tx.remove_label(self, label)

    def delete(self, *, detach: bool = False) -> None:
        """Delete this node (see :meth:`Transaction.delete_node`)."""
        self._tx.delete_node(self, detach=detach)

    def relationships(
        self,
        direction: Direction = Direction.BOTH,
        rel_types: Optional[Sequence[str]] = None,
    ) -> List["Relationship"]:
        """Relationships attached to this node."""
        return self._tx.relationships_of(self, direction, rel_types)

    def degree(self, direction: Direction = Direction.BOTH) -> int:
        """Number of attached relationships."""
        return len(self._tx.relationships_of(self, direction))


class Relationship:
    """A read handle on one relationship, as seen by one transaction."""

    __slots__ = ("_tx", "_data")

    def __init__(self, tx: "Transaction", data: RelationshipData) -> None:
        self._tx = tx
        self._data = data

    @property
    def id(self) -> int:
        """The relationship id."""
        return self._data.rel_id

    @property
    def type(self) -> str:
        """The relationship type name."""
        return self._data.rel_type

    @property
    def start_node_id(self) -> int:
        """Id of the start (source) node."""
        return self._data.start_node

    @property
    def end_node_id(self) -> int:
        """Id of the end (destination) node."""
        return self._data.end_node

    @property
    def properties(self) -> Dict[str, PropertyValue]:
        """The relationship's properties (a copy)."""
        return dict(self._data.properties)

    @property
    def data(self) -> RelationshipData:
        """The underlying immutable state."""
        return self._data

    def __getitem__(self, key: str) -> PropertyValue:
        return self._data.properties[key]

    def get(self, key: str, default: Optional[PropertyValue] = None) -> Optional[PropertyValue]:
        """Property value, or ``default`` if the property is absent."""
        return self._data.properties.get(key, default)

    def other_node_id(self, node: NodeLike) -> int:
        """Id of the endpoint that is not ``node``."""
        return self._data.other_node(_node_id(node))

    def start_node(self) -> Node:
        """Handle on the start node."""
        return self._tx.get_node(self._data.start_node)

    def end_node(self) -> Node:
        """Handle on the end node."""
        return self._tx.get_node(self._data.end_node)

    def other_node(self, node: NodeLike) -> Node:
        """Handle on the endpoint that is not ``node``."""
        return self._tx.get_node(self.other_node_id(node))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Relationship) and other.id == self.id

    def __hash__(self) -> int:
        return (self._data.rel_id << 1) | 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Relationship(id={self.id}, type={self.type}, "
            f"{self.start_node_id}->{self.end_node_id})"
        )

    # -- delegated mutations ---------------------------------------------------------

    def set_property(self, key: str, value: PropertyValue) -> "Relationship":
        """Set one property; returns a refreshed handle."""
        return self._tx.set_relationship_property(self, key, value)

    def remove_property(self, key: str) -> "Relationship":
        """Remove one property; returns a refreshed handle."""
        return self._tx.remove_relationship_property(self, key)

    def delete(self) -> None:
        """Delete this relationship."""
        self._tx.delete_relationship(self)


def _node_id(node: NodeLike) -> int:
    return node.id if isinstance(node, Node) else int(node)


def _rel_id(relationship: RelationshipLike) -> int:
    return relationship.id if isinstance(relationship, Relationship) else int(relationship)


class Transaction:
    """The user-facing transaction (context manager: commit on success)."""

    def __init__(self, engine, engine_txn: EngineTransaction, *, on_close=None) -> None:
        self._engine = engine
        self._txn = engine_txn
        #: Invoked exactly once when the transaction leaves the ACTIVE state
        #: (commit, failed commit, or rollback).  The database's transaction
        #: gate registers itself here so ``close()`` can drain in-flight
        #: transactions before releasing the store files.
        self._on_close = on_close

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def id(self) -> int:
        """Engine transaction id."""
        return self._txn.txn_id

    @property
    def is_open(self) -> bool:
        """Whether the transaction is still active."""
        return self._txn.is_open

    @property
    def read_only(self) -> bool:
        """Whether the transaction was opened read-only."""
        return self._txn.read_only

    @property
    def isolation_level(self):
        """The :class:`~repro.engine.IsolationLevel` this transaction runs under.

        Under ``SERIALIZABLE``, any read or write — not just ``commit()`` —
        may raise :class:`~repro.errors.SerializationError` when the SSI
        policy picks this transaction as the victim of a dangerous structure;
        callers should run such transactions through ``db.run_transaction``.
        """
        return self._engine.isolation_level

    @property
    def engine_transaction(self) -> EngineTransaction:
        """The wrapped engine transaction (exposed for experiments)."""
        return self._txn

    def commit(self) -> None:
        """Commit the transaction."""
        try:
            self._txn.commit()
        finally:
            # A failed commit aborts the engine transaction, so either way
            # the transaction is no longer active once commit() returns.
            self._notify_closed()

    def rollback(self) -> None:
        """Roll the transaction back (safe to call on a closed transaction)."""
        try:
            self._txn.rollback()
        finally:
            self._notify_closed()

    def _notify_closed(self) -> None:
        if self._txn.is_open:
            return
        callback, self._on_close = self._on_close, None
        if callback is not None:
            callback(self)

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if exc_type is not None:
            # Attribute the abort before rolling back: write-time conflicts
            # (first-updater-wins) surface mid-block rather than in commit(),
            # and the trace/abort-reason counters should still name them.
            if getattr(self._txn, "abort_reason", None) is None:
                self._txn.abort_reason = classify_abort(exc_value)
            self.rollback()
            return
        if self._txn.state is TransactionState.ACTIVE:
            self.commit()

    # ------------------------------------------------------------------
    # node operations
    # ------------------------------------------------------------------

    def create_node(
        self,
        labels: Iterable[str] = (),
        properties: Optional[Mapping[str, PropertyValue]] = None,
    ) -> Node:
        """Create a node with the given labels and properties."""
        clean_labels = frozenset(_validate_label(label) for label in labels)
        clean_properties = validate_properties(properties)
        node_id = self._engine.allocate_node_id()
        data = NodeData(node_id=node_id, labels=clean_labels, properties=clean_properties)
        self._txn.put_node(data, create=True)
        return Node(self, data)

    def get_node(self, node: NodeLike) -> Node:
        """Node handle for ``node``; raises if it is not visible."""
        node_id = _node_id(node)
        data = self._txn.read_node(node_id)
        if data is None:
            raise NodeNotFoundError(node_id)
        return Node(self, data)

    def try_get_node(self, node: NodeLike) -> Optional[Node]:
        """Node handle for ``node``, or ``None`` if it is not visible."""
        data = self._txn.read_node(_node_id(node))
        return Node(self, data) if data is not None else None

    def node_exists(self, node: NodeLike) -> bool:
        """Whether ``node`` is visible to this transaction."""
        return self._txn.read_node(_node_id(node)) is not None

    def nodes(self) -> Iterator[Node]:
        """Every node visible to this transaction."""
        for data in self._txn.iter_nodes():
            yield Node(self, data)

    def find_nodes(
        self,
        label: Optional[str] = None,
        key: Optional[str] = None,
        value: Optional[PropertyValue] = None,
    ) -> List[Node]:
        """Nodes matching a label and/or a property equality predicate.

        With no arguments every visible node is returned.  Results are sorted
        by node id so repeated scans are comparable (the phantom experiment
        relies on that).
        """
        if key is None and value is not None:
            raise ValueError("find_nodes with a property value requires a key")
        if label is None and key is None:
            return sorted(self.nodes(), key=lambda node: node.id)
        if key is not None and value is None:
            raise ValueError("find_nodes with a property key requires a value")
        if label is not None and key is not None:
            ids = self._txn.find_nodes_by_label(label) & self._txn.find_nodes_by_property(
                key, value
            )
        elif label is not None:
            ids = self._txn.find_nodes_by_label(label)
        else:
            assert key is not None
            ids = self._txn.find_nodes_by_property(key, value)
        return self.nodes_by_ids(sorted(ids))

    def nodes_by_ids(self, node_ids: Sequence[int]) -> List[Node]:
        """Handles for the visible nodes among ``node_ids``, in input order.

        Batch companion of :meth:`get_node`: one engine-level batch read
        resolves every id (one SIREAD-registration visit under serializable
        isolation) and invisible ids are silently skipped.  The vectorized
        executor's scans are built on this.
        """
        return [
            Node(self, data)
            for data in self._txn.read_nodes_many(node_ids)
            if data is not None
        ]

    def set_node_property(self, node: NodeLike, key: str, value: PropertyValue) -> Node:
        """Set one property on a node (read-modify-write under the engine's rules)."""
        validate_property_key(key)
        clean_value = validate_property_value(value)
        data = self._require_node_data(node)
        updated = data.with_property(key, clean_value)
        self._txn.put_node(updated)
        return Node(self, updated)

    def remove_node_property(self, node: NodeLike, key: str) -> Node:
        """Remove one property from a node (no-op if absent)."""
        data = self._require_node_data(node)
        updated = data.without_property(key)
        self._txn.put_node(updated)
        return Node(self, updated)

    def update_node_properties(
        self, node: NodeLike, properties: Mapping[str, PropertyValue]
    ) -> Node:
        """Merge a property map into a node's existing properties."""
        clean = validate_properties(properties)
        data = self._require_node_data(node)
        merged = dict(data.properties)
        merged.update(clean)
        updated = data.with_properties(merged)
        self._txn.put_node(updated)
        return Node(self, updated)

    def add_label(self, node: NodeLike, label: str) -> Node:
        """Add a label to a node."""
        _validate_label(label)
        data = self._require_node_data(node)
        updated = data.with_label(label)
        self._txn.put_node(updated)
        return Node(self, updated)

    def remove_label(self, node: NodeLike, label: str) -> Node:
        """Remove a label from a node (no-op if absent)."""
        data = self._require_node_data(node)
        updated = data.without_label(label)
        self._txn.put_node(updated)
        return Node(self, updated)

    def delete_node(self, node: NodeLike, *, detach: bool = False) -> None:
        """Delete a node.

        A node that still has visible relationships cannot be deleted unless
        ``detach=True``, in which case the relationships are deleted first
        (Neo4j's ``DETACH DELETE``).
        """
        node_id = _node_id(node)
        self._require_node_data(node_id)
        attached = self._txn.relationships_of(node_id)
        if attached:
            if not detach:
                raise ConstraintViolationError(
                    f"node {node_id} still has {len(attached)} relationship(s); "
                    "use detach=True to delete them too"
                )
            for relationship in attached:
                self._txn.delete_relationship(relationship.rel_id)
        self._txn.delete_node(node_id)

    # ------------------------------------------------------------------
    # relationship operations
    # ------------------------------------------------------------------

    def create_relationship(
        self,
        start: NodeLike,
        end: NodeLike,
        rel_type: str,
        properties: Optional[Mapping[str, PropertyValue]] = None,
    ) -> Relationship:
        """Create a relationship of ``rel_type`` from ``start`` to ``end``."""
        if not isinstance(rel_type, str) or not rel_type:
            raise ValueError("relationship types must be non-empty strings")
        rel_type = sys.intern(rel_type)
        start_id = _node_id(start)
        end_id = _node_id(end)
        self._require_node_data(start_id)
        self._require_node_data(end_id)
        clean_properties = validate_properties(properties)
        rel_id = self._engine.allocate_relationship_id()
        data = RelationshipData(
            rel_id=rel_id,
            rel_type=rel_type,
            start_node=start_id,
            end_node=end_id,
            properties=clean_properties,
        )
        self._txn.put_relationship(data, create=True)
        return Relationship(self, data)

    def get_relationship(self, relationship: RelationshipLike) -> Relationship:
        """Relationship handle; raises if it is not visible."""
        rel_id = _rel_id(relationship)
        data = self._txn.read_relationship(rel_id)
        if data is None:
            raise RelationshipNotFoundError(rel_id)
        return Relationship(self, data)

    def try_get_relationship(self, relationship: RelationshipLike) -> Optional[Relationship]:
        """Relationship handle, or ``None`` if it is not visible."""
        data = self._txn.read_relationship(_rel_id(relationship))
        return Relationship(self, data) if data is not None else None

    def relationships(self) -> Iterator[Relationship]:
        """Every relationship visible to this transaction."""
        for data in self._txn.iter_relationships():
            yield Relationship(self, data)

    def find_relationships(
        self,
        key: Optional[str] = None,
        value: Optional[PropertyValue] = None,
        *,
        rel_type: Optional[str] = None,
    ) -> List[Relationship]:
        """Relationships matching a type and/or a property equality predicate.

        Mirrors :meth:`find_nodes`: ``rel_type`` uses the relationship-type
        index, ``key``/``value`` the relationship-property index, and giving
        both intersects the two lookups.  Results are sorted by id.
        """
        if key is None and rel_type is None:
            raise ValueError("find_relationships needs a property predicate or rel_type")
        if key is not None and value is None:
            raise ValueError("find_relationships with a property key requires a value")
        if key is None and value is not None:
            raise ValueError("find_relationships with a property value requires a key")
        ids: Optional[Set[int]] = None
        if rel_type is not None:
            ids = self._txn.find_relationships_by_type(rel_type)
        if key is not None:
            property_ids = self._txn.find_relationships_by_property(key, value)
            ids = property_ids if ids is None else ids & property_ids
        result = []
        for rel_id in sorted(ids):
            data = self._txn.read_relationship(rel_id)
            if data is not None:
                result.append(Relationship(self, data))
        return result

    def relationships_of(
        self,
        node: NodeLike,
        direction: Direction = Direction.BOTH,
        rel_types: Optional[Sequence[str]] = None,
    ) -> List[Relationship]:
        """Visible relationships attached to ``node``."""
        data_list = self._txn.relationships_of(_node_id(node), direction, rel_types)
        return [Relationship(self, data) for data in data_list]

    def relationships_of_many(
        self,
        nodes: Sequence[NodeLike],
        direction: Direction = Direction.BOTH,
        rel_types: Optional[Sequence[str]] = None,
    ) -> List[List[Relationship]]:
        """Visible relationships of each node, resolved as one batch.

        Engines expose :meth:`~repro.engine.EngineTransaction.relationships_of_many`
        (the SI engine resolves the whole candidate set in one pass and pays
        one predicate-registration visit for the batch); this wraps the
        results in handles, preserving per-node order.
        """
        node_ids = [_node_id(node) for node in nodes]
        return [
            [Relationship(self, data) for data in data_list]
            for data_list in self._txn.relationships_of_many(
                node_ids, direction, rel_types
            )
        ]

    def count_relationships_of_many(
        self,
        nodes: Sequence[NodeLike],
        direction: Direction = Direction.BOTH,
        rel_types: Optional[Sequence[str]] = None,
    ) -> List[int]:
        """Visible-relationship count of each node, resolved as one batch.

        Same reads (and, under SSI, the same predicate/SIREAD registration)
        as :meth:`relationships_of_many`, but callers that only need the
        degree skip the per-relationship handle wrapping.
        """
        node_ids = [_node_id(node) for node in nodes]
        return [
            len(data_list)
            for data_list in self._txn.relationships_of_many(
                node_ids, direction, rel_types
            )
        ]

    def expand(
        self,
        node: NodeLike,
        direction: Direction = Direction.BOTH,
        rel_types: Optional[Sequence[str]] = None,
    ) -> Iterator[Tuple[Relationship, Node]]:
        """Yield ``(relationship, neighbour)`` pairs around ``node``."""
        node_id = _node_id(node)
        for relationship in self.relationships_of(node_id, direction, rel_types):
            neighbour = self.try_get_node(relationship.other_node_id(node_id))
            if neighbour is not None:
                yield relationship, neighbour

    def neighbours(
        self,
        node: NodeLike,
        direction: Direction = Direction.BOTH,
        rel_types: Optional[Sequence[str]] = None,
    ) -> List[Node]:
        """Distinct neighbouring nodes of ``node``."""
        seen: Set[int] = set()
        result: List[Node] = []
        for _relationship, neighbour in self.expand(node, direction, rel_types):
            if neighbour.id not in seen:
                seen.add(neighbour.id)
                result.append(neighbour)
        return result

    def degree(self, node: NodeLike, direction: Direction = Direction.BOTH) -> int:
        """Number of visible relationships attached to ``node``."""
        return len(self.relationships_of(node, direction))

    def set_relationship_property(
        self, relationship: RelationshipLike, key: str, value: PropertyValue
    ) -> Relationship:
        """Set one property on a relationship."""
        validate_property_key(key)
        clean_value = validate_property_value(value)
        data = self._require_relationship_data(relationship)
        updated = data.with_property(key, clean_value)
        self._txn.put_relationship(updated)
        return Relationship(self, updated)

    def remove_relationship_property(
        self, relationship: RelationshipLike, key: str
    ) -> Relationship:
        """Remove one property from a relationship (no-op if absent)."""
        data = self._require_relationship_data(relationship)
        updated = data.without_property(key)
        self._txn.put_relationship(updated)
        return Relationship(self, updated)

    def delete_relationship(self, relationship: RelationshipLike) -> None:
        """Delete a relationship."""
        rel_id = _rel_id(relationship)
        self._require_relationship_data(rel_id)
        self._txn.delete_relationship(rel_id)

    # ------------------------------------------------------------------
    # declarative queries (Cypher subset)
    # ------------------------------------------------------------------

    def execute(
        self,
        query: str,
        parameters: Optional[Mapping[str, object]] = None,
        **params: object,
    ) -> "QueryResult":
        """Run a Cypher-subset query inside this transaction.

        Parameters may be passed as a mapping, as keyword arguments, or both
        (keywords win).  Read-only queries return a lazy result that pulls
        rows on demand from this transaction's snapshot; write queries and
        ``EXPLAIN`` execute eagerly.  See :mod:`repro.query` for the language.
        """
        from repro.query import execute as _execute_query

        merged = dict(parameters or {})
        merged.update(params)
        return _execute_query(self, self._engine, query, merged)

    # ------------------------------------------------------------------
    # counting helpers
    # ------------------------------------------------------------------

    def node_count(self) -> int:
        """Number of nodes visible to this transaction."""
        return sum(1 for _node in self._txn.iter_nodes())

    def relationship_count(self) -> int:
        """Number of relationships visible to this transaction."""
        return sum(1 for _rel in self._txn.iter_relationships())

    # ------------------------------------------------------------------
    # internal
    # ------------------------------------------------------------------

    def _require_node_data(self, node: NodeLike) -> NodeData:
        node_id = _node_id(node)
        data = self._txn.read_node(node_id)
        if data is None:
            raise NodeNotFoundError(node_id)
        return data

    def _require_relationship_data(self, relationship: RelationshipLike) -> RelationshipData:
        rel_id = _rel_id(relationship)
        data = self._txn.read_relationship(rel_id)
        if data is None:
            raise RelationshipNotFoundError(rel_id)
        return data
