"""Database lifecycle: admission gate and graceful drain for transactions.

:class:`TransactionGate` sits between :class:`~repro.api.database.GraphDatabase`
and its engine.  Every user-facing transaction registers at ``begin`` and
deregisters when it leaves the ACTIVE state; ``close()`` (and the network
server's graceful shutdown, which reuses the same gate) then drains in three
steps:

1. **Fence new work** — further ``begin()`` calls raise
   :class:`~repro.errors.DatabaseClosedError` instead of racing the teardown.
2. **Wait** — in-flight transactions get up to ``drain_timeout`` seconds to
   commit or roll back; a commit that wins the race is fully durable (the
   store files are still open).
3. **Fence stragglers** — transactions still open after the timeout are
   rolled back, so their owners see a clean
   :class:`~repro.errors.TransactionClosedError` on the next operation
   rather than an OS error against closed file descriptors.

The gate is deliberately engine-agnostic: it tracks the API-level
:class:`~repro.api.transaction.Transaction` wrappers, and the wait loop
re-checks ``is_open`` so transactions finished behind the gate's back (for
example through the raw engine transaction) cannot wedge the drain.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List

from repro.api.transaction import Transaction
from repro.errors import DatabaseClosedError

__all__ = ["TransactionGate"]

#: How often the drain loop re-polls stragglers that have not signalled.
_DRAIN_POLL_SECONDS = 0.05


class TransactionGate:
    """Admission control plus graceful drain for a database's transactions."""

    def __init__(self) -> None:
        self._cond = threading.Condition(threading.Lock())
        self._active: Dict[int, Transaction] = {}
        self._closed = False
        self._drained_total = 0
        self._fenced_total = 0

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    def register(self, transaction: Transaction) -> None:
        """Admit a freshly-begun transaction (raises once the gate closed)."""
        with self._cond:
            if self._closed:
                raise DatabaseClosedError(
                    "the database is closed (or draining for shutdown); "
                    "no new transactions are admitted"
                )
            self._active[id(transaction)] = transaction

    def deregister(self, transaction: Transaction) -> None:
        """Drop a finished transaction and wake any drain waiter."""
        with self._cond:
            if self._active.pop(id(transaction), None) is not None:
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    @property
    def is_closed(self) -> bool:
        """Whether the gate stopped admitting new transactions."""
        return self._closed

    def active_count(self) -> int:
        """Number of transactions currently registered (approximate)."""
        return len(self._active)

    def ensure_open(self) -> None:
        """Raise :class:`DatabaseClosedError` once the gate has closed."""
        if self._closed:
            raise DatabaseClosedError(
                "the database is closed (or draining for shutdown)"
            )

    def stats(self) -> Dict[str, int]:
        """Counters for the statistics surface."""
        with self._cond:
            return {
                "active": len(self._active),
                "drained": self._drained_total,
                "fenced": self._fenced_total,
            }

    # ------------------------------------------------------------------
    # drain
    # ------------------------------------------------------------------

    def close_and_drain(self, drain_timeout: float = 5.0) -> List[Transaction]:
        """Stop admitting transactions, wait for in-flight ones, fence the rest.

        Returns the transactions that were still open when the timeout
        expired — already rolled back, so the only thing their owner threads
        can observe is a clean :class:`~repro.errors.TransactionClosedError`.
        Idempotent: later calls drain whatever is left (normally nothing).
        """
        deadline = time.monotonic() + max(0.0, drain_timeout)
        with self._cond:
            self._closed = True
            in_flight = len(self._active)
            while self._active:
                # Prune transactions that finished without signalling (raw
                # engine-transaction use); their wrappers stay registered
                # but hold no resources the teardown cares about.
                for key in [
                    key
                    for key, transaction in self._active.items()
                    if not transaction.is_open
                ]:
                    del self._active[key]
                if not self._active:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=min(remaining, _DRAIN_POLL_SECONDS))
            stragglers = list(self._active.values())
            self._active.clear()
        fenced = [t for t in stragglers if t.is_open]
        with self._cond:
            self._drained_total += in_flight - len(fenced)
        for transaction in fenced:
            # Best-effort fence: rollback is idempotent and flips the engine
            # transaction out of ACTIVE, so the owner's next operation (or
            # its commit) raises TransactionClosedError instead of touching
            # closed files.  A racing commit that already entered the engine
            # wins or loses atomically inside the engine's own locking.
            transaction.rollback()
        with self._cond:
            self._fenced_total += len(fenced)
        return fenced

    def drain(self, drain_timeout: float = 5.0) -> List[Transaction]:
        """Alias of :meth:`close_and_drain` (reads naturally at call sites)."""
        return self.close_and_drain(drain_timeout)
