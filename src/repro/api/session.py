"""Sessions: one conversation's worth of transactions against a database.

A :class:`Session` is the unit the network service layer maps connections
onto, usable embedded too.  It differs from calling
:meth:`~repro.api.database.GraphDatabase.begin` directly in three ways:

* **at most one open transaction** — ``begin()`` while a transaction is
  open is a :class:`~repro.errors.SessionStateError`, matching the wire
  protocol's explicit BEGIN/COMMIT/ROLLBACK state machine;
* **session defaults** — ``read_only`` and ``deferrable`` are negotiated
  once (per connection, on the server) and applied to every transaction the
  session starts;
* **read-your-writes token** — the session records the commit timestamp of
  its last versioned commit (``last_commit_ts``), which a client can carry
  to a read replica as a "wait until your watermark covers this" token.

``execute()`` outside an explicit transaction auto-commits (one transaction
per statement, read-only when the statement has no write clauses), which is
what the server does for clients that never send BEGIN.
"""

from __future__ import annotations

import itertools
import threading
from typing import TYPE_CHECKING, Callable, Mapping, Optional, TypeVar

from repro.api.transaction import Transaction
from repro.errors import SessionStateError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.database import GraphDatabase
    from repro.query.result import QueryResult

T = TypeVar("T")

__all__ = ["Session"]

_session_ids = itertools.count(1)


class Session:
    """A session-scoped transaction holder over one database."""

    def __init__(
        self,
        db: "GraphDatabase",
        *,
        read_only: bool = False,
        deferrable: Optional[bool] = None,
    ) -> None:
        self._db = db
        self._read_only = bool(read_only)
        self._deferrable = deferrable
        self._tx: Optional[Transaction] = None
        self._closed = False
        self._lock = threading.Lock()
        self.session_id = next(_session_ids)
        #: Commit timestamp of this session's newest versioned commit
        #: (``None`` until one happens; writeless commits keep the previous
        #: token).  See the module docstring for the read-your-writes use.
        self.last_commit_ts: Optional[int] = None

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    @property
    def database(self) -> "GraphDatabase":
        """The database this session talks to."""
        return self._db

    @property
    def read_only(self) -> bool:
        """Whether this session's transactions default to read-only."""
        return self._read_only

    @property
    def is_closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    @property
    def transaction(self) -> Optional[Transaction]:
        """The session's open transaction, or ``None``."""
        tx = self._tx
        return tx if tx is not None and tx.is_open else None

    @property
    def in_transaction(self) -> bool:
        """Whether an explicit transaction is open."""
        return self.transaction is not None

    # ------------------------------------------------------------------
    # explicit transaction control (the wire protocol's BEGIN/COMMIT/ROLLBACK)
    # ------------------------------------------------------------------

    def begin(
        self,
        *,
        read_only: Optional[bool] = None,
        deferrable: Optional[bool] = None,
    ) -> Transaction:
        """Open the session's transaction (errors if one is already open)."""
        with self._lock:
            self._ensure_usable()
            if self.transaction is not None:
                raise SessionStateError(
                    "the session already has an open transaction; "
                    "commit or roll it back first"
                )
            tx = self._db.begin(
                read_only=self._read_only if read_only is None else read_only,
                deferrable=self._deferrable if deferrable is None else deferrable,
            )
            self._tx = tx
            return tx

    def commit(self) -> Optional[int]:
        """Commit the open transaction; returns the commit timestamp (if any)."""
        with self._lock:
            tx = self._require_transaction()
            self._tx = None
            tx.commit()
            return self._record_commit(tx)

    def rollback(self) -> None:
        """Roll the open transaction back."""
        with self._lock:
            tx = self._require_transaction()
            self._tx = None
            tx.rollback()

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def execute(
        self,
        query: str,
        parameters: Optional[Mapping[str, object]] = None,
        **params: object,
    ) -> "QueryResult":
        """Run a query in the open transaction, or auto-commit one.

        Inside an explicit transaction the result is live (lazy reads pull
        from the transaction's snapshot).  Outside one, the statement runs
        in its own transaction — read-only when it has no write clauses —
        and the result is drained before the transaction commits, exactly
        like :meth:`GraphDatabase.execute`.
        """
        with self._lock:
            self._ensure_usable()
            tx = self.transaction
            if tx is not None:
                return tx.execute(query, parameters, **params)
        # Auto-commit path outside the lock: the statement may be slow and
        # the session serialises its own callers anyway on the server side.
        from repro.query import is_read_only_query

        read_only = self._read_only or is_read_only_query(self._db.engine, query)
        tx = self._db.begin(read_only=read_only)
        try:
            result = tx.execute(query, parameters, **params)
            result.consume()
            tx.commit()
        except BaseException:
            tx.rollback()
            raise
        self._record_commit(tx)
        return result

    def run(self, fn: Callable[[Transaction], T], **retry_options) -> T:
        """Run ``fn`` via :meth:`GraphDatabase.run_transaction` with session defaults.

        Not allowed while an explicit transaction is open (the retry loop
        needs to own transaction boundaries).
        """
        with self._lock:
            self._ensure_usable()
            if self.transaction is not None:
                raise SessionStateError(
                    "run() cannot be used while an explicit transaction is open"
                )
        retry_options.setdefault("read_only", self._read_only)
        retry_options.setdefault("deferrable", self._deferrable)
        return self._db.run_transaction(fn, **retry_options)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Roll back any open transaction and retire the session (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            tx, self._tx = self._tx, None
        if tx is not None:
            tx.rollback()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------
    # internal
    # ------------------------------------------------------------------

    def _record_commit(self, tx: Transaction) -> Optional[int]:
        commit_ts = getattr(tx.engine_transaction, "commit_ts", None)
        if commit_ts is not None:
            self.last_commit_ts = commit_ts
        return commit_ts

    def _require_transaction(self) -> Transaction:
        self._ensure_usable()
        tx = self.transaction
        if tx is None:
            raise SessionStateError("the session has no open transaction")
        self._tx = tx
        return tx

    def _ensure_usable(self) -> None:
        if self._closed:
            raise SessionStateError("the session is closed")
