"""The database facade: the session/transaction layer.

:class:`GraphDatabase` used to build the whole stack inline; the engine
layer (store + engine + observability wiring) now lives in
:class:`~repro.api.runtime.EngineRuntime`, and this class is the session
layer on top of it: it admits transactions through a
:class:`~repro.api.lifecycle.TransactionGate`, retries conflict aborts,
hands out :class:`~repro.api.session.Session` objects (the unit the network
server maps connections onto), tracks metrics exporters, and owns the
graceful close/drain ordering.  The isolation level is chosen at open time:

>>> from repro import GraphDatabase, IsolationLevel
>>> db = GraphDatabase.in_memory(isolation=IsolationLevel.SNAPSHOT)
>>> with db.transaction() as tx:
...     alice = tx.create_node(labels=["Person"], properties={"name": "Alice"})

The experiment harness opens two databases over identical workloads — one per
isolation level — which is how the anomaly and throughput comparisons in
EXPERIMENTS.md are produced.
"""

from __future__ import annotations

import contextlib
import random
import threading
import time
from typing import (
    TYPE_CHECKING,
    Callable,
    ContextManager,
    Dict,
    List,
    Mapping,
    Optional,
    TypeVar,
)

from repro.api.lifecycle import TransactionGate
from repro.api.runtime import EngineRuntime
from repro.api.transaction import Transaction
from repro.core.gc import GcStats
from repro.core.si_manager import SnapshotIsolationEngine
from repro.core.vacuum import VacuumCollector
from repro.engine import IsolationLevel
from repro.errors import ReproError, TransactionAbortedError

# Re-exported from its new home so existing imports keep working; the WAL's
# bounded IO-retry loop shares the same backoff (see repro.retry).
from repro.retry import jittered_backoff  # noqa: F401

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.session import Session
    from repro.obs import MetricsExporter

T = TypeVar("T")

#: How long ``close()`` waits for in-flight transactions before fencing them.
DEFAULT_DRAIN_TIMEOUT = 5.0


class GraphDatabase:
    """A graph database instance: one engine runtime plus the session layer."""

    def __init__(self, path: Optional[str] = None, **options) -> None:
        """Open (or create) a database.

        ``path`` is a directory for the store files; ``None`` keeps the whole
        database in memory.  Every keyword option is forwarded to
        :class:`~repro.api.runtime.EngineRuntime`, which documents the full
        knob catalog (isolation and conflict policy, commit pipeline, read
        path, executor, serializable-only, observability and fault-injection
        options); the signatures are one-to-one with previous releases.
        """
        self._runtime = EngineRuntime(path, **options)
        self._gate = TransactionGate()
        self._exporters: List["MetricsExporter"] = []
        self._exporters_lock = threading.Lock()
        self._closed = False
        self._close_lock = threading.Lock()
        # Exposition-side bridge: every numeric leaf of ``statistics()``
        # becomes a ``repro_stat_*`` entry in snapshots and the Prometheus
        # text, so the registry reproduces the whole legacy counter surface
        # by construction (asserted equal in tests).
        from repro.obs import flatten_statistics

        self.observability.registry.register_collector(
            lambda: flatten_statistics(self.statistics())
        )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def in_memory(cls, **options) -> "GraphDatabase":
        """Open a database that never touches disk (tests, benchmarks, examples)."""
        return cls(path=None, **options)

    @classmethod
    def open(cls, path: str, **options) -> "GraphDatabase":
        """Open (or create) an on-disk database at ``path``."""
        return cls(path=path, **options)

    # ------------------------------------------------------------------
    # layer accessors (engine layer lives on the runtime)
    # ------------------------------------------------------------------

    @property
    def runtime(self) -> EngineRuntime:
        """The engine layer: store, engine, observability, failpoints."""
        return self._runtime

    @property
    def store(self):
        """The storage substrate (engine layer)."""
        return self._runtime.store

    @property
    def engine(self):
        """The concurrency-control engine (engine layer)."""
        return self._runtime.engine

    @property
    def observability(self):
        """The observability bundle (engine layer)."""
        return self._runtime.observability

    @property
    def failpoints(self):
        """The failpoint registry, or ``None`` when fault injection is off."""
        return self._runtime.failpoints

    @property
    def isolation_level(self) -> IsolationLevel:
        """The isolation level this database was opened with."""
        return self._runtime.isolation

    @property
    def is_snapshot_isolation(self) -> bool:
        """Whether this database runs the paper's MVCC engine (SI or SSI)."""
        return self._runtime.is_snapshot_isolation

    @property
    def transaction_gate(self) -> TransactionGate:
        """The admission gate (the network server drains through it too)."""
        return self._gate

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    def begin(
        self, *, read_only: bool = False, deferrable: Optional[bool] = None
    ) -> Transaction:
        """Start a transaction (the caller commits or rolls back explicitly).

        ``deferrable`` (read-only serializable transactions only) overrides
        the database's ``defer_readonly`` default: ``True`` blocks until a
        safe snapshot is available and then runs fully untracked, ``False``
        starts immediately under retroactive safe-snapshot validation.

        The transaction is registered with the database's drain gate: once
        ``close()`` has begun, new ``begin()`` calls raise
        :class:`~repro.errors.DatabaseClosedError` while in-flight
        transactions get a grace period to finish.
        """
        self._gate.ensure_open()
        transaction = Transaction(
            self.engine,
            self.engine.begin(read_only=read_only, deferrable=deferrable),
            on_close=self._gate.deregister,
        )
        try:
            self._gate.register(transaction)
        except BaseException:
            transaction.rollback()
            raise
        return transaction

    def transaction(
        self, *, read_only: bool = False, deferrable: Optional[bool] = None
    ) -> Transaction:
        """Alias of :meth:`begin`, reads naturally in ``with`` statements."""
        return self.begin(read_only=read_only, deferrable=deferrable)

    def session(self, **defaults) -> "Session":
        """A session: the unit of conversation the network server speaks.

        A session owns at most one open transaction at a time and carries
        per-session defaults (``read_only``, ``deferrable``); see
        :class:`~repro.api.session.Session`.
        """
        from repro.api.session import Session

        return Session(self, **defaults)

    def run_transaction(
        self,
        fn: Callable[[Transaction], T],
        *,
        retries: int = 5,
        read_only: bool = False,
        deferrable: Optional[bool] = None,
        base_backoff_seconds: float = 0.002,
        max_backoff_seconds: float = 0.25,
        rng: Optional[random.Random] = None,
        on_retry: Optional[Callable[[int, TransactionAbortedError], None]] = None,
    ) -> T:
        """Run ``fn(tx)`` in a transaction, retrying conflict aborts.

        Every isolation level in this system aborts transactions it cannot
        serialise — write-write conflicts under snapshot isolation,
        rw-antidependency (dangerous structure) aborts under serializable,
        deadlock victims under read committed — and the application contract
        for all of them is "retry".  This helper owns that contract: it
        re-runs ``fn`` in a fresh transaction on every *retryable*
        :class:`~repro.errors.TransactionAbortedError`, sleeping a jittered
        exponential backoff between attempts, up to ``retries`` retries
        (``retries + 1`` attempts in total) before re-raising the last abort.
        Aborts that cannot succeed on retry in this process —
        :class:`~repro.errors.DegradedModeError` and its subclasses, whose
        ``retryable`` flag is ``False`` because degraded mode is one-way —
        are re-raised immediately instead of burning the backoff budget.

        ``fn`` receives the open transaction and may return any value, which
        becomes the return value of this call; the transaction commits after
        ``fn`` returns (unless ``fn`` already closed it).  Because ``fn`` can
        run more than once it must not carry side effects outside the
        transaction.  ``on_retry(attempt, error)`` is invoked before each
        backoff sleep (workload harnesses count retries through it).
        """
        if retries < 0:
            raise ValueError("retries must be >= 0")
        attempt = 0
        while True:
            tx = self.begin(read_only=read_only, deferrable=deferrable)
            try:
                result = fn(tx)
                if tx.is_open:
                    tx.commit()
                return result
            except TransactionAbortedError as exc:
                tx.rollback()
                if not getattr(exc, "retryable", True) or attempt >= retries:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                time.sleep(
                    jittered_backoff(
                        attempt,
                        base_seconds=base_backoff_seconds,
                        max_seconds=max_backoff_seconds,
                        rng=rng,
                    )
                )
                attempt += 1
            except BaseException:
                tx.rollback()
                raise

    # ------------------------------------------------------------------
    # declarative queries (Cypher subset)
    # ------------------------------------------------------------------

    def execute(
        self,
        query: str,
        parameters: Optional[Mapping[str, object]] = None,
        **params: object,
    ):
        """Run one query in its own transaction and return the drained result.

        Commits on success, rolls back on error.  The result is fully
        materialised (the transaction is closed by the time it returns); use
        ``tx.execute(...)`` to stream a large result from a live snapshot.

        A statement with no write clauses runs in a *read-only* transaction,
        which under serializable isolation is the free path: no SIREAD or
        predicate registration, no chance of a serialization abort, and no
        retained tracking record.
        """
        from repro.query import is_read_only_query

        tx = self.begin(read_only=is_read_only_query(self.engine, query))
        try:
            result = tx.execute(query, parameters, **params)
            result.consume()
            tx.commit()
        except BaseException:
            tx.rollback()
            raise
        return result

    # ------------------------------------------------------------------
    # convenience reads
    # ------------------------------------------------------------------

    def node_count(self) -> int:
        """Number of nodes visible to a fresh read-only transaction."""
        with self.begin(read_only=True) as tx:
            return tx.node_count()

    def relationship_count(self) -> int:
        """Number of relationships visible to a fresh read-only transaction."""
        with self.begin(read_only=True) as tx:
            return tx.relationship_count()

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def run_gc(self) -> Optional[GcStats]:
        """Run one pass of version garbage collection (SI engines only)."""
        if isinstance(self.engine, SnapshotIsolationEngine):
            return self.engine.run_gc()
        return None

    def create_vacuum_collector(self) -> VacuumCollector:
        """A PostgreSQL-style vacuum bound to this database (SI engines only)."""
        if not isinstance(self.engine, SnapshotIsolationEngine):
            raise ReproError("vacuum collection only applies to snapshot isolation")
        return self.engine.create_vacuum_collector()

    def pause_commits(self) -> ContextManager[None]:
        """Block every committer while the returned context manager is held.

        Under snapshot isolation this acquires all commit stripes (what the
        stop-the-world vacuum uses); the read-committed engine has no sharded
        pipeline, so pausing is a no-op there.
        """
        self._ensure_open()
        if isinstance(self.engine, SnapshotIsolationEngine):
            return self.engine.pause_commits()
        return contextlib.nullcontext()

    def checkpoint(self) -> None:
        """Flush dirty pages and truncate the write-ahead log."""
        self._ensure_open()
        self._runtime.checkpoint()

    def health(self) -> Dict[str, object]:
        """The engine health view: ``{"status": "ok"|"draining"|"degraded", ...}``.

        A degraded engine rejects write transactions with
        :class:`~repro.errors.DatabaseReadOnlyError` (a non-retryable abort
        in this process; the recovery story is reopening the database, which
        replays the WAL) while snapshot reads keep working.  A draining
        engine is healthy but shutting down — ``/healthz`` answers 503 so
        load balancers route new sessions elsewhere while in-flight
        transactions finish.  The same view backs the exporter's
        ``/healthz`` endpoint and the ``repro_engine_degraded`` gauge.
        """
        return self.store.health.as_dict()

    def statistics(self) -> Dict[str, object]:
        """Aggregated statistics from the engine, stores and caches."""
        stats = self._runtime.statistics()
        stats["lifecycle"] = dict(self._gate.stats(), closed=int(self._closed))
        return stats

    # ------------------------------------------------------------------
    # observability exposition
    # ------------------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, object]:
        """The metrics registry as one JSON-able dictionary.

        ``instruments`` holds every registered counter/gauge/histogram with
        its samples; ``collected`` holds the flattened ``statistics()``
        surface (``repro_stat_*``), so every legacy counter appears here too.
        """
        return self.observability.metrics_snapshot()

    def prometheus_metrics(self) -> str:
        """The metrics registry in Prometheus text exposition format."""
        return self.observability.prometheus_text()

    def serve_metrics(self, host: str = "127.0.0.1", port: int = 0):
        """Start an HTTP scrape endpoint (``/metrics``) for this database.

        Returns the running :class:`~repro.obs.exporter.MetricsExporter`
        (``exporter.url`` is the scrape URL; ``port=0`` picks a free port).
        The server runs on a daemon thread; call ``exporter.stop()`` or use
        it as a context manager.  Every exporter started here is tracked and
        stopped by :meth:`close`, so no scrape endpoint outlives the engine
        it reports on.
        """
        self._ensure_open()
        exporter = self.observability.serve(host, port)
        with self._exporters_lock:
            self._exporters.append(exporter)
        return exporter

    def slow_queries(self, limit: Optional[int] = None):
        """Entries of the slow-query log, oldest first."""
        return self.observability.slow_queries.entries(limit)

    def recent_traces(self, limit: Optional[int] = None):
        """Recent finished transaction traces, oldest first."""
        return self.observability.recent_traces(limit)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def is_closed(self) -> bool:
        """Whether :meth:`close` has completed."""
        return self._closed

    def close(self, *, drain_timeout: float = DEFAULT_DRAIN_TIMEOUT) -> None:
        """Drain transactions, stop exporters, close engine and store files.

        Shutdown order (idempotent):

        1. the health view flips to ``draining`` (``/healthz`` → 503),
        2. new transactions are fenced with
           :class:`~repro.errors.DatabaseClosedError` while in-flight ones
           get up to ``drain_timeout`` seconds to finish — a commit that
           completes in the window is fully durable; stragglers are rolled
           back so their owners see a clean ``TransactionClosedError``,
        3. every metrics exporter started by :meth:`serve_metrics` is
           stopped (a scrape endpoint must not keep answering for a closed
           engine), and
        4. the engine and the store files are closed.

        The network server reuses steps 1–2 through the same gate for its
        graceful drain, then calls ``close()`` which finds nothing left.
        """
        with self._close_lock:
            if self._closed:
                return
            self.store.health.mark_draining("database close")
            self._gate.close_and_drain(drain_timeout)
            with self._exporters_lock:
                exporters, self._exporters = self._exporters, []
            for exporter in exporters:
                exporter.stop()
            self._runtime.close()
            self._closed = True

    def __enter__(self) -> "GraphDatabase":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------
    # internal
    # ------------------------------------------------------------------

    def _ensure_open(self) -> None:
        self._gate.ensure_open()
