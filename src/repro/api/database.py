"""The database facade.

:class:`GraphDatabase` wires the storage substrate to one of the two
concurrency-control engines and hands out user-facing transactions.  The
isolation level is chosen at open time:

>>> from repro import GraphDatabase, IsolationLevel
>>> db = GraphDatabase.in_memory(isolation=IsolationLevel.SNAPSHOT)
>>> with db.transaction() as tx:
...     alice = tx.create_node(labels=["Person"], properties={"name": "Alice"})

The experiment harness opens two databases over identical workloads — one per
isolation level — which is how the anomaly and throughput comparisons in
EXPERIMENTS.md are produced.
"""

from __future__ import annotations

import contextlib
import random
import threading
import time
from typing import Callable, ContextManager, Dict, Mapping, Optional, TypeVar, Union

from repro.api.transaction import Transaction
from repro.core.conflict import ConflictPolicy
from repro.core.gc import GcStats
from repro.core.si_manager import DEFAULT_COMMIT_STRIPES, SnapshotIsolationEngine
from repro.query.cache import DEFAULT_QUERY_CACHE_SIZE
from repro.core.vacuum import VacuumCollector
from repro.engine import GraphEngine, IsolationLevel
from repro.errors import ReproError, TransactionAbortedError
from repro.fault import FailpointRegistry
from repro.graph.store_manager import StoreManager
from repro.locking.lock_manager import LockManager
from repro.locking.rc_manager import ReadCommittedEngine
from repro.obs import MetricsRegistry, Observability, flatten_statistics

# Re-exported from its new home so existing imports keep working; the WAL's
# bounded IO-retry loop shares the same backoff (see repro.retry).
from repro.retry import jittered_backoff  # noqa: F401

T = TypeVar("T")


def _coerce_isolation(isolation: Union[IsolationLevel, str]) -> IsolationLevel:
    if isinstance(isolation, IsolationLevel):
        return isolation
    try:
        return IsolationLevel(isolation)
    except ValueError as exc:
        valid = ", ".join(level.value for level in IsolationLevel)
        raise ValueError(
            f"unknown isolation level {isolation!r}; expected one of: {valid}"
        ) from exc


def _coerce_policy(policy: Union[ConflictPolicy, str]) -> ConflictPolicy:
    if isinstance(policy, ConflictPolicy):
        return policy
    try:
        return ConflictPolicy(policy)
    except ValueError as exc:
        valid = ", ".join(choice.value for choice in ConflictPolicy)
        raise ValueError(
            f"unknown conflict policy {policy!r}; expected one of: {valid}"
        ) from exc


class GraphDatabase:
    """A graph database instance: storage substrate plus one transaction engine."""

    def __init__(
        self,
        path: Optional[str] = None,
        *,
        isolation: Union[IsolationLevel, str] = IsolationLevel.SNAPSHOT,
        conflict_policy: Union[ConflictPolicy, str] = ConflictPolicy.FIRST_UPDATER_WINS,
        page_cache_pages: int = 4096,
        wal_enabled: bool = True,
        wal_sync: bool = False,
        lock_timeout: float = 10.0,
        version_cache_capacity: int = 200_000,
        gc_every_n_commits: int = 0,
        commit_stripes: int = DEFAULT_COMMIT_STRIPES,
        group_commit: bool = False,
        snapshot_read_cache: bool = True,
        query_cache_size: int = DEFAULT_QUERY_CACHE_SIZE,
        query_executor: str = "batch",
        query_batch_size: int = 1024,
        morsel_workers: int = 0,
        morsel_threshold: int = 2048,
        rc_eager_read_unlock: bool = True,
        safe_snapshots: bool = True,
        defer_readonly: bool = False,
        tracing: bool = False,
        trace_sample_rate: float = 1.0,
        trace_ring_size: int = 256,
        slow_query_seconds: Optional[float] = None,
        slow_query_capacity: int = 128,
        redact_parameters: bool = False,
        metrics_registry: Optional[MetricsRegistry] = None,
        failpoints: Union[FailpointRegistry, Mapping[str, str], str, None] = None,
    ) -> None:
        """Open (or create) a database.

        ``path`` is a directory for the store files; ``None`` keeps the whole
        database in memory.  See :class:`~repro.core.si_manager.SnapshotIsolationEngine`
        and :class:`~repro.locking.rc_manager.ReadCommittedEngine` for the
        meaning of the engine-specific options.

        ``commit_stripes`` shards the snapshot-isolation commit path so that
        commits touching disjoint entities proceed concurrently (1 restores
        the fully-serialised behaviour).  ``group_commit`` coalesces the store
        persistence of concurrent committers into one WAL append (one fsync
        under ``wal_sync``) per group.

        Read-path knobs: ``snapshot_read_cache`` enables the SI engine's
        per-transaction caches of resolved payloads and adjacency lists;
        ``query_cache_size`` sizes the per-database query parse and plan
        caches (0 disables them — see ``statistics()["query_cache"]``);
        ``rc_eager_read_unlock`` routes read-committed point reads through
        the lock manager's short shared guard instead of a full
        acquire/release pair (``False`` restores the seed behaviour).

        Executor knobs: ``query_executor`` selects the operator runtime —
        ``"batch"`` (default) runs the vectorized batch-at-a-time executor,
        ``"row"`` the original row-at-a-time generators; ``query_batch_size``
        caps the rows per batch.  ``morsel_workers`` > 1 lets leaf scans of
        read-only snapshot transactions split their id range into that many
        morsels across a shared thread pool when the planner estimates at
        least ``morsel_threshold`` rows (0 — the default — keeps every scan
        on the query thread; under the CPython GIL parallel morsels mostly
        pay off on free-threaded builds, so this stays opt-in).

        Serializable-only knobs: ``safe_snapshots`` gates read-only
        transactions so the Fekete read-only-transaction anomaly cannot
        occur (disable only to reproduce the anomaly, as the test harness
        does); ``defer_readonly`` makes read-only serializable transactions
        *deferrable* by default — ``begin(read_only=True)`` blocks until a
        safe snapshot is available and then runs completely untracked
        (override per transaction with ``begin(deferrable=...)``).  See
        ``statistics()["safe_snapshots"]``.

        Observability knobs: ``tracing`` samples transactions into timed
        lifecycle traces (``trace_sample_rate`` traces every
        ``round(1/rate)``-th transaction; ``trace_ring_size`` bounds the
        recent-trace window); ``slow_query_seconds`` enables the slow-query
        log for statements above the threshold (``redact_parameters``
        replaces captured parameter values); ``metrics_registry`` shares a
        registry across databases (each database gets a private
        :class:`~repro.obs.registry.MetricsRegistry` by default).  See
        :meth:`metrics_snapshot`, :meth:`prometheus_metrics` and
        :meth:`serve_metrics`.

        ``failpoints`` enables deterministic fault injection on the
        durability path: pass a prepared
        :class:`~repro.fault.FailpointRegistry`, a ``{site: spec}`` mapping,
        or a ``"site=spec;..."`` string (see :data:`repro.fault.FAILPOINT_SITES`
        for the site catalog and :mod:`repro.fault.policies` for the spec
        syntax).  When omitted, the ``REPRO_FAILPOINTS`` environment variable
        is consulted (the CI hook); when that is unset too, every component
        carries ``failpoints=None`` and the injection sites are dead
        branches.  See also :meth:`health` for the degraded read-only mode
        that unrecoverable IO errors (injected or real) trigger.
        """
        self._isolation = _coerce_isolation(isolation)
        self._closed = False
        self._close_lock = threading.Lock()
        self.failpoints = FailpointRegistry.from_config(failpoints)
        self.observability = Observability(
            registry=metrics_registry,
            tracing=tracing,
            trace_sample_rate=trace_sample_rate,
            trace_ring_size=trace_ring_size,
            slow_query_seconds=slow_query_seconds,
            slow_query_capacity=slow_query_capacity,
            redact_parameters=redact_parameters,
        )
        self.store = StoreManager(
            path,
            page_cache_pages=page_cache_pages,
            wal_enabled=wal_enabled,
            wal_sync=wal_sync,
            # Never recycle entity ids under MVCC: old versions of a deleted
            # entity may still be readable by open snapshots.
            reuse_entity_ids=(self._isolation is IsolationLevel.READ_COMMITTED),
            group_commit=group_commit,
            failpoints=self.failpoints,
        )
        self.store.obs = self.observability
        self.store.wal.obs = self.observability
        if self.failpoints is not None and self.failpoints.on_fire is None:
            faults_injected = self.observability.faults_injected
            self.failpoints.on_fire = lambda fault: faults_injected.labels(
                site=fault.site
            ).inc()
        # The degraded gauge is computed at scrape time from the health
        # switch (the store also pushes 1 eagerly when it degrades, which
        # set_function supersedes — both views agree by construction).
        health = self.store.health
        self.observability.engine_degraded.set_function(
            lambda: 1 if health.is_degraded else 0
        )
        self.observability.health_source = health.as_dict
        locks = LockManager(default_timeout=lock_timeout)
        if self._isolation is not IsolationLevel.READ_COMMITTED:
            # SNAPSHOT and SERIALIZABLE share the MVCC engine; the isolation
            # level selects the concurrency-control policy (plain write rule
            # vs. SSI rw-antidependency tracking).
            self.engine: GraphEngine = SnapshotIsolationEngine(
                self.store,
                lock_manager=locks,
                conflict_policy=_coerce_policy(conflict_policy),
                isolation=self._isolation,
                version_cache_capacity=version_cache_capacity,
                gc_every_n_commits=gc_every_n_commits,
                commit_stripes=commit_stripes,
                snapshot_read_cache=snapshot_read_cache,
                query_cache_size=query_cache_size,
                query_executor=query_executor,
                query_batch_size=query_batch_size,
                morsel_workers=morsel_workers,
                morsel_threshold=morsel_threshold,
                safe_snapshots=safe_snapshots,
                defer_readonly=defer_readonly,
                obs=self.observability,
            )
        else:
            self.engine = ReadCommittedEngine(
                self.store,
                lock_manager=locks,
                eager_read_unlock=rc_eager_read_unlock,
                query_cache_size=query_cache_size,
                obs=self.observability,
            )
            # The RC engine takes no executor knobs of its own; attach the
            # shared query-executor configuration (morsels never apply — the
            # eligibility check requires a multi-version snapshot reader).
            self.engine.query_executor = query_executor
            self.engine.query_batch_size = max(1, int(query_batch_size))
            self.engine.morsel_workers = 0
        # Exposition-side bridge: every numeric leaf of ``statistics()``
        # becomes a ``repro_stat_*`` entry in snapshots and the Prometheus
        # text, so the registry reproduces the whole legacy counter surface
        # by construction (asserted equal in tests).
        self.observability.registry.register_collector(
            lambda: flatten_statistics(self.statistics())
        )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def in_memory(cls, **options) -> "GraphDatabase":
        """Open a database that never touches disk (tests, benchmarks, examples)."""
        return cls(path=None, **options)

    @classmethod
    def open(cls, path: str, **options) -> "GraphDatabase":
        """Open (or create) an on-disk database at ``path``."""
        return cls(path=path, **options)

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------

    @property
    def isolation_level(self) -> IsolationLevel:
        """The isolation level this database was opened with."""
        return self._isolation

    @property
    def is_snapshot_isolation(self) -> bool:
        """Whether this database runs the paper's MVCC engine (SI or SSI)."""
        return self._isolation is not IsolationLevel.READ_COMMITTED

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    def begin(
        self, *, read_only: bool = False, deferrable: Optional[bool] = None
    ) -> Transaction:
        """Start a transaction (the caller commits or rolls back explicitly).

        ``deferrable`` (read-only serializable transactions only) overrides
        the database's ``defer_readonly`` default: ``True`` blocks until a
        safe snapshot is available and then runs fully untracked, ``False``
        starts immediately under retroactive safe-snapshot validation.
        """
        self._ensure_open()
        return Transaction(
            self.engine, self.engine.begin(read_only=read_only, deferrable=deferrable)
        )

    def transaction(
        self, *, read_only: bool = False, deferrable: Optional[bool] = None
    ) -> Transaction:
        """Alias of :meth:`begin`, reads naturally in ``with`` statements."""
        return self.begin(read_only=read_only, deferrable=deferrable)

    def run_transaction(
        self,
        fn: Callable[[Transaction], T],
        *,
        retries: int = 5,
        read_only: bool = False,
        deferrable: Optional[bool] = None,
        base_backoff_seconds: float = 0.002,
        max_backoff_seconds: float = 0.25,
        rng: Optional[random.Random] = None,
        on_retry: Optional[Callable[[int, TransactionAbortedError], None]] = None,
    ) -> T:
        """Run ``fn(tx)`` in a transaction, retrying conflict aborts.

        Every isolation level in this system aborts transactions it cannot
        serialise — write-write conflicts under snapshot isolation,
        rw-antidependency (dangerous structure) aborts under serializable,
        deadlock victims under read committed — and the application contract
        for all of them is "retry".  This helper owns that contract: it
        re-runs ``fn`` in a fresh transaction on every
        :class:`~repro.errors.TransactionAbortedError`, sleeping a jittered
        exponential backoff between attempts, up to ``retries`` retries
        (``retries + 1`` attempts in total) before re-raising the last abort.

        ``fn`` receives the open transaction and may return any value, which
        becomes the return value of this call; the transaction commits after
        ``fn`` returns (unless ``fn`` already closed it).  Because ``fn`` can
        run more than once it must not carry side effects outside the
        transaction.  ``on_retry(attempt, error)`` is invoked before each
        backoff sleep (workload harnesses count retries through it).
        """
        if retries < 0:
            raise ValueError("retries must be >= 0")
        attempt = 0
        while True:
            tx = self.begin(read_only=read_only, deferrable=deferrable)
            try:
                result = fn(tx)
                if tx.is_open:
                    tx.commit()
                return result
            except TransactionAbortedError as exc:
                tx.rollback()
                if attempt >= retries:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                time.sleep(
                    jittered_backoff(
                        attempt,
                        base_seconds=base_backoff_seconds,
                        max_seconds=max_backoff_seconds,
                        rng=rng,
                    )
                )
                attempt += 1
            except BaseException:
                tx.rollback()
                raise

    # ------------------------------------------------------------------
    # declarative queries (Cypher subset)
    # ------------------------------------------------------------------

    def execute(
        self,
        query: str,
        parameters: Optional[Mapping[str, object]] = None,
        **params: object,
    ):
        """Run one query in its own transaction and return the drained result.

        Commits on success, rolls back on error.  The result is fully
        materialised (the transaction is closed by the time it returns); use
        ``tx.execute(...)`` to stream a large result from a live snapshot.

        A statement with no write clauses runs in a *read-only* transaction,
        which under serializable isolation is the free path: no SIREAD or
        predicate registration, no chance of a serialization abort, and no
        retained tracking record.
        """
        from repro.query import is_read_only_query

        self._ensure_open()
        tx = self.begin(read_only=is_read_only_query(self.engine, query))
        try:
            result = tx.execute(query, parameters, **params)
            result.consume()
            tx.commit()
        except BaseException:
            tx.rollback()
            raise
        return result

    # ------------------------------------------------------------------
    # convenience reads
    # ------------------------------------------------------------------

    def node_count(self) -> int:
        """Number of nodes visible to a fresh read-only transaction."""
        with self.begin(read_only=True) as tx:
            return tx.node_count()

    def relationship_count(self) -> int:
        """Number of relationships visible to a fresh read-only transaction."""
        with self.begin(read_only=True) as tx:
            return tx.relationship_count()

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------

    def run_gc(self) -> Optional[GcStats]:
        """Run one pass of version garbage collection (SI engines only)."""
        if isinstance(self.engine, SnapshotIsolationEngine):
            return self.engine.run_gc()
        return None

    def create_vacuum_collector(self) -> VacuumCollector:
        """A PostgreSQL-style vacuum bound to this database (SI engines only)."""
        if not isinstance(self.engine, SnapshotIsolationEngine):
            raise ReproError("vacuum collection only applies to snapshot isolation")
        return self.engine.create_vacuum_collector()

    def pause_commits(self) -> ContextManager[None]:
        """Block every committer while the returned context manager is held.

        Under snapshot isolation this acquires all commit stripes (what the
        stop-the-world vacuum uses); the read-committed engine has no sharded
        pipeline, so pausing is a no-op there.
        """
        self._ensure_open()
        if isinstance(self.engine, SnapshotIsolationEngine):
            return self.engine.pause_commits()
        return contextlib.nullcontext()

    def checkpoint(self) -> None:
        """Flush dirty pages and truncate the write-ahead log."""
        self._ensure_open()
        self.store.checkpoint()

    def health(self) -> Dict[str, object]:
        """The engine health view: ``{"status": "ok"|"degraded", ...}``.

        A degraded engine rejects write transactions with
        :class:`~repro.errors.DatabaseReadOnlyError` (a retryable abort —
        but retrying against the same process keeps failing; the recovery
        story is reopening the database, which replays the WAL) while
        snapshot reads keep working.  The same view backs the exporter's
        ``/healthz`` endpoint and the ``repro_engine_degraded`` gauge.
        """
        return self.store.health.as_dict()

    def statistics(self) -> Dict[str, object]:
        """Aggregated statistics from the engine, stores and caches."""
        stats: Dict[str, object] = {
            "isolation": self._isolation.value,
            "health": self.store.health.as_dict(),
            "store": self.store.stats.as_dict(),
            "page_cache": self.store.page_cache.stats.as_dict(),
            "wal": self.store.wal_stats(),
            "query_cache": dict(
                self.engine.query_caches.stats(),
                stats_epoch=self.engine.stats_epoch.as_dict(),
            ),
            "observability": self.observability.stats(),
        }
        if self.failpoints is not None:
            stats["failpoints"] = self.failpoints.stats()
        if isinstance(self.engine, SnapshotIsolationEngine):
            stats["engine"] = self.engine.statistics()
            stats["object_cache"] = self.engine.versions.cache.stats.as_dict()
            # Safe-snapshot counters are load-bearing for benchmarks (retry
            # attribution), so they get a top-level alias too.
            stats["safe_snapshots"] = stats["engine"]["safe_snapshots"]
        else:
            stats["engine"] = {
                "transactions": dict(
                    self.engine.stats.as_dict(),
                    abort_reasons=self.engine.abort_reasons(),
                ),
                "concurrency_control": self.engine.cc.statistics(),
                "cardinalities": self.engine.cardinalities(),
            }
            stats["locks"] = self.engine.locks.stats.as_dict()
        return stats

    # ------------------------------------------------------------------
    # observability exposition
    # ------------------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, object]:
        """The metrics registry as one JSON-able dictionary.

        ``instruments`` holds every registered counter/gauge/histogram with
        its samples; ``collected`` holds the flattened ``statistics()``
        surface (``repro_stat_*``), so every legacy counter appears here too.
        """
        return self.observability.metrics_snapshot()

    def prometheus_metrics(self) -> str:
        """The metrics registry in Prometheus text exposition format."""
        return self.observability.prometheus_text()

    def serve_metrics(self, host: str = "127.0.0.1", port: int = 0):
        """Start an HTTP scrape endpoint (``/metrics``) for this database.

        Returns the running :class:`~repro.obs.exporter.MetricsExporter`
        (``exporter.url`` is the scrape URL; ``port=0`` picks a free port).
        The server runs on a daemon thread; call ``exporter.stop()`` or use
        it as a context manager.
        """
        return self.observability.serve(host, port)

    def slow_queries(self, limit: Optional[int] = None):
        """Entries of the slow-query log, oldest first."""
        return self.observability.slow_queries.entries(limit)

    def recent_traces(self, limit: Optional[int] = None):
        """Recent finished transaction traces, oldest first."""
        return self.observability.recent_traces(limit)

    def close(self) -> None:
        """Close the engine and the store files (idempotent)."""
        with self._close_lock:
            if self._closed:
                return
            self.engine.close()
            self.store.close()
            self._closed = True

    def __enter__(self) -> "GraphDatabase":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------
    # internal
    # ------------------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise ReproError("the database has been closed")
