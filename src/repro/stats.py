"""Engine-neutral statistics containers.

Both transaction engines (the read-committed baseline and the paper's
snapshot-isolation engine) report the same transaction outcome counters, so
the container lives here rather than in either engine's package.  The
historical import location ``repro.locking.rc_manager.EngineStats`` is kept as
a re-export for backward compatibility.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict


@dataclass
class EngineStats:
    """Transaction outcome counters shared by both engines."""

    begun: int = 0
    committed: int = 0
    aborted: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view of the counters."""
        return {
            "begun": self.begun,
            "committed": self.committed,
            "aborted": self.aborted,
        }


class CommitPipelineStats:
    """Counters for the sharded commit pipeline (snapshot-isolation engine).

    ``stripe_waits`` counts stripe-lock acquisitions that had to block behind
    another committer — the direct measure of commit-path contention that the
    single global mutex made invisible (every commit waited).  Updates come
    from concurrent committers, so they go through an internal lock: an
    unsynchronised ``+=`` loses increments under exactly the contention these
    counters exist to measure.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.stripe_acquisitions = 0
        self.stripe_waits = 0
        self.commit_pauses = 0
        self.max_stripes_per_commit = 0

    def record_commit(self, stripe_count: int, waits: int) -> None:
        """Record one commit's stripe acquisitions in a single locked update.

        One call per commit (not per stripe) keeps this shared lock off the
        hot path the stripes exist to de-serialise.
        """
        with self._lock:
            self.stripe_acquisitions += stripe_count
            self.stripe_waits += waits
            if stripe_count > self.max_stripes_per_commit:
                self.max_stripes_per_commit = stripe_count

    def record_pause(self) -> None:
        """Record one stop-the-world commit pause."""
        with self._lock:
            self.commit_pauses += 1

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view of the counters."""
        with self._lock:
            return {
                "stripe_acquisitions": self.stripe_acquisitions,
                "stripe_waits": self.stripe_waits,
                "commit_pauses": self.commit_pauses,
                "max_stripes_per_commit": self.max_stripes_per_commit,
            }
