"""Engine-neutral statistics containers.

Both transaction engines (the read-committed baseline and the paper's
snapshot-isolation engine) report the same transaction outcome counters, so
the container lives here rather than in either engine's package.  The
historical import location ``repro.locking.rc_manager.EngineStats`` is kept as
a re-export for backward compatibility.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.obs.registry import MetricsRegistry


class EngineStats:
    """Transaction outcome counters shared by both engines.

    Backed by :class:`repro.obs.registry.MetricsRegistry` counters
    (``repro_txn_begun_total`` / ``repro_txn_committed_total`` /
    ``repro_txn_aborted_total``), so the same numbers appear in
    ``statistics()``, ``metrics_snapshot()`` and the Prometheus exposition
    without double bookkeeping.  The registry counters shard per thread, so
    :meth:`record_begin` and friends need no engine-level lock — concurrent
    transactions increment disjoint cells and reads merge them.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        reg = registry if registry is not None else MetricsRegistry()
        self._begun = reg.counter("repro_txn_begun_total", "Transactions begun")
        self._committed = reg.counter(
            "repro_txn_committed_total", "Transactions committed"
        )
        self._aborted = reg.counter(
            "repro_txn_aborted_total", "Transactions aborted (any reason)"
        )

    def record_begin(self) -> None:
        """Count one transaction begin (lock-free)."""
        self._begun.inc()

    def record_commit(self) -> None:
        """Count one transaction commit (lock-free)."""
        self._committed.inc()

    def record_abort(self) -> None:
        """Count one transaction abort (lock-free)."""
        self._aborted.inc()

    @property
    def begun(self) -> int:
        """Transactions begun (merged across threads)."""
        return int(self._begun.value())

    @property
    def committed(self) -> int:
        """Transactions committed (merged across threads)."""
        return int(self._committed.value())

    @property
    def aborted(self) -> int:
        """Transactions aborted (merged across threads)."""
        return int(self._aborted.value())

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view of the counters."""
        return {
            "begun": self.begun,
            "committed": self.committed,
            "aborted": self.aborted,
        }


class CommitPipelineStats:
    """Counters for the sharded commit pipeline (snapshot-isolation engine).

    ``stripe_waits`` counts stripe-lock acquisitions that had to block behind
    another committer — the direct measure of commit-path contention that the
    single global mutex made invisible (every commit waited).  Updates come
    from concurrent committers, so they go through an internal lock: an
    unsynchronised ``+=`` loses increments under exactly the contention these
    counters exist to measure.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.stripe_acquisitions = 0
        self.stripe_waits = 0
        self.commit_pauses = 0
        self.max_stripes_per_commit = 0

    def record_commit(self, stripe_count: int, waits: int) -> None:
        """Record one commit's stripe acquisitions in a single locked update.

        One call per commit (not per stripe) keeps this shared lock off the
        hot path the stripes exist to de-serialise.
        """
        with self._lock:
            self.stripe_acquisitions += stripe_count
            self.stripe_waits += waits
            if stripe_count > self.max_stripes_per_commit:
                self.max_stripes_per_commit = stripe_count

    def record_pause(self) -> None:
        """Record one stop-the-world commit pause."""
        with self._lock:
            self.commit_pauses += 1

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view of the counters."""
        with self._lock:
            return {
                "stripe_acquisitions": self.stripe_acquisitions,
                "stripe_waits": self.stripe_waits,
                "commit_pauses": self.commit_pauses,
                "max_stripes_per_commit": self.max_stripes_per_commit,
            }


class CardinalityEpoch:
    """A coarse change counter over an engine's cardinality statistics.

    The query plan cache keys plans on ``(query text, epoch)``: as long as
    the epoch is stable, cached plans were costed against statistics close
    enough to the current ones to stay valid.  The index layer calls
    :meth:`record` once per indexed entity change; when the accumulated
    changes since the last bump exceed a fraction of the indexed population
    (with an absolute floor so small databases re-plan promptly), the epoch
    advances and every cached plan silently expires on its next lookup.

    Both engines use one instance: the read-committed
    :class:`~repro.index.index_manager.IndexManager` and the SI
    :class:`~repro.core.versioned_index.VersionedIndexSet` record into
    whichever of the two the database wired in.
    """

    def __init__(self, *, min_changes: int = 128, drift_fraction: float = 0.125) -> None:
        if min_changes < 1:
            raise ValueError("min_changes must be positive")
        if drift_fraction <= 0:
            raise ValueError("drift_fraction must be positive")
        self._min_changes = min_changes
        self._drift_fraction = drift_fraction
        #: Net indexed population (creates minus deletes), the drift baseline.
        self._population = 0
        self._changes_since_bump = 0
        self.epoch = 0

    def record(self, net_delta: int = 0) -> None:
        """Record one indexed entity change (``net_delta``: +1 create, -1 delete).

        Deliberately lock-free: this sits on the striped commit path, and a
        global mutex here would re-serialise exactly the commits PR 1
        unsharded.  The counters are racy under the GIL's ``+=`` windows —
        a lost increment merely delays (or an extra epoch bump merely
        hastens) a heuristic re-plan, never affects correctness.
        """
        self._population += net_delta
        self._changes_since_bump += 1
        threshold = max(
            self._min_changes, int(self._population * self._drift_fraction)
        )
        if self._changes_since_bump >= threshold:
            self.epoch += 1
            self._changes_since_bump = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (stats surface; racy reads, monitoring only)."""
        return {
            "epoch": self.epoch,
            "population": self._population,
            "changes_since_bump": self._changes_since_bump,
        }
