"""Exception hierarchy shared by every subsystem of the reproduction.

The hierarchy mirrors the places where things can go wrong in the system the
paper describes:

* storage-level failures (corrupt records, failed recovery),
* transaction-level failures (conflicts, deadlocks, use-after-close),
* graph-model failures (missing entities, constraint violations), and
* query-language failures (syntax and execution errors in Cypher-lite).

Catching :class:`ReproError` catches everything raised by this package.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# Storage layer
# ---------------------------------------------------------------------------

class StorageError(ReproError):
    """Base class for errors raised by the record stores and page cache."""


class StoreClosedError(StorageError):
    """An operation was attempted on a store that has been closed."""


class StoreCorruptionError(StorageError):
    """A record or page could not be decoded (unexpected bytes on disk)."""


class RecordNotInUseError(StorageError):
    """A record id referenced a slot that is not marked in use."""


class RecoveryError(StorageError):
    """The write-ahead log could not be replayed on startup."""


class WalError(StorageError):
    """The write-ahead log could not be appended to or read."""


class InjectedFaultError(StorageError, OSError):
    """An IO error raised by an armed failpoint (see :mod:`repro.fault`).

    Subclasses :class:`OSError` on purpose: the durability hardening treats
    injected faults exactly like real IO errors — same retry loop, same
    degradation policy — so a test that arms a failpoint exercises precisely
    the code paths a failing disk would.
    """

    def __init__(self, message: str, *, site: str = "", hit: int = 0) -> None:
        super().__init__(message)
        self.site = site
        self.hit = hit


class SimulatedCrashError(InjectedFaultError):
    """A failpoint's ``crash`` action fired: the process "died" at this point.

    Unlike a plain injected error this is never retried and never repaired —
    the durability machinery re-raises it immediately, leaving the on-disk
    state exactly as a power cut at that instant would.  Tests catch it, copy
    the store directory as a crash image, and reopen the copy to exercise
    recovery.
    """


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------

class TransactionError(ReproError):
    """Base class for transaction lifecycle and isolation errors."""


class TransactionClosedError(TransactionError):
    """The transaction has already committed or rolled back."""


class TransactionAbortedError(TransactionError):
    """The transaction was aborted by the engine and must be retried.

    ``retryable`` tells retry loops (``GraphDatabase.run_transaction``, the
    client library) whether re-running the transaction in the same process
    can ever succeed.  Conflict-class aborts are retryable; subclasses whose
    cause is permanent for the life of the process (degraded read-only mode)
    override it to ``False`` and are re-raised immediately instead of
    burning the backoff budget.
    """

    retryable = True


class WriteWriteConflictError(TransactionAbortedError):
    """Two concurrent transactions updated the same entity.

    Under snapshot isolation the paper's write rule ("no two concurrent
    transactions can update the same data item") is enforced with a
    first-updater-wins policy: the transaction that is not the first to
    update the entity receives this error and must roll back.
    """


class SerializationError(TransactionAbortedError):
    """A serializable transaction sat on a dangerous structure and was aborted.

    Raised only under :attr:`~repro.engine.IsolationLevel.SERIALIZABLE`: the
    SSI policy detected two consecutive rw-antidependency edges (Fekete's
    dangerous structure) that this transaction would complete.  The
    transaction must be retried — ``db.run_transaction`` does so
    automatically.
    """


class UnsafeSnapshotError(SerializationError):
    """A committing writer would have exposed the read-only-transaction anomaly.

    Raised only under :attr:`~repro.engine.IsolationLevel.SERIALIZABLE` with
    safe-snapshot gating enabled: the committer carries an rw-antidependency
    out to a transaction that committed *before* the snapshot of a concurrent
    read-only transaction whose snapshot is not yet safe — the exact
    precondition of the Fekete read-only-transaction anomaly.  The writer is
    aborted (and must retry) so the reader never has to be; the retried
    writer starts after the reader's snapshot and can no longer threaten it.
    """


class DeadlockError(TransactionAbortedError):
    """A lock-wait cycle was detected; this transaction was chosen as victim."""


class LockTimeoutError(TransactionAbortedError):
    """A lock could not be acquired within the configured timeout."""


class ReadOnlyTransactionError(TransactionError):
    """A write was attempted inside a transaction opened as read-only."""


class SessionStateError(TransactionError):
    """A session operation that does not fit the session's transaction state.

    Raised by :class:`~repro.api.session.Session` — ``begin()`` while the
    session already holds an open transaction, ``commit()``/``rollback()``
    with none, or any use of a closed session.  The network server maps this
    onto protocol errors for misbehaving clients.
    """


class DegradedModeError(TransactionAbortedError):
    """The engine entered degraded read-only mode while this write was in flight.

    Raised when an unrecoverable IO error (a failed fsync after retries, a
    torn append that could not be repaired, a broken checkpoint) flipped the
    engine into degraded mode during the transaction's commit.  Snapshot
    readers keep working; the write was **not** made durable.  Degradation
    is one-way for the life of the process (the recovery story is reopening
    the database, which replays the WAL), so retrying against the same
    process can never succeed — the error is marked ``retryable = False``
    and ``run_transaction`` re-raises it immediately instead of sleeping
    through its backoff budget.
    """

    retryable = False


class DatabaseReadOnlyError(DegradedModeError):
    """A write transaction was attempted while the engine is degraded.

    The fence raised at ``begin``/``commit`` once degraded mode is already
    established (as opposed to :class:`DegradedModeError`, which reports the
    commit that *hit* the IO failure).  Read-only transactions are unaffected.
    """


class DatabaseClosedError(ReproError):
    """An operation was attempted on a database that is closed (or draining).

    Raised by ``GraphDatabase`` once ``close()`` has begun: new transactions
    are fenced here while the drain step waits for in-flight transactions to
    finish, and every later API call gets the same clean error instead of an
    OS-level failure against released file descriptors.
    """


# ---------------------------------------------------------------------------
# Network service layer (see repro.server / repro.client)
# ---------------------------------------------------------------------------

class ServerError(ReproError):
    """Base class for errors raised by the network service layer."""


class ProtocolError(ServerError):
    """A wire frame or message could not be decoded (or broke the protocol)."""


class AuthenticationError(ServerError):
    """The server rejected the session's credentials at HELLO time."""


class ConnectionLimitError(ServerError):
    """The server is at its connection limit; retry against another node."""


class ServerDrainingError(ServerError):
    """The server is draining for shutdown and accepts no new work.

    In-flight requests complete and their commits are durable; anything
    arriving after the drain began — new connections and new requests alike —
    gets this error and should be retried against another node.
    """

    retryable = True


class IsolationNegotiationError(ServerError):
    """The session demanded an isolation level the server cannot provide.

    Raised only when the client sets ``require_isolation``: the server's
    database runs one concurrency-control policy, and a request for a
    *stronger* level than it provides cannot be granted (weaker requests are
    served at the database's level, which is strictly more isolated, and the
    granted level is reported back in the HELLO response).
    """


class SessionExpiredError(ServerError):
    """The server-side session is gone (evicted, timed out, or server restart)."""


def classify_abort(exc: BaseException) -> str:
    """Map an abort-raising exception to the abort-reason vocabulary.

    The labels match the engines' ``abort_reasons()`` breakdown so the
    observability layer's labelled abort counter and the statistics surface
    agree: ``safe-snapshot``, ``rw-antidependency``, ``ww-conflict``,
    ``deadlock``, ``degraded-mode`` (writes fenced or failed because the
    engine is in degraded read-only mode), ``io-error`` (a storage/OS-level
    IO failure aborted the commit, injected faults included), or ``error``
    for anything outside the taxonomy.  Order matters — the safe-snapshot
    and serialization classes subclass the broader abort classes they
    refine, and degraded-mode errors subclass the abort base class.
    """
    if isinstance(exc, DegradedModeError):
        return "degraded-mode"
    if isinstance(exc, UnsafeSnapshotError):
        return "safe-snapshot"
    if isinstance(exc, SerializationError):
        return "rw-antidependency"
    if isinstance(exc, WriteWriteConflictError):
        return "ww-conflict"
    if isinstance(exc, (DeadlockError, LockTimeoutError)):
        return "deadlock"
    if isinstance(exc, (StorageError, OSError)):
        return "io-error"
    return "error"


# ---------------------------------------------------------------------------
# Graph model
# ---------------------------------------------------------------------------

class GraphModelError(ReproError):
    """Base class for errors in the logical graph model."""


class EntityNotFoundError(GraphModelError):
    """A node or relationship id does not exist (or is not visible)."""

    def __init__(self, entity_kind: str, entity_id: int) -> None:
        super().__init__(f"{entity_kind} {entity_id} not found")
        self.entity_kind = entity_kind
        self.entity_id = entity_id


class NodeNotFoundError(EntityNotFoundError):
    """A node id does not exist in the visible snapshot."""

    def __init__(self, node_id: int) -> None:
        super().__init__("node", node_id)


class RelationshipNotFoundError(EntityNotFoundError):
    """A relationship id does not exist in the visible snapshot."""

    def __init__(self, rel_id: int) -> None:
        super().__init__("relationship", rel_id)


class ConstraintViolationError(GraphModelError):
    """An operation would violate a structural constraint.

    The main example is deleting a node that still has relationships without
    asking for a detach-delete, which matches Neo4j's behaviour.
    """


class InvalidPropertyValueError(GraphModelError):
    """A property value has a type the store cannot represent."""


class ReservedNameError(GraphModelError):
    """A label or property key collides with an internal reserved name."""


# ---------------------------------------------------------------------------
# Query language (Cypher-lite)
# ---------------------------------------------------------------------------

class QueryError(ReproError):
    """Base class for query-language errors (see :mod:`repro.query`)."""


class QuerySyntaxError(QueryError):
    """The query text could not be tokenised or parsed."""

    def __init__(self, message: str, position: int = -1) -> None:
        if position >= 0:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class QueryExecutionError(QueryError):
    """The query parsed but failed while executing."""
