"""Transaction lifecycle tracing: timed phases per transaction.

A :class:`TxnTrace` is a tiny append-only record the engine attaches to a
*sampled* transaction.  The engine calls :meth:`TxnTrace.mark` at each
lifecycle boundary; a mark is **one** ``perf_counter()`` call plus one list
append, which is the entire per-phase hot-path cost.  The phase sequence
under snapshot isolation:

``begin``        timestamp-oracle grant, snapshot census, safe-snapshot
                 census waits/retakes (for deferrable read-only txns)
``read``         everything between begin and entering commit/abort —
                 version-chain resolution, traversals, query execution
``stripe_wait``  blocking on commit-stripe locks held by peers
``validate``     conflict checks (first-committer-wins / SSI dangerous
                 structures) + write-set collection
``install``      version installation + index maintenance
``wal``          store apply incl. WAL append/fsync (group commit means a
                 trace may pay for peers' batches here — that is real wait)
``publish``      commit-timestamp publication + cleanup

Aborted transactions end with whatever phases they reached plus an
``outcome`` of ``"aborted"`` and the abort ``reason``.

Finished traces go to the recorder's ring buffer (recent-traces window for
``db.observability.recent_traces()``) and to any registered sinks.  Sinks
are called synchronously from the committing thread — they are expected to
be cheap (the JSON-lines sink does one ``write`` on an already-open file).

Sampling is deterministic: ``sample_rate=r`` traces every ``round(1/r)``-th
transaction (counter-based, not RNG) so tests can predict exactly which
transactions carry a trace.  At ``sample_rate=0`` / ``enabled=False`` the
engine never constructs a trace and the per-transaction cost is one
attribute check.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from time import perf_counter
from typing import Callable, Deque, Dict, List, Optional, Tuple

__all__ = ["JsonLinesSink", "TraceRecorder", "TxnTrace"]

#: Canonical phase order (traces may omit phases, never reorder them).
PHASES: Tuple[str, ...] = (
    "begin",
    "read",
    "stripe_wait",
    "validate",
    "install",
    "wal",
    "publish",
)


class TxnTrace:
    """Timed phase record for one transaction."""

    __slots__ = (
        "txn_id",
        "read_only",
        "started_at",
        "finished_at",
        "outcome",
        "reason",
        "_last",
        "_phases",
        "annotations",
    )

    def __init__(self, txn_id: int, *, read_only: bool = False) -> None:
        self.txn_id = txn_id
        self.read_only = read_only
        now = perf_counter()
        self.started_at = now
        self.finished_at: Optional[float] = None
        self.outcome: Optional[str] = None
        self.reason: Optional[str] = None
        self._last = now
        self._phases: List[Tuple[str, float]] = []
        self.annotations: Dict[str, object] = {}

    def mark(self, phase: str) -> None:
        """Close ``phase``: its duration is the time since the last mark."""
        now = perf_counter()
        self._phases.append((phase, now - self._last))
        self._last = now

    def annotate(self, key: str, value: object) -> None:
        """Attach one contextual fact (stripe count, rows read, ...)."""
        self.annotations[key] = value

    def finish(self, outcome: str, reason: Optional[str] = None) -> None:
        """Seal the trace with ``outcome`` (committed/aborted/rolled_back)."""
        self.finished_at = perf_counter()
        self.outcome = outcome
        self.reason = reason

    # -- views ---------------------------------------------------------------

    @property
    def phases(self) -> List[Tuple[str, float]]:
        """``(phase, seconds)`` in the order marked (repeats merged)."""
        merged: Dict[str, float] = {}
        order: List[str] = []
        for phase, seconds in self._phases:
            if phase not in merged:
                order.append(phase)
                merged[phase] = 0.0
            merged[phase] += seconds
        return [(phase, merged[phase]) for phase in order]

    @property
    def wall_seconds(self) -> float:
        """Begin-to-finish wall time (0.0 while still open)."""
        if self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at

    def phase_seconds(self, phase: str) -> float:
        """Total time attributed to ``phase`` (0.0 if never marked)."""
        return sum(seconds for name, seconds in self._phases if name == phase)

    def as_dict(self) -> Dict[str, object]:
        """JSON-able summary of the whole trace."""
        return {
            "txn_id": self.txn_id,
            "read_only": self.read_only,
            "outcome": self.outcome,
            "reason": self.reason,
            "wall_seconds": self.wall_seconds,
            "phases": {phase: seconds for phase, seconds in self.phases},
            "annotations": dict(self.annotations),
        }


class TraceRecorder:
    """Decides which transactions to trace and where finished traces go."""

    def __init__(
        self,
        *,
        enabled: bool = True,
        sample_rate: float = 1.0,
        ring_size: int = 256,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be within [0, 1]")
        self.enabled = enabled and sample_rate > 0.0
        #: Trace every Nth transaction — deterministic, so tests can target
        #: exactly the sampled ones.
        self.sample_every = max(1, round(1.0 / sample_rate)) if self.enabled else 0
        self._counter = 0
        self._counter_lock = threading.Lock()
        self._ring: Deque[TxnTrace] = deque(maxlen=max(1, ring_size))
        self._ring_lock = threading.Lock()
        self._sinks: List[Callable[[TxnTrace], None]] = []
        self.traces_recorded = 0
        self.traces_dropped_by_sampling = 0

    def maybe_start(self, txn_id: int, *, read_only: bool = False) -> Optional[TxnTrace]:
        """A new :class:`TxnTrace` if this transaction is sampled, else None."""
        if not self.enabled:
            return None
        if self.sample_every > 1:
            # Only fractional sampling needs the shared counter; the common
            # sample-everything configuration skips the lock entirely.
            with self._counter_lock:
                self._counter += 1
                sampled = self._counter % self.sample_every == 0
                if not sampled:
                    self.traces_dropped_by_sampling += 1
            if not sampled:
                return None
        return TxnTrace(txn_id, read_only=read_only)

    def record(self, trace: TxnTrace) -> None:
        """Accept a finished trace: ring buffer + every sink."""
        with self._ring_lock:
            self._ring.append(trace)
            self.traces_recorded += 1
            sinks = list(self._sinks)
        for sink in sinks:
            try:
                sink(trace)
            except Exception:
                # An observability sink must never fail a commit.
                continue

    def add_sink(self, sink: Callable[[TxnTrace], None]) -> None:
        """Register a callable invoked with every finished trace."""
        with self._ring_lock:
            self._sinks.append(sink)

    def remove_sink(self, sink: Callable[[TxnTrace], None]) -> None:
        """Unregister a sink (no-op if absent)."""
        with self._ring_lock:
            try:
                self._sinks.remove(sink)
            except ValueError:
                pass

    def recent(self, limit: Optional[int] = None) -> List[TxnTrace]:
        """The most recent traces, oldest first."""
        with self._ring_lock:
            traces = list(self._ring)
        if limit is not None:
            traces = traces[-limit:]
        return traces

    def stats(self) -> Dict[str, object]:
        """Recorder counters for ``statistics()`` / snapshots."""
        with self._ring_lock:
            ring_len = len(self._ring)
        return {
            "enabled": self.enabled,
            "sample_every": self.sample_every,
            "recorded": self.traces_recorded,
            "dropped_by_sampling": self.traces_dropped_by_sampling,
            "ring_length": ring_len,
        }


class JsonLinesSink:
    """Trace sink appending one JSON object per line to ``path``."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._file = open(path, "a", encoding="utf-8")

    def __call__(self, trace: TxnTrace) -> None:
        line = json.dumps(trace.as_dict(), sort_keys=True)
        with self._lock:
            self._file.write(line + "\n")
            self._file.flush()

    def close(self) -> None:
        """Close the underlying file (further traces are dropped)."""
        with self._lock:
            if not self._file.closed:
                self._file.close()
