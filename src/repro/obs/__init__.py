"""Observability subsystem: metrics, transaction traces, slow-query log.

One :class:`Observability` bundle per :class:`~repro.api.database.GraphDatabase`
(engines built bare get their own private bundle) wires together:

* a :class:`~repro.obs.registry.MetricsRegistry` of counters / gauges /
  histograms with lock-free per-thread shards,
* a :class:`~repro.obs.tracing.TraceRecorder` sampling transactions into
  timed phase traces (ring buffer + pluggable sinks),
* a :class:`~repro.obs.slowlog.SlowQueryLog` capturing statements above a
  latency threshold,
* Prometheus text rendering (:mod:`repro.obs.prometheus`) and an optional
  stdlib HTTP scrape endpoint (:mod:`repro.obs.exporter`).

The bundle pre-creates the engine-facing instruments so the hot path never
pays registry lookups: transaction outcome counters, labelled abort-reason
counters, phase/commit latency histograms (fed from sampled traces by a
built-in sink), WAL append/fsync instruments and query-layer instruments.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.exporter import MetricsExporter, serve_registry
from repro.obs.prometheus import render as render_prometheus
from repro.obs.prometheus import render_snapshot
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    flatten_statistics,
    sanitize_metric_name,
)
from repro.obs.slowlog import SlowQueryEntry, SlowQueryLog
from repro.obs.tracing import PHASES, JsonLinesSink, TraceRecorder, TxnTrace

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonLinesSink",
    "MetricsExporter",
    "MetricsRegistry",
    "Observability",
    "SlowQueryEntry",
    "SlowQueryLog",
    "TraceRecorder",
    "TxnTrace",
    "default_registry",
    "flatten_statistics",
    "render_prometheus",
    "render_snapshot",
    "sanitize_metric_name",
    "serve_registry",
]


class Observability:
    """Per-database bundle of registry, trace recorder and slow-query log."""

    def __init__(
        self,
        *,
        registry: Optional[MetricsRegistry] = None,
        tracing: bool = False,
        trace_sample_rate: float = 1.0,
        trace_ring_size: int = 256,
        slow_query_seconds: Optional[float] = None,
        slow_query_capacity: int = 128,
        redact_parameters: bool = False,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = TraceRecorder(
            enabled=tracing,
            sample_rate=trace_sample_rate,
            ring_size=trace_ring_size,
        )
        self.slow_queries = SlowQueryLog(
            slow_query_seconds,
            capacity=slow_query_capacity,
            redact_parameters=redact_parameters,
        )
        #: Health view callable backing the exporter's ``/healthz`` endpoint;
        #: the database wires ``store.health.as_dict`` here.  Left ``None``,
        #: ``/healthz`` is a bare liveness probe.
        self.health_source = None

        reg = self.registry
        # -- transaction lifecycle ------------------------------------------
        self.txn_begun = reg.counter(
            "repro_txn_begun_total", "Transactions begun"
        )
        self.txn_committed = reg.counter(
            "repro_txn_committed_total", "Transactions committed"
        )
        self.txn_aborted = reg.counter(
            "repro_txn_aborted_total", "Transactions aborted (any reason)"
        )
        self.txn_abort_reasons = reg.counter(
            "repro_txn_aborts_total",
            "Transactions aborted, by conflict-detection reason",
            labelnames=("reason",),
        )
        # Fed from sampled traces only (see the sink below): latency of the
        # whole transaction and of each lifecycle phase.
        self.txn_seconds = reg.histogram(
            "repro_txn_seconds", "Sampled transaction wall time (seconds)"
        )
        self.txn_phase_seconds = reg.histogram(
            "repro_txn_phase_seconds",
            "Sampled transaction time per lifecycle phase (seconds)",
            labelnames=("phase",),
        )
        # -- WAL / store ----------------------------------------------------
        self.wal_append_seconds = reg.histogram(
            "repro_wal_append_seconds",
            "WAL append (incl. fsync when enabled) latency (seconds)",
        )
        self.wal_fsyncs = reg.counter(
            "repro_wal_fsyncs_total", "WAL fsync calls"
        )
        self.wal_bytes = reg.counter(
            "repro_wal_appended_bytes_total", "Bytes appended to the WAL"
        )
        # -- durability / fault tolerance -----------------------------------
        self.io_retries = reg.counter(
            "repro_io_retries_total",
            "Transient IO errors absorbed by the bounded retry loop",
        )
        self.engine_degraded = reg.gauge(
            "repro_engine_degraded",
            "1 when the engine is in degraded read-only mode, else 0",
        )
        self.faults_injected = reg.counter(
            "repro_faults_injected_total",
            "Failpoint firings, by injection site (testing only)",
            labelnames=("site",),
        )
        # -- query layer ----------------------------------------------------
        self.query_seconds = reg.histogram(
            "repro_query_seconds", "Query wall time, parse to last row (seconds)"
        )
        self.query_rows = reg.counter(
            "repro_query_rows_total", "Rows produced by queries"
        )
        self.queries = reg.counter(
            "repro_queries_total",
            "Queries executed, by outcome",
            labelnames=("kind",),
        )
        self.query_batches = reg.counter(
            "repro_query_batches_total",
            "Row batches produced by the vectorized executor",
        )
        self.query_batch_rows = reg.histogram(
            "repro_query_batch_rows",
            "Rows per batch produced by the vectorized executor",
            buckets=(1, 4, 16, 64, 256, 1024, 4096),
        )
        self.plan_cache_hits = reg.counter(
            "repro_plan_cache_hits_total", "Plan cache hits"
        )
        self.plan_cache_misses = reg.counter(
            "repro_plan_cache_misses_total", "Plan cache misses"
        )
        reg.gauge(
            "repro_slow_queries_total",
            "Queries recorded by the slow-query log",
        ).set_function(lambda: self.slow_queries.slow_queries_total)
        reg.gauge(
            "repro_txn_traces_recorded_total",
            "Transaction traces recorded (sampled and finished)",
        ).set_function(lambda: self.tracer.traces_recorded)

        # Hot-path child cache: resolving a labelled child is a dict probe,
        # but the committing thread shouldn't even pay that per phase.  Only
        # an enabled tracer materialises the children — with tracing off the
        # phase histogram must stay visibly empty.
        self._phase_histograms = (
            {phase: self.txn_phase_seconds.labels(phase=phase) for phase in PHASES}
            if self.tracer.enabled
            else {}
        )

        if self.tracer.enabled:
            self.tracer.add_sink(self._observe_trace)

    # -- trace -> metric bridge ---------------------------------------------

    def _observe_trace(self, trace: TxnTrace) -> None:
        self.txn_seconds.observe(trace.wall_seconds)
        phase_histograms = self._phase_histograms
        for phase, seconds in trace.phases:
            histogram = phase_histograms.get(phase)
            if histogram is None:
                histogram = self.txn_phase_seconds.labels(phase=phase)
            histogram.observe(seconds)

    # -- views ---------------------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, object]:
        """The registry snapshot (instruments + collector output)."""
        return self.registry.snapshot()

    def prometheus_text(self) -> str:
        """The registry rendered in Prometheus text exposition format."""
        return render_prometheus(self.registry)

    def recent_traces(self, limit: Optional[int] = None):
        """Recent finished transaction traces, oldest first."""
        return self.tracer.recent(limit)

    def serve(self, host: str = "127.0.0.1", port: int = 0) -> MetricsExporter:
        """Start an HTTP scrape endpoint for this bundle's registry."""
        return serve_registry(
            self.registry, host, port, health_source=self.health_source
        )

    def stats(self) -> Dict[str, object]:
        """Bundle counters for ``statistics()`` (tracing + slow-query log)."""
        return {
            "tracing": self.tracer.stats(),
            "slow_query_log": self.slow_queries.stats(),
        }
