"""Optional HTTP scrape endpoint built on stdlib ``http.server``.

:class:`MetricsExporter` serves the registry's Prometheus text at
``/metrics``, the JSON snapshot at ``/metrics.json``, and — when a health
source is wired — a load-balancer-style ``/healthz`` endpoint (200 while the
engine is healthy, 503 once it enters degraded read-only mode) from a daemon
thread.  It is deliberately minimal — the future network service layer
mounts the same render functions behind its own server; this endpoint
exists so a standalone process (benchmarks, the observability demo, the CI
smoke step) can be scraped today.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.obs.prometheus import render_snapshot
from repro.obs.registry import MetricsRegistry

__all__ = ["MetricsExporter", "serve_registry"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsExporter:
    """A tiny scrape server bound to one snapshot source."""

    def __init__(
        self,
        snapshot_source: Callable[[], dict],
        host: str = "127.0.0.1",
        port: int = 0,
        health_source: Optional[Callable[[], dict]] = None,
    ) -> None:
        """``health_source`` returns the engine health view (see
        :meth:`repro.api.database.GraphDatabase.health`); without one,
        ``/healthz`` degenerates to a liveness probe that always answers
        200 (the server being up is all it can attest to)."""
        self._snapshot_source = snapshot_source
        self._health_source = health_source

        exporter = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0]
                if path == "/healthz":
                    source = exporter._health_source
                    health = source() if source is not None else {"status": "ok"}
                    payload = json.dumps(health, sort_keys=True).encode("utf-8")
                    degraded = health.get("status") != "ok"
                    self.send_response(503 if degraded else 200)
                    self.send_header("Content-Type", "application/json")
                elif path in ("/metrics", "/"):
                    body = render_snapshot(exporter._snapshot_source())
                    payload = body.encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
                elif path == "/metrics.json":
                    payload = json.dumps(
                        exporter._snapshot_source(), sort_keys=True
                    ).encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", "application/json")
                else:
                    payload = b"not found\n"
                    self.send_response(404)
                    self.send_header("Content-Type", "text/plain")
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, format: str, *args: object) -> None:
                pass  # scrapes must not spam stderr

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._stopped = False

    @property
    def host(self) -> str:
        """Bound host."""
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (useful with ``port=0`` for an ephemeral port)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL; append ``/metrics`` or ``/metrics.json`` to scrape."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsExporter":
        """Start serving from a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-metrics-exporter",
                daemon=True,
            )
            self._thread.start()
        return self

    @property
    def is_running(self) -> bool:
        """Whether the exporter is serving (started and not stopped)."""
        return self._thread is not None and not self._stopped

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent).

        Called both by user code and by ``GraphDatabase.close()`` — the
        database tracks every exporter it started so none outlives the
        engine answering scrapes against closed files.
        """
        if self._stopped:
            return
        self._stopped = True
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


def serve_registry(
    registry: MetricsRegistry,
    host: str = "127.0.0.1",
    port: int = 0,
    health_source: Optional[Callable[[], dict]] = None,
) -> MetricsExporter:
    """Start a scrape endpoint for ``registry``; returns the exporter."""
    return MetricsExporter(
        registry.snapshot, host, port, health_source=health_source
    ).start()
