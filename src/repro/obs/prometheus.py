"""Prometheus text exposition (version 0.0.4) without dependencies.

Renders a :meth:`repro.obs.registry.MetricsRegistry.snapshot` structure:
instrument families become ``# HELP`` / ``# TYPE`` blocks with their
samples; histogram families expand to cumulative ``_bucket{le="..."}``
series plus ``_sum`` and ``_count``; collector output is rendered as
untyped gauges.  The format is the subset every Prometheus-compatible
scraper accepts — the CI smoke test validates it with
``tests/prometheus_parser.py``.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.obs.registry import MetricsRegistry, sanitize_metric_name

__all__ = ["render", "render_snapshot"]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    as_int = int(value)
    if float(as_int) == value:
        return str(as_int)
    return repr(value)


def _labels_text(labels: Mapping[str, str], extra: Mapping[str, str] = {}) -> str:
    merged = {**labels, **extra}
    if not merged:
        return ""
    parts = ",".join(
        f'{sanitize_metric_name(str(key))}="{_escape_label_value(str(value))}"'
        for key, value in merged.items()
    )
    return "{" + parts + "}"


def render_snapshot(snapshot: Mapping[str, object]) -> str:
    """Render a registry snapshot dict to Prometheus text format."""
    lines = []
    instruments: Dict[str, dict] = snapshot.get("instruments", {})  # type: ignore[assignment]
    for name in sorted(instruments):
        family = instruments[name]
        kind = family["type"]
        help_text = family.get("help") or name
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in family["samples"]:
            labels: Mapping[str, str] = sample.get("labels", {})
            if kind == "histogram":
                cumulative = 0
                for bound, bucket_count in sample["buckets"].items():
                    cumulative += bucket_count
                    le = "+Inf" if bound == "+Inf" else _format_value(float(bound))
                    lines.append(
                        f"{name}_bucket{_labels_text(labels, {'le': le})} {cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_labels_text(labels)} {_format_value(sample['sum'])}"
                )
                lines.append(f"{name}_count{_labels_text(labels)} {sample['count']}")
            else:
                lines.append(
                    f"{name}{_labels_text(labels)} {_format_value(sample['value'])}"
                )
    collected: Mapping[str, float] = snapshot.get("collected", {})  # type: ignore[assignment]
    for name in sorted(collected):
        metric = sanitize_metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(collected[name])}")
    return "\n".join(lines) + "\n" if lines else ""


def render(registry: MetricsRegistry) -> str:
    """Render a live registry to Prometheus text format."""
    return render_snapshot(registry.snapshot())
