"""Metrics registry: named counters, gauges and fixed-bucket histograms.

Design constraints, in order:

1. **The hot path must not take a shared lock.**  Counters and histograms
   are written from every transaction begin/commit and every query; a
   process-wide mutex there would re-serialise exactly the paths the
   sharded commit pipeline and the lock-free read path de-serialised.
   Each instrument therefore keeps *per-thread shard cells*: an increment
   touches only the calling thread's cell (a plain ``+=`` on ints that no
   other thread ever writes), and a read merges all cells.  Merging while
   writers are active can observe a cell mid-update — values may be a few
   increments stale — but an increment is never lost, and once the writing
   threads quiesce the merged totals are exact.

2. **Reads are monitoring-grade, writes are correctness-grade.**  The
   counters feed benchmarks and tests that assert exact totals after
   joining their threads; the stale-read window only matters to a live
   scrape, which tolerates it by definition.

3. **No dependencies.**  Exposition (:mod:`repro.obs.prometheus`) renders
   the :meth:`MetricsRegistry.snapshot` structure; nothing here imports
   outside the standard library.

Instruments are created through the registry (``registry.counter(...)``),
which deduplicates by name so independent subsystems can ask for the same
instrument.  Instruments may be *labelled*: ``counter("x_total",
labelnames=("reason",))`` returns a family whose :meth:`~_Instrument.labels`
method hands out per-label-value children.  An unlabelled instrument is its
own single child, so ``counter("y_total").inc()`` works directly.

Registries also accept *collectors* — callables returning a flat
``name -> number`` mapping evaluated at snapshot time — which is how the
engines' existing structural statistics (version-chain counts, oracle
state, cardinalities) are exposed without migrating every data structure
onto an instrument.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "flatten_statistics",
    "sanitize_metric_name",
]

#: Log-spaced latency buckets (seconds): 10us .. ~100s, 4 buckets per decade.
#: Upper bounds only; the implicit final bucket is +Inf.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    round(10 ** (exponent / 4.0), 10) for exponent in range(-20, 9)
)

_NAME_PATTERN = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(raw: str) -> str:
    """Coerce an arbitrary string into a valid Prometheus metric name."""
    name = _INVALID_CHARS.sub("_", raw)
    if not name or not _NAME_PATTERN.match(name):
        name = "_" + name
    return name


def _validate_name(name: str) -> str:
    if not _NAME_PATTERN.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


# ---------------------------------------------------------------------------
# shard cells
# ---------------------------------------------------------------------------


class _CounterCell:
    """One thread's share of a counter (written only by its owner)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0


class _HistogramCell:
    """One thread's share of a histogram (written only by its owner)."""

    __slots__ = ("bucket_counts", "count", "total", "samples")

    def __init__(self, bucket_count: int, track_samples: bool) -> None:
        self.bucket_counts = [0] * bucket_count
        self.count = 0
        self.total = 0.0
        self.samples: Optional[List[float]] = [] if track_samples else None


class _Sharded:
    """Per-thread cell management shared by counters and histograms.

    Cell creation (first touch per thread) takes the instrument lock; every
    later operation is lock-free.  Cells of finished threads are retained —
    counters are cumulative, so their contributions must survive the thread.
    """

    def __init__(self) -> None:
        self._cells_lock = threading.Lock()
        self._cells: Dict[int, object] = {}
        self._local = threading.local()

    def _cell(self):
        try:
            return self._local.cell
        except AttributeError:
            cell = self._new_cell()
            with self._cells_lock:
                self._cells[threading.get_ident()] = cell
            self._local.cell = cell
            return cell

    def _new_cell(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def _all_cells(self) -> List[object]:
        with self._cells_lock:
            return list(self._cells.values())


# ---------------------------------------------------------------------------
# instruments
# ---------------------------------------------------------------------------


class Counter(_Sharded):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self) -> None:
        super().__init__()

    def _new_cell(self) -> _CounterCell:
        return _CounterCell()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters can only increase")
        self._cell().value += amount

    def value(self) -> float:
        """Merged value across every thread's cell."""
        return sum(cell.value for cell in self._all_cells())


class Gauge:
    """A value that can go up and down (or be computed at read time)."""

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the gauge."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        with self._lock:
            self._value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Compute the gauge by calling ``fn`` at read time."""
        with self._lock:
            self._fn = fn

    def value(self) -> float:
        """Current value (calls the function for callback gauges)."""
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        try:
            return float(fn())
        except Exception:
            return float("nan")


class Histogram(_Sharded):
    """Fixed-bucket histogram with per-thread shards.

    ``buckets`` are the upper bounds (sorted ascending); an implicit +Inf
    bucket catches the tail.  With ``track_samples=True`` every observation
    is additionally kept verbatim (per thread, merged on read), giving exact
    interpolated percentiles — the mode the workload benchmarks use; leave
    it off for unbounded-lifetime instruments.
    """

    kind = "histogram"

    def __init__(
        self,
        buckets: Optional[Sequence[float]] = None,
        *,
        track_samples: bool = False,
    ) -> None:
        super().__init__()
        bounds = tuple(sorted(buckets)) if buckets else DEFAULT_LATENCY_BUCKETS
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.bounds: Tuple[float, ...] = bounds
        self._track_samples = track_samples

    def _new_cell(self) -> _HistogramCell:
        return _HistogramCell(len(self.bounds) + 1, self._track_samples)

    def observe(self, value: float) -> None:
        """Record one observation."""
        cell = self._cell()
        cell.bucket_counts[bisect_left(self.bounds, value)] += 1
        cell.count += 1
        cell.total += value
        if cell.samples is not None:
            cell.samples.append(value)

    # -- merged views -------------------------------------------------------

    def count(self) -> int:
        """Total number of observations."""
        return sum(cell.count for cell in self._all_cells())

    def sum(self) -> float:
        """Sum of every observation."""
        return sum(cell.total for cell in self._all_cells())

    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        count = self.count()
        return self.sum() / count if count else 0.0

    def bucket_counts(self) -> List[int]:
        """Per-bucket counts (len(bounds) + 1 entries; the last is +Inf)."""
        merged = [0] * (len(self.bounds) + 1)
        for cell in self._all_cells():
            for index, bucket in enumerate(cell.bucket_counts):
                merged[index] += bucket
        return merged

    def samples(self) -> List[float]:
        """Every recorded sample (exact mode only; [] otherwise)."""
        merged: List[float] = []
        for cell in self._all_cells():
            if cell.samples is not None:
                merged.extend(cell.samples)
        return merged

    def percentile(self, fraction: float) -> float:
        """Value at ``fraction`` (0..1); 0.0 when empty.

        In exact-sample mode this is the linearly-interpolated order
        statistic (the same definition ``statistics.quantiles`` uses with
        ``method='inclusive'``); in bucket mode the estimate interpolates
        within the covering bucket, which is as precise as the bucket
        layout allows.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        samples = self.samples() if self._track_samples else None
        if samples:
            samples.sort()
            rank = fraction * (len(samples) - 1)
            low = math.floor(rank)
            high = math.ceil(rank)
            if low == high:
                return samples[int(rank)]
            weight = rank - low
            return samples[low] * (1.0 - weight) + samples[high] * weight
        counts = self.bucket_counts()
        total = sum(counts)
        if total == 0:
            return 0.0
        target = fraction * total
        cumulative = 0
        for index, bucket in enumerate(counts):
            previous = cumulative
            cumulative += bucket
            if cumulative >= target and bucket:
                upper = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else self.bounds[-1]
                )
                lower = self.bounds[index - 1] if index > 0 else 0.0
                within = (target - previous) / bucket
                return lower + (upper - lower) * min(1.0, max(0.0, within))
        return self.bounds[-1]

    def summary(self) -> Dict[str, float]:
        """count / mean / p50 / p95 / p99 / max in one dictionary."""
        return {
            "count": self.count(),
            "mean": self.mean(),
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "max": self.percentile(1.0),
        }


# ---------------------------------------------------------------------------
# labelled families
# ---------------------------------------------------------------------------


class _Family:
    """A named instrument family: children keyed by label values.

    With no label names the family has exactly one anonymous child and the
    child's methods are exposed on the family itself, so unlabelled
    instruments read naturally (``family.inc()`` / ``family.observe()``).
    """

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        child_factory: Callable[[], object],
    ) -> None:
        self.name = _validate_name(name)
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._factory = child_factory
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}
        if not self.labelnames:
            self._children[()] = child_factory()

    @property
    def kind(self) -> str:
        """Instrument kind: counter, gauge or histogram."""
        probe = next(iter(self._children.values()), None)
        if probe is None:
            probe = self._factory()
        return probe.kind

    def labels(self, *values: str, **kv: str) -> object:
        """The child instrument for one combination of label values."""
        if kv:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            try:
                values = tuple(str(kv[name]) for name in self.labelnames)
            except KeyError as exc:
                raise ValueError(f"missing label {exc.args[0]!r}") from None
            if len(kv) != len(self.labelnames):
                raise ValueError(f"expected labels {self.labelnames}, got {tuple(kv)}")
        else:
            values = tuple(str(value) for value in values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects {len(self.labelnames)} label values, got {len(values)}"
            )
        child = self._children.get(values)
        if child is None:
            with self._lock:
                child = self._children.get(values)
                if child is None:
                    child = self._factory()
                    self._children[values] = child
        return child

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        """Every (label values, child) pair created so far."""
        with self._lock:
            return list(self._children.items())

    # -- anonymous-child passthrough (unlabelled families) -------------------

    def _only(self):
        if self.labelnames:
            raise ValueError(f"{self.name} is labelled; call .labels(...) first")
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._only().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._only().dec(amount)

    def set(self, value: float) -> None:
        self._only().set(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        self._only().set_function(fn)

    def observe(self, value: float) -> None:
        self._only().observe(value)

    def value(self) -> float:
        return self._only().value()

    def count(self) -> int:
        return self._only().count()

    def sum(self) -> float:
        return self._only().sum()

    def percentile(self, fraction: float) -> float:
        return self._only().percentile(fraction)

    def summary(self) -> Dict[str, float]:
        return self._only().summary()

    def samples(self) -> List[float]:
        return self._only().samples()

    def bucket_counts(self) -> List[int]:
        return self._only().bucket_counts()


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


class MetricsRegistry:
    """Holds instrument families by name, plus snapshot-time collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: "Dict[str, _Family]" = {}
        self._collectors: List[Callable[[], Mapping[str, float]]] = []

    # -- instrument creation (get-or-create, deduplicated by name) ----------

    def _family(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        kind: str,
        factory: Callable[[], object],
    ) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {family.kind}"
                    )
                if family.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{family.labelnames}"
                    )
                return family
            family = _Family(name, help_text, labelnames, factory)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> _Family:
        """Get or create a counter family."""
        return self._family(name, help_text, labelnames, "counter", Counter)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> _Family:
        """Get or create a gauge family."""
        return self._family(name, help_text, labelnames, "gauge", Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        *,
        buckets: Optional[Sequence[float]] = None,
        track_samples: bool = False,
    ) -> _Family:
        """Get or create a histogram family."""
        return self._family(
            name,
            help_text,
            labelnames,
            "histogram",
            lambda: Histogram(buckets, track_samples=track_samples),
        )

    def register_collector(self, fn: Callable[[], Mapping[str, float]]) -> None:
        """Register a snapshot-time collector returning ``name -> number``.

        Collector output is rendered as gauges; a collector that raises is
        skipped for that snapshot (scrapes must not fail because one
        subsystem is mid-teardown).
        """
        with self._lock:
            self._collectors.append(fn)

    def families(self) -> List[_Family]:
        """Every registered instrument family."""
        with self._lock:
            return list(self._families.values())

    def get(self, name: str) -> Optional[_Family]:
        """The family registered under ``name``, or ``None``."""
        with self._lock:
            return self._families.get(name)

    # -- snapshot ------------------------------------------------------------

    def collect_extra(self) -> Dict[str, float]:
        """Merged collector output (later collectors win on name clashes)."""
        with self._lock:
            collectors = list(self._collectors)
        merged: Dict[str, float] = {}
        for collector in collectors:
            try:
                merged.update(collector())
            except Exception:
                continue
        return merged

    def snapshot(self) -> Dict[str, object]:
        """The whole registry as one JSON-able dictionary.

        ``instruments`` maps family name to type/help/samples; ``collected``
        holds the flat collector output.  This is the structure
        ``db.metrics_snapshot()`` returns and the Prometheus renderer
        consumes.
        """
        instruments: Dict[str, object] = {}
        for family in self.families():
            samples = []
            for label_values, child in family.children():
                labels = dict(zip(family.labelnames, label_values))
                if family.kind == "histogram":
                    bounds = list(child.bounds)
                    samples.append(
                        {
                            "labels": labels,
                            "count": child.count(),
                            "sum": child.sum(),
                            "buckets": dict(
                                zip(
                                    [str(bound) for bound in bounds] + ["+Inf"],
                                    child.bucket_counts(),
                                )
                            ),
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value()})
            instruments[family.name] = {
                "type": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return {"instruments": instruments, "collected": self.collect_extra()}


_default_registry_lock = threading.Lock()
_default_registry: Optional[MetricsRegistry] = None


def default_registry() -> MetricsRegistry:
    """The process-wide default registry (created on first use)."""
    global _default_registry
    with _default_registry_lock:
        if _default_registry is None:
            _default_registry = MetricsRegistry()
        return _default_registry


# ---------------------------------------------------------------------------
# statistics flattening (the compatibility bridge)
# ---------------------------------------------------------------------------


def flatten_statistics(
    nested: Mapping[str, object], prefix: str = "repro_stat"
) -> Dict[str, float]:
    """Flatten a nested statistics dict into metric-name -> number.

    Every numeric leaf of ``db.statistics()`` becomes one flat entry whose
    name is the sanitized path joined with ``_`` — e.g.
    ``engine.transactions.abort_reasons["ww-conflict"]`` becomes
    ``repro_stat_engine_transactions_abort_reasons_ww_conflict``.  Both the
    statistics collector and the compatibility tests use this one function,
    which is what guarantees the exposition reproduces every counter
    ``statistics()`` reports.
    """
    flat: Dict[str, float] = {}

    def walk(value: object, path: str) -> None:
        if isinstance(value, Mapping):
            for key, child in value.items():
                walk(child, f"{path}_{sanitize_metric_name(str(key))}")
        elif isinstance(value, bool):
            flat[path] = float(value)
        elif isinstance(value, (int, float)):
            flat[path] = float(value)
        # strings and other leaves (isolation level, policy names) have no
        # numeric representation; the exposition carries them nowhere and
        # the compatibility contract covers *counters* only.

    walk(dict(nested), sanitize_metric_name(prefix))
    return flat
