"""Slow-query log: a bounded record of statements above a latency threshold.

The query layer reports every execution to :meth:`SlowQueryLog.observe`;
entries slower than ``threshold_seconds`` are kept in a ring buffer with
statement text, parameters (redactable — parameter *names* survive
redaction, values do not), the chosen plan rendering, the transaction's
snapshot timestamp and the row count.  ``threshold_seconds=None`` disables
the log entirely (the observe call is then one comparison).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Mapping, Optional

__all__ = ["SlowQueryEntry", "SlowQueryLog"]


class SlowQueryEntry:
    """One slow execution."""

    __slots__ = (
        "text",
        "parameters",
        "seconds",
        "rows",
        "plan",
        "snapshot_ts",
        "read_only",
    )

    def __init__(
        self,
        text: str,
        parameters: Optional[Dict[str, object]],
        seconds: float,
        rows: int,
        plan: Optional[str],
        snapshot_ts: Optional[int],
        read_only: bool,
    ) -> None:
        self.text = text
        self.parameters = parameters
        self.seconds = seconds
        self.rows = rows
        self.plan = plan
        self.snapshot_ts = snapshot_ts
        self.read_only = read_only

    def as_dict(self) -> Dict[str, object]:
        """JSON-able view of the entry."""
        return {
            "text": self.text,
            "parameters": self.parameters,
            "seconds": self.seconds,
            "rows": self.rows,
            "plan": self.plan,
            "snapshot_ts": self.snapshot_ts,
            "read_only": self.read_only,
        }


class SlowQueryLog:
    """Ring buffer of executions slower than the threshold."""

    def __init__(
        self,
        threshold_seconds: Optional[float] = None,
        *,
        capacity: int = 128,
        redact_parameters: bool = False,
    ) -> None:
        if threshold_seconds is not None and threshold_seconds < 0:
            raise ValueError("threshold_seconds must be >= 0 or None")
        self.threshold_seconds = threshold_seconds
        self.redact_parameters = redact_parameters
        self._entries: Deque[SlowQueryEntry] = deque(maxlen=max(1, capacity))
        self._lock = threading.Lock()
        self.slow_queries_total = 0

    @property
    def enabled(self) -> bool:
        """Whether any execution can ever be logged."""
        return self.threshold_seconds is not None

    def observe(
        self,
        text: str,
        parameters: Optional[Mapping[str, object]],
        seconds: float,
        *,
        rows: int = 0,
        plan: Optional[str] = None,
        snapshot_ts: Optional[int] = None,
        read_only: bool = False,
    ) -> bool:
        """Record the execution if slow enough; returns whether it was."""
        threshold = self.threshold_seconds
        if threshold is None or seconds < threshold:
            return False
        if parameters is None:
            captured: Optional[Dict[str, object]] = None
        elif self.redact_parameters:
            captured = {name: "<redacted>" for name in parameters}
        else:
            captured = dict(parameters)
        entry = SlowQueryEntry(
            text, captured, seconds, rows, plan, snapshot_ts, read_only
        )
        with self._lock:
            self._entries.append(entry)
            self.slow_queries_total += 1
        return True

    def entries(self, limit: Optional[int] = None) -> List[SlowQueryEntry]:
        """Logged entries, oldest first."""
        with self._lock:
            entries = list(self._entries)
        if limit is not None:
            entries = entries[-limit:]
        return entries

    def clear(self) -> None:
        """Drop every logged entry (the total counter is kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, object]:
        """Log counters for ``statistics()`` / snapshots."""
        with self._lock:
            length = len(self._entries)
        return {
            "enabled": self.enabled,
            "threshold_seconds": self.threshold_seconds,
            "total": self.slow_queries_total,
            "buffered": length,
        }
