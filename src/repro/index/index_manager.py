"""Index manager: keeps every unversioned index in step with entity changes.

The read-committed engine calls :meth:`IndexManager.apply_node_change` and
:meth:`IndexManager.apply_relationship_change` at commit time with the old and
new logical states of each touched entity.  On startup the indexes are rebuilt
by scanning the persistent store.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Set

from repro.graph.entity import NodeData, RelationshipData
from repro.graph.properties import PropertyValue
from repro.graph.store_manager import StoreManager
from repro.index.label_index import LabelIndex
from repro.index.property_index import PropertyIndex
from repro.index.relationship_index import (
    RelationshipPropertyIndex,
    RelationshipTypeIndex,
)


class IndexManager:
    """Bundle of the label, node-property and relationship indexes.

    ``stats_epoch`` (a :class:`~repro.stats.CardinalityEpoch`, optional)
    receives one :meth:`~repro.stats.CardinalityEpoch.record` per applied
    entity change, so the query plan cache expires when the cardinalities
    behind its cost estimates have drifted.
    """

    def __init__(self, *, stats_epoch=None) -> None:
        self._lock = threading.RLock()
        self.labels = LabelIndex()
        self.node_properties = PropertyIndex()
        self.relationship_properties = RelationshipPropertyIndex()
        self.relationship_types = RelationshipTypeIndex()
        self.stats_epoch = stats_epoch

    # -- maintenance ----------------------------------------------------------

    def apply_node_change(
        self, old: Optional[NodeData], new: Optional[NodeData]
    ) -> None:
        """Update node indexes for one created / updated / deleted node."""
        with self._lock:
            if old is None and new is None:
                return
            if self.stats_epoch is not None:
                self.stats_epoch.record((old is None) - (new is None))
            if new is None and old is not None:
                self.labels.remove_node(old.node_id, old.labels)
                self.node_properties.remove_node(old.node_id, old.properties)
                return
            assert new is not None
            old_labels = old.labels if old is not None else frozenset()
            old_props = old.properties if old is not None else {}
            self.labels.update(new.node_id, old_labels, new.labels)
            self.node_properties.update(new.node_id, old_props, new.properties)

    def apply_relationship_change(
        self, old: Optional[RelationshipData], new: Optional[RelationshipData]
    ) -> None:
        """Update relationship indexes for one created / updated / deleted edge."""
        with self._lock:
            if old is None and new is None:
                return
            if self.stats_epoch is not None:
                self.stats_epoch.record((old is None) - (new is None))
            if new is None and old is not None:
                self.relationship_properties.remove_relationship(
                    old.rel_id, old.properties
                )
                self.relationship_types.remove(old.rel_type, old.rel_id)
                return
            assert new is not None
            old_props = old.properties if old is not None else {}
            self.relationship_properties.update(new.rel_id, old_props, new.properties)
            if old is None:
                self.relationship_types.add(new.rel_type, new.rel_id)

    # -- queries ---------------------------------------------------------------

    def nodes_with_label(self, label: str) -> Set[int]:
        """Node ids carrying ``label``."""
        return self.labels.get(label)

    def nodes_with_property(self, key: str, value: PropertyValue) -> Set[int]:
        """Node ids with property ``key`` = ``value``."""
        return self.node_properties.get(key, value)

    def nodes_with_label_and_property(
        self, label: str, key: str, value: PropertyValue
    ) -> Set[int]:
        """Node ids carrying ``label`` and property ``key`` = ``value``."""
        return self.labels.get(label) & self.node_properties.get(key, value)

    def relationships_with_property(self, key: str, value: PropertyValue) -> Set[int]:
        """Relationship ids with property ``key`` = ``value``."""
        return self.relationship_properties.get(key, value)

    def relationships_of_type(self, rel_type: str) -> Set[int]:
        """Relationship ids of type ``rel_type``."""
        return self.relationship_types.get(rel_type)

    # -- cardinality fast paths ------------------------------------------------

    def count_nodes_with_label(self, label: str) -> int:
        """Number of nodes carrying ``label`` in O(1) (no set copy)."""
        return self.labels.count(label)

    def count_nodes_with_property(self, key: str, value: PropertyValue) -> int:
        """Number of nodes with ``key`` = ``value`` in O(1) (no set copy)."""
        return self.node_properties.count(key, value)

    def count_relationships_of_type(self, rel_type: str) -> int:
        """Number of relationships of ``rel_type`` in O(1) (no set copy)."""
        return self.relationship_types.count(rel_type)

    def cardinalities(self) -> Dict[str, Dict[str, int]]:
        """Per-label and per-type cardinalities (the stats/EXPLAIN surface)."""
        return {
            "node_labels": {
                label: self.labels.count(label) for label in self.labels.labels()
            },
            "relationship_types": {
                rel_type: self.relationship_types.count(rel_type)
                for rel_type in sorted(self.relationship_types.types())
            },
        }

    # -- startup ---------------------------------------------------------------

    def rebuild(self, store: StoreManager) -> None:
        """Rebuild every index from the persistent store (startup path)."""
        with self._lock:
            self.labels.clear()
            self.node_properties.clear()
            self.relationship_properties.clear()
            self.relationship_types.clear()
            for node in store.iter_nodes():
                self.apply_node_change(None, node)
            for relationship in store.iter_relationships():
                self.apply_relationship_change(None, relationship)

    def clear(self) -> None:
        """Drop every index entry."""
        with self._lock:
            self.labels.clear()
            self.node_properties.clear()
            self.relationship_properties.clear()
            self.relationship_types.clear()
