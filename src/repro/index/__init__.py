"""Index subsystem.

Section 2 of the paper lists three indexes in Neo4j: a label index and a
property index for nodes, and a property index for relationships.  The classes
here are the *unversioned* implementations used by the read-committed
baseline engine and as the building blocks underneath the multi-versioned
indexes of :mod:`repro.core.versioned_index`.
"""

from repro.index.label_index import LabelIndex
from repro.index.property_index import PropertyIndex
from repro.index.relationship_index import RelationshipPropertyIndex, RelationshipTypeIndex
from repro.index.index_manager import IndexManager

__all__ = [
    "IndexManager",
    "LabelIndex",
    "PropertyIndex",
    "RelationshipPropertyIndex",
    "RelationshipTypeIndex",
]
