"""Label index: label name → set of node ids."""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, Iterable, List, Set


class LabelIndex:
    """Thread-safe mapping from label names to the node ids carrying them."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._nodes_by_label: Dict[str, Set[int]] = {}

    def add(self, label: str, node_id: int) -> None:
        """Record that ``node_id`` carries ``label``."""
        with self._lock:
            self._nodes_by_label.setdefault(label, set()).add(node_id)

    def remove(self, label: str, node_id: int) -> None:
        """Record that ``node_id`` no longer carries ``label``."""
        with self._lock:
            members = self._nodes_by_label.get(label)
            if members is not None:
                members.discard(node_id)

    def update(self, node_id: int, old_labels: FrozenSet[str], new_labels: FrozenSet[str]) -> None:
        """Apply a label-set change for one node."""
        with self._lock:
            for label in old_labels - new_labels:
                members = self._nodes_by_label.get(label)
                if members is not None:
                    members.discard(node_id)
            for label in new_labels - old_labels:
                self._nodes_by_label.setdefault(label, set()).add(node_id)

    def get(self, label: str) -> Set[int]:
        """Node ids currently carrying ``label`` (a copy)."""
        with self._lock:
            return set(self._nodes_by_label.get(label, ()))

    def labels(self) -> List[str]:
        """All labels that have ever had at least one member."""
        with self._lock:
            return sorted(self._nodes_by_label)

    def count(self, label: str) -> int:
        """Number of nodes currently carrying ``label``."""
        with self._lock:
            return len(self._nodes_by_label.get(label, ()))

    def remove_node(self, node_id: int, labels: Iterable[str]) -> None:
        """Remove a deleted node from every one of its labels."""
        with self._lock:
            for label in labels:
                members = self._nodes_by_label.get(label)
                if members is not None:
                    members.discard(node_id)

    def clear(self) -> None:
        """Drop every entry (used before a rebuild)."""
        with self._lock:
            self._nodes_by_label.clear()
