"""Node property index: (property key, value) → set of node ids."""

from __future__ import annotations

import threading
from typing import Dict, Hashable, Iterable, Mapping, Set, Tuple

from repro.graph.properties import PropertyValue


def hashable_value(value: PropertyValue) -> Hashable:
    """Convert a property value into a hashable index key (arrays → tuples)."""
    if isinstance(value, list):
        return tuple(value)
    if isinstance(value, tuple):
        return value
    return value


class PropertyIndex:
    """Thread-safe mapping from ``(key, value)`` pairs to node ids."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._nodes_by_entry: Dict[Tuple[str, Hashable], Set[int]] = {}

    def add(self, key: str, value: PropertyValue, node_id: int) -> None:
        """Record that ``node_id`` has property ``key`` = ``value``."""
        entry = (key, hashable_value(value))
        with self._lock:
            self._nodes_by_entry.setdefault(entry, set()).add(node_id)

    def remove(self, key: str, value: PropertyValue, node_id: int) -> None:
        """Record that ``node_id`` no longer has property ``key`` = ``value``."""
        entry = (key, hashable_value(value))
        with self._lock:
            members = self._nodes_by_entry.get(entry)
            if members is not None:
                members.discard(node_id)

    def update(
        self,
        node_id: int,
        old_properties: Mapping[str, PropertyValue],
        new_properties: Mapping[str, PropertyValue],
    ) -> None:
        """Apply a property-map change for one node."""
        with self._lock:
            for key, value in old_properties.items():
                if new_properties.get(key) != value or key not in new_properties:
                    members = self._nodes_by_entry.get((key, hashable_value(value)))
                    if members is not None:
                        members.discard(node_id)
            for key, value in new_properties.items():
                if old_properties.get(key) != value or key not in old_properties:
                    self._nodes_by_entry.setdefault(
                        (key, hashable_value(value)), set()
                    ).add(node_id)

    def get(self, key: str, value: PropertyValue) -> Set[int]:
        """Node ids with property ``key`` = ``value`` (a copy)."""
        with self._lock:
            return set(self._nodes_by_entry.get((key, hashable_value(value)), ()))

    def count(self, key: str, value: PropertyValue) -> int:
        """Number of nodes with property ``key`` = ``value`` (O(1), no set copy)."""
        with self._lock:
            return len(self._nodes_by_entry.get((key, hashable_value(value)), ()))

    def get_by_key(self, key: str) -> Set[int]:
        """Node ids that have *any* value for ``key``."""
        with self._lock:
            result: Set[int] = set()
            for (entry_key, _value), members in self._nodes_by_entry.items():
                if entry_key == key:
                    result.update(members)
            return result

    def remove_node(self, node_id: int, properties: Mapping[str, PropertyValue]) -> None:
        """Remove a deleted node from every entry it appears in."""
        with self._lock:
            for key, value in properties.items():
                members = self._nodes_by_entry.get((key, hashable_value(value)))
                if members is not None:
                    members.discard(node_id)

    def entry_count(self) -> int:
        """Number of distinct ``(key, value)`` entries."""
        with self._lock:
            return len(self._nodes_by_entry)

    def clear(self) -> None:
        """Drop every entry (used before a rebuild)."""
        with self._lock:
            self._nodes_by_entry.clear()
