"""Relationship indexes.

The paper mentions that Neo4j "maintains one index for relationships, mapping
properties to [relationships] holding those properties"; a relationship-type
index is also provided because the traversal framework and Cypher-lite planner
both benefit from it.
"""

from __future__ import annotations

import threading
from typing import Dict, Hashable, Mapping, Set, Tuple

from repro.graph.properties import PropertyValue
from repro.index.property_index import hashable_value


class RelationshipPropertyIndex:
    """Thread-safe mapping from ``(key, value)`` pairs to relationship ids."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._rels_by_entry: Dict[Tuple[str, Hashable], Set[int]] = {}

    def add(self, key: str, value: PropertyValue, rel_id: int) -> None:
        """Record that relationship ``rel_id`` has property ``key`` = ``value``."""
        with self._lock:
            self._rels_by_entry.setdefault((key, hashable_value(value)), set()).add(rel_id)

    def remove(self, key: str, value: PropertyValue, rel_id: int) -> None:
        """Record that relationship ``rel_id`` no longer has that property value."""
        with self._lock:
            members = self._rels_by_entry.get((key, hashable_value(value)))
            if members is not None:
                members.discard(rel_id)

    def update(
        self,
        rel_id: int,
        old_properties: Mapping[str, PropertyValue],
        new_properties: Mapping[str, PropertyValue],
    ) -> None:
        """Apply a property-map change for one relationship."""
        with self._lock:
            for key, value in old_properties.items():
                if new_properties.get(key) != value or key not in new_properties:
                    members = self._rels_by_entry.get((key, hashable_value(value)))
                    if members is not None:
                        members.discard(rel_id)
            for key, value in new_properties.items():
                if old_properties.get(key) != value or key not in old_properties:
                    self._rels_by_entry.setdefault(
                        (key, hashable_value(value)), set()
                    ).add(rel_id)

    def get(self, key: str, value: PropertyValue) -> Set[int]:
        """Relationship ids with property ``key`` = ``value`` (a copy)."""
        with self._lock:
            return set(self._rels_by_entry.get((key, hashable_value(value)), ()))

    def count(self, key: str, value: PropertyValue) -> int:
        """Number of relationships with ``key`` = ``value`` (O(1), no set copy)."""
        with self._lock:
            return len(self._rels_by_entry.get((key, hashable_value(value)), ()))

    def remove_relationship(
        self, rel_id: int, properties: Mapping[str, PropertyValue]
    ) -> None:
        """Remove a deleted relationship from every entry it appears in."""
        with self._lock:
            for key, value in properties.items():
                members = self._rels_by_entry.get((key, hashable_value(value)))
                if members is not None:
                    members.discard(rel_id)

    def clear(self) -> None:
        """Drop every entry (used before a rebuild)."""
        with self._lock:
            self._rels_by_entry.clear()


class RelationshipTypeIndex:
    """Thread-safe mapping from relationship type names to relationship ids."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._rels_by_type: Dict[str, Set[int]] = {}

    def add(self, rel_type: str, rel_id: int) -> None:
        """Record a relationship of the given type."""
        with self._lock:
            self._rels_by_type.setdefault(rel_type, set()).add(rel_id)

    def remove(self, rel_type: str, rel_id: int) -> None:
        """Forget a relationship of the given type."""
        with self._lock:
            members = self._rels_by_type.get(rel_type)
            if members is not None:
                members.discard(rel_id)

    def get(self, rel_type: str) -> Set[int]:
        """Relationship ids of the given type (a copy)."""
        with self._lock:
            return set(self._rels_by_type.get(rel_type, ()))

    def types(self) -> Set[str]:
        """All relationship types seen so far."""
        with self._lock:
            return set(self._rels_by_type)

    def count(self, rel_type: str) -> int:
        """Number of relationships of the given type."""
        with self._lock:
            return len(self._rels_by_type.get(rel_type, ()))

    def clear(self) -> None:
        """Drop every entry (used before a rebuild)."""
        with self._lock:
            self._rels_by_type.clear()
