"""Common engine interface implemented by both concurrency-control engines.

The repository ships two transaction engines over the same storage substrate:

* :class:`repro.locking.rc_manager.ReadCommittedEngine` — Neo4j's stock
  behaviour (short read locks, long write locks), which exhibits unrepeatable
  and phantom reads, and
* :class:`repro.core.si_manager.SnapshotIsolationEngine` — the paper's
  multi-version concurrency control providing snapshot isolation.

The public API (:mod:`repro.api`) is written against the abstract classes in
this module so the two engines are interchangeable, which is what makes the
experiment harness able to run identical workloads under both isolation
levels.
"""

from __future__ import annotations

import abc
import enum
from typing import Iterator, List, Optional, Sequence, Set

from repro.errors import TransactionClosedError
from repro.graph.entity import Direction, NodeData, RelationshipData
from repro.graph.properties import PropertyValue


class IsolationLevel(enum.Enum):
    """Isolation levels selectable when opening a database.

    ``SERIALIZABLE`` runs the same multi-version engine as ``SNAPSHOT`` with
    the Serializable Snapshot Isolation policy on top: reads stay lock-free
    against the transaction's snapshot, but rw-antidependencies are tracked
    and a transaction completing a dangerous structure is aborted with
    :class:`~repro.errors.SerializationError` — which closes the write-skew
    gap snapshot isolation is known for.  Read-only serializable
    transactions are gated by *safe snapshots* (PostgreSQL-style), closing
    the Fekete read-only-transaction anomaly without registering reads or
    ever aborting a reader.
    """

    READ_COMMITTED = "read_committed"
    SNAPSHOT = "snapshot"
    SERIALIZABLE = "serializable"


class TransactionState(enum.Enum):
    """Lifecycle states of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class EngineTransaction(abc.ABC):
    """Engine-level transaction: logical reads and buffered logical writes.

    The user-facing :class:`repro.api.transaction.Transaction` wraps one of
    these and adds graph-model validation (endpoint checks, detach-delete,
    property validation).  Engine transactions therefore only deal in whole
    :class:`~repro.graph.entity.NodeData` / ``RelationshipData`` states.
    """

    def __init__(self, txn_id: int, *, read_only: bool = False) -> None:
        self.txn_id = txn_id
        self.read_only = read_only
        self.state = TransactionState.ACTIVE

    # -- lifecycle ----------------------------------------------------------

    @property
    def is_open(self) -> bool:
        """Whether the transaction can still be used."""
        return self.state is TransactionState.ACTIVE

    def ensure_open(self) -> None:
        """Raise :class:`TransactionClosedError` unless the transaction is active."""
        if self.state is not TransactionState.ACTIVE:
            raise TransactionClosedError(
                f"transaction {self.txn_id} is {self.state.value}"
            )

    @abc.abstractmethod
    def commit(self) -> None:
        """Make the transaction's writes visible to others (or raise and abort)."""

    @abc.abstractmethod
    def rollback(self) -> None:
        """Discard the transaction's writes."""

    # -- reads ----------------------------------------------------------------

    @abc.abstractmethod
    def read_node(self, node_id: int) -> Optional[NodeData]:
        """The node state visible to this transaction, or ``None``."""

    @abc.abstractmethod
    def read_relationship(self, rel_id: int) -> Optional[RelationshipData]:
        """The relationship state visible to this transaction, or ``None``."""

    @abc.abstractmethod
    def iter_nodes(self) -> Iterator[NodeData]:
        """Every node visible to this transaction (including its own writes)."""

    @abc.abstractmethod
    def iter_relationships(self) -> Iterator[RelationshipData]:
        """Every relationship visible to this transaction."""

    @abc.abstractmethod
    def find_nodes_by_label(self, label: str) -> Set[int]:
        """Ids of visible nodes carrying ``label``."""

    @abc.abstractmethod
    def find_nodes_by_property(self, key: str, value: PropertyValue) -> Set[int]:
        """Ids of visible nodes with property ``key`` = ``value``."""

    @abc.abstractmethod
    def find_relationships_by_property(self, key: str, value: PropertyValue) -> Set[int]:
        """Ids of visible relationships with property ``key`` = ``value``."""

    @abc.abstractmethod
    def find_relationships_by_type(self, rel_type: str) -> Set[int]:
        """Ids of visible relationships of type ``rel_type``."""

    @abc.abstractmethod
    def relationships_of(
        self,
        node_id: int,
        direction: Direction = Direction.BOTH,
        rel_types: Optional[Sequence[str]] = None,
    ) -> List[RelationshipData]:
        """Visible relationships attached to ``node_id``."""

    # -- batch reads (vectorized executor) -----------------------------------
    #
    # Engines that can resolve a whole batch more cheaply than N point reads
    # override these; the defaults simply loop, so every engine supports the
    # batch API with unchanged semantics (locking behaviour included).

    def read_nodes_many(self, node_ids: Sequence[int]) -> List[Optional[NodeData]]:
        """The visible state of each node id, in order (``None`` if absent)."""
        return [self.read_node(node_id) for node_id in node_ids]

    def read_relationships_many(
        self, rel_ids: Sequence[int]
    ) -> List[Optional[RelationshipData]]:
        """The visible state of each relationship id, in order."""
        return [self.read_relationship(rel_id) for rel_id in rel_ids]

    def relationships_of_many(
        self,
        node_ids: Sequence[int],
        direction: Direction = Direction.BOTH,
        rel_types: Optional[Sequence[str]] = None,
    ) -> List[List[RelationshipData]]:
        """Visible relationships of each node id, in order (batched expand)."""
        return [
            self.relationships_of(node_id, direction, rel_types)
            for node_id in node_ids
        ]

    # -- writes ----------------------------------------------------------------

    @abc.abstractmethod
    def put_node(self, node: NodeData, *, create: bool = False) -> None:
        """Buffer a node create or update."""

    @abc.abstractmethod
    def put_relationship(self, relationship: RelationshipData, *, create: bool = False) -> None:
        """Buffer a relationship create or update."""

    @abc.abstractmethod
    def delete_node(self, node_id: int) -> None:
        """Buffer a node delete."""

    @abc.abstractmethod
    def delete_relationship(self, rel_id: int) -> None:
        """Buffer a relationship delete."""


class GraphEngine(abc.ABC):
    """A concurrency-control engine bound to one storage substrate."""

    isolation_level: IsolationLevel

    @abc.abstractmethod
    def begin(
        self, *, read_only: bool = False, deferrable: Optional[bool] = None
    ) -> EngineTransaction:
        """Start a new transaction.

        ``deferrable`` applies to read-only transactions under serializable
        isolation: ``True`` blocks until a *safe snapshot* (one no in-flight
        read-write transaction can render anomalous) is available, after
        which the transaction runs completely untracked; ``False`` starts
        immediately and lets the safe-snapshot machinery validate the
        snapshot retroactively; ``None`` uses the engine default.  Engines
        without the machinery ignore the flag.
        """

    @abc.abstractmethod
    def allocate_node_id(self) -> int:
        """Reserve a node id for an entity being created."""

    @abc.abstractmethod
    def allocate_relationship_id(self) -> int:
        """Reserve a relationship id for an entity being created."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release engine resources (the store is closed by the database)."""

    def checkpoint(self) -> None:
        """Optional hook: flush engine state (default does nothing)."""
