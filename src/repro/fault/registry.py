"""The failpoint registry: named, deterministic fault-injection sites.

Every durability-critical boundary in the engine is wrapped in a *failpoint
site* — a stable name hit once per traversal of that boundary.  A
:class:`FailpointRegistry` maps site names to (trigger policy, fault action)
pairs; unarmed sites cost one ``None`` check on the hot path (components hold
``failpoints=None`` unless the database was opened with injection enabled,
so production runs pay nothing).

The registry records every firing into a *fault schedule* — the ordered list
of ``(site, hit index, action)`` triples — which is what the fault-storm
stress asserts determinism over and what CI uploads as an artifact when a
storm run fails.

Configuration sources, in increasing precedence:

* ``GraphDatabase(failpoints={"wal.fsync": "times(2):error"})``
* the ``REPRO_FAILPOINTS`` environment variable, e.g.
  ``REPRO_FAILPOINTS="wal.fsync=times(2):error;store.checkpoint=once:crash"``
  (applied when the database is opened without an explicit registry — the CI
  hook)
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Union

from repro.fault.policies import FaultAction, FiredFault, TriggerPolicy, parse_spec

__all__ = ["FAILPOINT_SITES", "FAILPOINTS_ENV_VAR", "FailpointRegistry"]

#: Environment variable holding ``site=spec;site=spec`` pairs for CI runs.
FAILPOINTS_ENV_VAR = "REPRO_FAILPOINTS"

#: The failpoint catalog: every site threaded through the engine.  Arming an
#: unknown name is an error — a misspelt site would otherwise silently never
#: fire, which is the worst possible failure mode for a fault-injection test.
FAILPOINT_SITES: Dict[str, str] = {
    "wal.append": "WAL batch append (supports torn: partial frame bytes hit disk)",
    "wal.fsync": "WAL fsync after a group append",
    "wal.truncate": "WAL truncation during checkpoint",
    "store.group_flush": "group-commit flush, before the WAL append",
    "store.flush": "store-file flush during checkpoint",
    "store.checkpoint": "checkpoint entry, before any flushing",
    "checkpoint.marker": "checkpoint marker write (write-temp + rename)",
    "recovery.replay": "WAL replay on startup, once per committed batch",
    "commit.stripe_acquire": "SI commit, before acquiring the commit stripes",
    "commit.publish": "SI commit, after durable append, before the ack",
}


class _Failpoint:
    """One armed site: hit counter + policy + action, under a private lock."""

    __slots__ = ("site", "policy", "action", "lock", "hits", "fires")

    def __init__(self, site: str, policy: TriggerPolicy, action: FaultAction) -> None:
        self.site = site
        self.policy = policy
        self.action = action
        self.lock = threading.Lock()
        self.hits = 0
        self.fires = 0


class FailpointRegistry:
    """Registry of armed failpoints, shared by every component of one database."""

    def __init__(
        self,
        config: Optional[Union[Mapping[str, str], str]] = None,
        *,
        seed: int = 0,
        on_fire: Optional[Callable[[FiredFault], None]] = None,
        extra_sites: Iterable[str] = (),
    ) -> None:
        """``config`` is a ``{site: spec}`` mapping or a ``site=spec;...``
        string; ``seed`` is the default RNG seed for ``prob`` policies that
        do not carry their own, so one registry seed reproduces one fault
        schedule.  ``on_fire`` is invoked for every firing (the database
        wires the observability counter through it).  ``extra_sites``
        extends the catalog for out-of-tree components (tests, future
        subsystems)."""
        self._lock = threading.Lock()
        self._sites: Dict[str, _Failpoint] = {}
        self._known = dict(FAILPOINT_SITES)
        for site in extra_sites:
            self._known.setdefault(site, "caller-registered site")
        self._seed = seed
        self._schedule: List[FiredFault] = []
        self.on_fire = on_fire
        if config:
            self.arm_many(config)

    # -- configuration -------------------------------------------------------

    @classmethod
    def from_config(
        cls,
        config: Optional[Union[Mapping[str, str], str, "FailpointRegistry"]],
        *,
        seed: int = 0,
        env: Optional[Mapping[str, str]] = None,
    ) -> Optional["FailpointRegistry"]:
        """Coerce a user-facing ``failpoints=`` value into a registry.

        ``None`` falls back to :data:`FAILPOINTS_ENV_VAR` (and returns
        ``None`` when that is unset too, keeping the hot path free); an
        existing registry passes through untouched.
        """
        if isinstance(config, FailpointRegistry):
            return config
        if config:
            return cls(config, seed=seed)
        env_value = (env if env is not None else os.environ).get(FAILPOINTS_ENV_VAR)
        if env_value:
            return cls(env_value, seed=seed)
        return None

    def arm(self, site: str, spec: str) -> None:
        """Arm (or re-arm) one site with a ``"<policy>:<action>"`` spec."""
        if site not in self._known:
            known = ", ".join(sorted(self._known))
            raise ValueError(f"unknown failpoint site {site!r}; catalog: {known}")
        policy, action = parse_spec(spec, default_seed=self._seed)
        with self._lock:
            self._sites[site] = _Failpoint(site, policy, action)

    def arm_many(self, config: Union[Mapping[str, str], str]) -> None:
        """Arm several sites from a mapping or a ``site=spec;...`` string."""
        if isinstance(config, str):
            pairs = []
            for chunk in config.split(";"):
                chunk = chunk.strip()
                if not chunk:
                    continue
                if "=" not in chunk:
                    raise ValueError(
                        f"unparsable failpoint config chunk {chunk!r}; "
                        "expected 'site=policy:action'"
                    )
                site, spec = chunk.split("=", 1)
                pairs.append((site.strip(), spec.strip()))
        else:
            pairs = list(config.items())
        for site, spec in pairs:
            self.arm(site, spec)

    def disarm(self, site: str) -> None:
        """Disarm one site (keeping its contribution to the schedule)."""
        with self._lock:
            self._sites.pop(site, None)

    def clear(self) -> None:
        """Disarm every site."""
        with self._lock:
            self._sites.clear()

    # -- the site-facing hot call -------------------------------------------

    def hit(self, site: str) -> Optional[FiredFault]:
        """Record one traversal of ``site``; returns the fault iff it fires.

        Unarmed sites return ``None`` after a single dict probe.  Components
        additionally guard the call behind ``failpoints is not None``, so a
        database opened without injection never reaches here at all.
        """
        failpoint = self._sites.get(site)
        if failpoint is None:
            return None
        with failpoint.lock:
            failpoint.hits += 1
            hit_index = failpoint.hits
            fired = failpoint.policy.should_fire(hit_index)
            if fired:
                failpoint.fires += 1
        if not fired:
            return None
        fault = FiredFault(site=site, hit=hit_index, action=failpoint.action)
        with self._lock:
            self._schedule.append(fault)
        callback = self.on_fire
        if callback is not None:
            callback(fault)
        return fault

    # -- introspection -------------------------------------------------------

    def armed_sites(self) -> List[str]:
        """Names of currently armed sites, sorted."""
        with self._lock:
            return sorted(self._sites)

    def hits(self, site: str) -> int:
        """Traversal count of ``site`` since it was (last) armed."""
        failpoint = self._sites.get(site)
        return failpoint.hits if failpoint is not None else 0

    def fires(self, site: str) -> int:
        """Firing count of ``site`` since it was (last) armed."""
        failpoint = self._sites.get(site)
        return failpoint.fires if failpoint is not None else 0

    def schedule(self) -> List[dict]:
        """The fault schedule: every firing, in order, as plain dicts.

        With only seeded policies armed, the schedule is a deterministic
        function of (registry seed, per-site hit sequences) — two runs of
        the same single-threaded workload produce identical schedules, which
        is the reproducibility contract the fault-storm stress asserts.
        """
        with self._lock:
            return [fault.as_dict() for fault in self._schedule]

    def stats(self) -> Dict[str, object]:
        """Per-site hit/fire counters plus the schedule length."""
        with self._lock:
            sites = {
                name: {
                    "spec": f"{fp.policy.describe()}:{fp.action.describe()}",
                    "hits": fp.hits,
                    "fires": fp.fires,
                }
                for name, fp in sorted(self._sites.items())
            }
            return {"armed": sites, "fired_total": len(self._schedule)}
