"""Trigger policies and fault actions for the failpoint subsystem.

A failpoint spec is a compact string ``"<policy>:<action>"``:

======================  =====================================================
policy                  fires on
======================  =====================================================
``always``              every hit
``once``                the first hit only
``nth(N)``              hit number N only (1-based)
``every(K)``            hits K, 2K, 3K, ...
``times(N)``            the first N hits (models a transient error burst)
``prob(P[,SEED])``      each hit independently with probability P, drawn
                        from a seeded RNG — the set of firing hit indices is
                        a pure function of (P, seed), which is what makes a
                        fault *schedule* reproducible
======================  =====================================================

======================  =====================================================
action                  effect at the site
======================  =====================================================
``error``               raise :class:`~repro.errors.InjectedFaultError`
``error(NAME)``         same, tagged with an errno name (e.g. ``ENOSPC``)
``torn``                at write sites: write only a prefix of the payload,
                        then raise (a short/partial write *reported* to the
                        caller — the repairable kind); ``torn(F)`` cuts at
                        fraction F of the payload (default 0.5)
``crash``               raise :class:`~repro.errors.SimulatedCrashError` —
                        never retried, never repaired: the on-disk state is
                        left exactly as a power cut at that instant would;
                        ``crash(F)`` additionally persists fraction F of the
                        payload first (a torn write the process never got to
                        see — the unrepairable kind)
======================  =====================================================

Examples: ``"times(2):error"`` (two transient failures, then healthy),
``"once:torn(0.25)"`` (one torn write at a quarter of the payload),
``"prob(0.05,42):crash"`` (seeded random crash schedule).
"""

from __future__ import annotations

import errno as _errno
import random
import re
from dataclasses import dataclass
from typing import Optional

from repro.errors import InjectedFaultError, SimulatedCrashError

__all__ = [
    "FaultAction",
    "FiredFault",
    "TriggerPolicy",
    "parse_spec",
]


class TriggerPolicy:
    """Decides, per hit, whether a failpoint fires.

    ``should_fire`` is called with the 1-based hit index, under the owning
    failpoint's lock — implementations need no synchronisation of their own.
    """

    def should_fire(self, hit: int) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class _Always(TriggerPolicy):
    def should_fire(self, hit: int) -> bool:
        return True

    def describe(self) -> str:
        return "always"


class _Nth(TriggerPolicy):
    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("nth(N) needs N >= 1")
        self.n = n

    def should_fire(self, hit: int) -> bool:
        return hit == self.n

    def describe(self) -> str:
        return f"nth({self.n})"


class _Every(TriggerPolicy):
    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("every(K) needs K >= 1")
        self.k = k

    def should_fire(self, hit: int) -> bool:
        return hit % self.k == 0

    def describe(self) -> str:
        return f"every({self.k})"


class _Times(TriggerPolicy):
    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("times(N) needs N >= 1")
        self.n = n

    def should_fire(self, hit: int) -> bool:
        return hit <= self.n

    def describe(self) -> str:
        return f"times({self.n})"


class _Probabilistic(TriggerPolicy):
    """Seeded per-hit coin flip.

    One RNG draw happens per hit regardless of the outcome, so the sequence
    of firing hit indices depends only on ``(p, seed)`` — not on wall-clock,
    thread identity, or anything else about the run.
    """

    def __init__(self, p: float, seed: int) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError("prob(P) needs 0 <= P <= 1")
        self.p = p
        self.seed = seed
        self._rng = random.Random(seed)

    def should_fire(self, hit: int) -> bool:
        return self._rng.random() < self.p

    def describe(self) -> str:
        return f"prob({self.p},{self.seed})"


@dataclass(frozen=True)
class FaultAction:
    """What happens when a failpoint fires."""

    kind: str  # "error" | "torn" | "crash"
    errno_name: Optional[str] = None
    #: Payload fraction persisted before raising (torn always has one;
    #: crash has one only for ``crash(F)``; plain errors have none).
    fraction: Optional[float] = None

    def describe(self) -> str:
        if self.kind == "error" and self.errno_name:
            return f"error({self.errno_name})"
        if self.fraction is not None:
            return f"{self.kind}({self.fraction})"
        return self.kind


@dataclass(frozen=True)
class FiredFault:
    """One firing of a failpoint, handed to the site that hit it.

    Plain-``error`` and ``crash`` actions are fully handled by
    :meth:`raise_fault`; ``torn`` actions additionally ask the site to write
    only ``cut(len(payload))`` bytes before raising — partial writes are a
    property of the site, not of the registry.
    """

    site: str
    hit: int
    action: FaultAction

    @property
    def is_torn(self) -> bool:
        """Whether the site should persist a payload prefix before raising."""
        return self.action.fraction is not None

    def cut(self, length: int) -> int:
        """Bytes of an ``length``-byte payload a torn write should persist."""
        fraction = self.action.fraction or 0.0
        return max(0, min(length - 1, int(length * fraction)))

    def to_exception(self) -> InjectedFaultError:
        message = (
            f"injected fault at failpoint {self.site!r} "
            f"(hit {self.hit}, action {self.action.describe()})"
        )
        if self.action.kind == "crash":
            return SimulatedCrashError(message, site=self.site, hit=self.hit)
        exc = InjectedFaultError(message, site=self.site, hit=self.hit)
        if self.action.errno_name:
            exc.errno = getattr(_errno, self.action.errno_name, None)
        return exc

    def raise_fault(self) -> None:
        """Raise the injected error (the common site idiom for non-torn)."""
        raise self.to_exception()

    def as_dict(self) -> dict:
        return {"site": self.site, "hit": self.hit, "action": self.action.describe()}


_POLICY_RE = re.compile(r"^(?P<name>[a-z]+)(?:\((?P<args>[^)]*)\))?$")


def _parse_policy(text: str, default_seed: int) -> TriggerPolicy:
    match = _POLICY_RE.match(text.strip())
    if match is None:
        raise ValueError(f"unparsable trigger policy {text!r}")
    name, args = match.group("name"), match.group("args")
    if name == "always":
        return _Always()
    if name == "once":
        return _Nth(1)
    if name == "nth":
        return _Nth(int(args))
    if name == "every":
        return _Every(int(args))
    if name == "times":
        return _Times(int(args))
    if name == "prob":
        parts = [part.strip() for part in (args or "").split(",") if part.strip()]
        if not parts:
            raise ValueError("prob(P[,SEED]) needs a probability")
        p = float(parts[0])
        seed = int(parts[1]) if len(parts) > 1 else default_seed
        return _Probabilistic(p, seed)
    raise ValueError(
        f"unknown trigger policy {name!r}; expected one of: "
        "always, once, nth(N), every(K), times(N), prob(P[,SEED])"
    )


def _parse_action(text: str) -> FaultAction:
    match = _POLICY_RE.match(text.strip())
    if match is None:
        raise ValueError(f"unparsable fault action {text!r}")
    name, args = match.group("name"), match.group("args")
    if name == "error":
        errno_name = (args or "").strip() or None
        if errno_name is not None and not hasattr(_errno, errno_name):
            raise ValueError(f"unknown errno name {errno_name!r} in fault action")
        return FaultAction("error", errno_name=errno_name)
    if name in ("torn", "crash"):
        if args:
            fraction = float(args)
            if not 0.0 <= fraction < 1.0:
                raise ValueError(f"{name}(F) needs 0 <= F < 1")
        else:
            fraction = 0.5 if name == "torn" else None
        return FaultAction(name, fraction=fraction)
    raise ValueError(
        f"unknown fault action {name!r}; expected one of: "
        "error, error(ERRNO), torn, torn(F), crash, crash(F)"
    )


def parse_spec(spec: str, *, default_seed: int = 0) -> tuple:
    """Parse ``"<policy>:<action>"`` into ``(TriggerPolicy, FaultAction)``."""
    if ":" not in spec:
        raise ValueError(
            f"failpoint spec {spec!r} must look like '<policy>:<action>', "
            "e.g. 'times(2):error' or 'once:torn(0.5)'"
        )
    policy_text, action_text = spec.split(":", 1)
    return _parse_policy(policy_text, default_seed), _parse_action(action_text)
