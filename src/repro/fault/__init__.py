"""Deterministic fault injection for the durability path.

The subsystem has two halves:

* :mod:`repro.fault.policies` — trigger policies (``always``, ``once``,
  ``nth(N)``, ``every(K)``, ``times(N)``, seeded ``prob(P)``) and fault
  actions (``error``, ``torn``, ``crash``) with a compact spec syntax, and
* :mod:`repro.fault.registry` — the :class:`FailpointRegistry` mapping named
  injection sites (``wal.fsync``, ``store.checkpoint``, ``commit.publish``,
  ...) to armed specs, recording every firing into a reproducible fault
  schedule.

Open a database with injection enabled::

    db = GraphDatabase.open(path, failpoints={"wal.fsync": "times(2):error"})
    db.failpoints.arm("store.checkpoint", "once:crash")

or, for CI, via ``REPRO_FAILPOINTS="wal.fsync=times(2):error"``.  A database
opened without either carries ``failpoints=None`` through every component —
the sites are genuine no-ops on the hot path.
"""

from repro.fault.policies import FaultAction, FiredFault, TriggerPolicy, parse_spec
from repro.fault.registry import (
    FAILPOINT_SITES,
    FAILPOINTS_ENV_VAR,
    FailpointRegistry,
)

__all__ = [
    "FAILPOINT_SITES",
    "FAILPOINTS_ENV_VAR",
    "FailpointRegistry",
    "FaultAction",
    "FiredFault",
    "TriggerPolicy",
    "parse_spec",
]
