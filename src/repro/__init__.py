"""Snapshot isolation for a Neo4j-like graph database.

Reproduction of *"Snapshot Isolation for Neo4j"* (Patiño-Martínez et al.,
EDBT 2016): a Python graph database with Neo4j's storage architecture (record
stores, page cache, object cache, label/property indexes, lock manager) and
two interchangeable transaction engines — Neo4j's stock read-committed
locking and the paper's multi-version snapshot isolation.

Quickstart::

    from repro import GraphDatabase, IsolationLevel

    db = GraphDatabase.in_memory(isolation=IsolationLevel.SNAPSHOT)
    with db.transaction() as tx:
        alice = tx.create_node(labels=["Person"], properties={"name": "Alice"})
        bob = tx.create_node(labels=["Person"], properties={"name": "Bob"})
        tx.create_relationship(alice, bob, "KNOWS", {"since": 2016})

    with db.transaction(read_only=True) as tx:
        for node in tx.find_nodes(label="Person"):
            print(node["name"])
"""

from repro.api.database import GraphDatabase
from repro.api.session import Session
from repro.api.transaction import Node, Relationship, Transaction
from repro.api.traversal import Path, TraversalDescription, shortest_path
from repro.core.conflict import ConflictPolicy
from repro.engine import IsolationLevel
from repro.errors import (
    ConstraintViolationError,
    DatabaseReadOnlyError,
    DeadlockError,
    DegradedModeError,
    EntityNotFoundError,
    LockTimeoutError,
    NodeNotFoundError,
    RelationshipNotFoundError,
    ReproError,
    SerializationError,
    UnsafeSnapshotError,
    TransactionAbortedError,
    WriteWriteConflictError,
)
from repro.fault import FailpointRegistry
from repro.graph.entity import Direction
from repro.query.result import QueryResult, QueryStatistics, Record

__version__ = "1.0.0"

__all__ = [
    "ConflictPolicy",
    "ConstraintViolationError",
    "DatabaseReadOnlyError",
    "DeadlockError",
    "DegradedModeError",
    "Direction",
    "EntityNotFoundError",
    "FailpointRegistry",
    "GraphDatabase",
    "IsolationLevel",
    "LockTimeoutError",
    "Node",
    "NodeNotFoundError",
    "Path",
    "QueryResult",
    "QueryStatistics",
    "Record",
    "Relationship",
    "RelationshipNotFoundError",
    "ReproError",
    "SerializationError",
    "Session",
    "UnsafeSnapshotError",
    "Transaction",
    "TransactionAbortedError",
    "TraversalDescription",
    "WriteWriteConflictError",
    "shortest_path",
    "__version__",
]
