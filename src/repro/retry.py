"""Shared retry/backoff primitives.

This module sits below every other layer (it imports nothing from the
package) so that both the API layer (:meth:`GraphDatabase.run_transaction`)
and the storage layer (the write-ahead log's transient-IO retry loop) can use
the same backoff discipline without creating an import cycle.
"""

from __future__ import annotations

import random
from typing import Optional

#: Default number of retries for a transient IO error on the durability path
#: (``retries + 1`` attempts in total).  Sized for blips — a saturated disk,
#: a transient EINTR/EIO — not outages: an error persisting past the budget
#: is treated as unrecoverable and degrades the engine to read-only.
DEFAULT_IO_RETRIES = 3

#: Backoff bounds for IO retries.  Much tighter than the transaction-conflict
#: bounds: committers are holding commit stripes while the WAL retries, so a
#: long sleep here would stall the whole commit pipeline.
IO_RETRY_BASE_SECONDS = 0.001
IO_RETRY_MAX_SECONDS = 0.05


def jittered_backoff(
    attempt: int,
    *,
    base_seconds: float = 0.002,
    max_seconds: float = 0.25,
    rng: Optional[random.Random] = None,
) -> float:
    """Delay before retry ``attempt`` (0-based): exponential with equal jitter.

    Retrying transactions that aborted on the same conflict at the same
    cadence just re-collides them; the uniform draw over ``[cap/2, cap]``
    (the "equal jitter" scheme) de-synchronises the contenders while still
    guaranteeing a minimum gap for the winner to finish committing.  Shared
    by :meth:`GraphDatabase.run_transaction`, the workload runner and the
    write-ahead log's transient-IO retry loop.
    """
    cap = min(max_seconds, base_seconds * (2 ** attempt))
    draw = rng.random() if rng is not None else random.random()
    return cap * (0.5 + 0.5 * draw)
