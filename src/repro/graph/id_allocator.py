"""Record id allocation with free-list reuse.

Every record store owns an :class:`IdAllocator`.  Ids grow monotonically from
a high-water mark, and ids freed by deletes are recycled (like Neo4j's ``.id``
files).  Allocators are rebuilt on startup by scanning the store for records
that are in use, so they are not persisted separately.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Iterable, Set


class IdAllocator:
    """Thread-safe allocator of dense integer ids with reuse of freed ids.

    Reuse can be disabled (``reuse=False``); the multi-version engine does
    this for node and relationship ids so that an id is never recycled while
    old versions of the deleted entity may still be read by an open snapshot.
    """

    def __init__(self, first_id: int = 0, *, reuse: bool = True) -> None:
        if first_id < 0:
            raise ValueError("first_id must be non-negative")
        self._lock = threading.Lock()
        self._first_id = first_id
        self._next_id = first_id
        self._reuse = reuse
        self._free: Deque[int] = deque()
        self._free_set: Set[int] = set()

    def allocate(self) -> int:
        """Return an unused id, preferring recycled ids over new ones."""
        with self._lock:
            if self._free:
                recycled = self._free.popleft()
                self._free_set.discard(recycled)
                return recycled
            allocated = self._next_id
            self._next_id += 1
            return allocated

    def allocate_many(self, count: int) -> list:
        """Allocate ``count`` ids at once (used by bulk loaders)."""
        return [self.allocate() for _ in range(count)]

    def free(self, record_id: int) -> None:
        """Mark ``record_id`` as reusable.  Double frees are ignored."""
        with self._lock:
            if not self._reuse:
                return
            if record_id < self._first_id or record_id >= self._next_id:
                return
            if record_id in self._free_set:
                return
            self._free.append(record_id)
            self._free_set.add(record_id)

    def mark_used(self, record_id: int) -> None:
        """Record that ``record_id`` is in use (during startup scans)."""
        with self._lock:
            if record_id >= self._next_id:
                self._next_id = record_id + 1
            if record_id in self._free_set:
                self._free_set.discard(record_id)
                self._free = deque(i for i in self._free if i != record_id)

    def rebuild(self, used_ids: Iterable[int]) -> None:
        """Reset the allocator from the set of ids currently in use.

        Gaps below the high-water mark become the free list, preserving the
        invariant that :meth:`allocate` never hands out an id that is in use.
        """
        used = set(used_ids)
        with self._lock:
            high_water = max(used) + 1 if used else self._first_id
            self._next_id = high_water
            if not self._reuse:
                self._free = deque()
                self._free_set = set()
                return
            free_ids = [
                record_id
                for record_id in range(self._first_id, high_water)
                if record_id not in used
            ]
            self._free = deque(free_ids)
            self._free_set = set(free_ids)

    @property
    def high_water_mark(self) -> int:
        """One past the largest id ever allocated."""
        with self._lock:
            return self._next_id

    @property
    def free_count(self) -> int:
        """Number of ids currently waiting for reuse."""
        with self._lock:
            return len(self._free)

    def in_use_estimate(self) -> int:
        """Approximate number of live ids (high-water mark minus free list)."""
        with self._lock:
            return (self._next_id - self._first_id) - len(self._free)
