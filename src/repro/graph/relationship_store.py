"""Relationship store: fixed-size relationship records.

Each record stores the source and destination node ids (Section 2 of the
paper) plus the four chain pointers that thread the relationship into the
relationship chains of both endpoints, which is how Neo4j answers "give me the
relationships of this node" without an index.
"""

from __future__ import annotations

import threading
from typing import Iterator

from repro.graph.id_allocator import IdAllocator
from repro.graph.paging import PagedFile
from repro.graph.records import RelationshipRecord, RecordStore


class RelationshipStore:
    """Typed wrapper around the relationship record file."""

    def __init__(
        self,
        paged_file: PagedFile,
        store_name: str = "relationship",
        *,
        reuse_ids: bool = True,
    ) -> None:
        self._records: RecordStore[RelationshipRecord] = RecordStore(
            paged_file, RelationshipRecord, store_name
        )
        self._allocator = IdAllocator(reuse=reuse_ids)
        self._lock = threading.RLock()
        self._allocator.rebuild(self._records.used_ids())

    @property
    def name(self) -> str:
        """Store name used in diagnostics."""
        return self._records.name

    # -- id management -------------------------------------------------------

    def allocate_id(self) -> int:
        """Reserve a relationship id."""
        return self._allocator.allocate()

    def free_id(self, rel_id: int) -> None:
        """Return a relationship id to the allocator."""
        self._allocator.free(rel_id)

    def mark_id_used(self, rel_id: int) -> None:
        """Tell the allocator an externally chosen id is in use (WAL replay)."""
        self._allocator.mark_used(rel_id)

    def high_water_mark(self) -> int:
        """One past the largest relationship id ever written."""
        return self._records.high_water_mark()

    # -- record access -------------------------------------------------------

    def read(self, rel_id: int) -> RelationshipRecord:
        """Read the raw record for ``rel_id``."""
        return self._records.read(rel_id)

    def write(self, rel_id: int, record: RelationshipRecord) -> None:
        """Write the raw record for ``rel_id``."""
        self._records.write(rel_id, record)

    def exists(self, rel_id: int) -> bool:
        """Whether the slot for ``rel_id`` is in use."""
        if rel_id < 0 or rel_id >= self._records.high_water_mark():
            return False
        return self._records.read(rel_id).in_use

    def delete(self, rel_id: int) -> None:
        """Clear the record slot (chain unlinking is done by the store manager)."""
        self._records.mark_not_in_use(rel_id)
        self._allocator.free(rel_id)

    def iter_used_ids(self) -> Iterator[int]:
        """Yield every relationship id whose record is in use, in id order."""
        return self._records.iter_used_ids()

    def count(self) -> int:
        """Number of in-use relationship records (linear scan)."""
        return self._records.count_in_use()

    # -- lifecycle -------------------------------------------------------------

    def flush(self) -> None:
        """Flush relationship records."""
        self._records.flush()

    def close(self) -> None:
        """Close the relationship record file."""
        self._records.close()
