"""Startup recovery helpers and store consistency checking.

Write-ahead-log replay itself lives in
:meth:`repro.graph.store_manager.StoreManager._recover` (it runs automatically
when a store is opened).  This module provides the complementary tool: a
consistency checker that walks the record files and verifies the structural
invariants the store manager is supposed to maintain — useful in tests, after
crash-recovery scenarios, and as a debugging aid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.graph.records import NULL_REF
from repro.graph.store_manager import StoreManager


@dataclass
class ConsistencyReport:
    """Outcome of a store consistency check."""

    errors: List[str] = field(default_factory=list)
    nodes_checked: int = 0
    relationships_checked: int = 0

    @property
    def consistent(self) -> bool:
        """True when no structural problems were found."""
        return not self.errors

    def add_error(self, message: str) -> None:
        """Record one structural problem."""
        self.errors.append(message)


class ConsistencyChecker:
    """Verifies the structural invariants of a persistent graph store.

    Checks performed:

    * every relationship's endpoints are in-use nodes,
    * every relationship is reachable from both of its endpoints' chains,
    * every relationship chain only contains relationships that touch the
      chain's node, and
    * property and label chains of in-use entities decode without errors.
    """

    def __init__(self, store: StoreManager) -> None:
        self._store = store

    def check(self) -> ConsistencyReport:
        """Run all checks and return a report."""
        report = ConsistencyReport()
        self._check_relationships(report)
        self._check_nodes(report)
        return report

    def _check_relationships(self, report: ConsistencyReport) -> None:
        store = self._store
        for rel_id in store.iter_relationship_ids():
            report.relationships_checked += 1
            record = store.relationships.read(rel_id)
            for node_id in {record.start_node, record.end_node}:
                if not store.nodes.exists(node_id):
                    report.add_error(
                        f"relationship {rel_id} references missing node {node_id}"
                    )
                    continue
                chain = store.node_relationship_ids(node_id)
                if rel_id not in chain:
                    report.add_error(
                        f"relationship {rel_id} is not in the chain of node {node_id}"
                    )
            try:
                store.read_relationship(rel_id)
            except Exception as exc:  # noqa: BLE001 - report, do not crash
                report.add_error(f"relationship {rel_id} cannot be decoded: {exc}")

    def _check_nodes(self, report: ConsistencyReport) -> None:
        store = self._store
        for node_id in store.iter_node_ids():
            report.nodes_checked += 1
            try:
                chain = store.node_relationship_ids(node_id)
            except Exception as exc:  # noqa: BLE001 - report, do not crash
                report.add_error(f"node {node_id} has a broken relationship chain: {exc}")
                continue
            for rel_id in chain:
                record = store.relationships.read(rel_id)
                if not record.in_use:
                    report.add_error(
                        f"node {node_id} chain references unused relationship {rel_id}"
                    )
                elif node_id not in (record.start_node, record.end_node):
                    report.add_error(
                        f"node {node_id} chain contains foreign relationship {rel_id}"
                    )
            record = store.nodes.read(node_id)
            if record.first_rel != NULL_REF and not store.relationships.exists(record.first_rel):
                report.add_error(
                    f"node {node_id} first_rel points at missing relationship "
                    f"{record.first_rel}"
                )
            try:
                store.read_node(node_id)
            except Exception as exc:  # noqa: BLE001 - report, do not crash
                report.add_error(f"node {node_id} cannot be decoded: {exc}")


def check_store(store: StoreManager) -> ConsistencyReport:
    """Convenience wrapper: run a full consistency check on ``store``."""
    return ConsistencyChecker(store).check()
