"""Startup recovery helpers and store consistency checking.

Write-ahead-log replay itself lives in
:meth:`repro.graph.store_manager.StoreManager._recover` (it runs automatically
when a store is opened).  This module provides the complementary tools:

* the *checkpoint marker* — a tiny metadata file updated crash-atomically
  (write-temp + ``os.replace``) as the last step of every checkpoint before
  the WAL is truncated.  Recovery does not strictly need it (WAL replay is
  idempotent), but it records the checkpoint generation and lets operators
  and tests confirm which checkpoint a directory is at; and
* a consistency checker that walks the record files and verifies the
  structural invariants the store manager is supposed to maintain — useful in
  tests, after crash-recovery scenarios, and as a debugging aid.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.graph.records import NULL_REF

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.store_manager import StoreManager

#: File name of the checkpoint marker inside a database directory.
CHECKPOINT_MARKER = "checkpoint.meta"
_MARKER_TMP = CHECKPOINT_MARKER + ".tmp"


def write_checkpoint_marker(
    directory: str, generation: int, *, failpoints=None
) -> None:
    """Crash-atomically persist the checkpoint marker for ``directory``.

    The marker is written to a temp file, fsynced, then ``os.replace``d over
    the real name — a crash at any instant leaves either the old marker or
    the new one, never a torn file.  The ``checkpoint.marker`` failpoint
    fires before any byte is written (so an injected crash leaves the
    previous marker intact, exactly like a real power cut before the write).
    """
    if failpoints is not None:
        fault = failpoints.hit("checkpoint.marker")
        if fault is not None:
            fault.raise_fault()
    payload = json.dumps({"generation": generation}, sort_keys=True).encode("utf-8")
    tmp_path = os.path.join(directory, _MARKER_TMP)
    final_path = os.path.join(directory, CHECKPOINT_MARKER)
    fd = os.open(tmp_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, payload)
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp_path, final_path)


def read_checkpoint_marker(directory: str) -> Optional[Dict[str, Any]]:
    """Read the checkpoint marker, tolerating absence and corruption.

    A missing or unparsable marker returns ``None`` (a crash before the
    first checkpoint, or mid-replace on filesystems without atomic rename,
    simply means "no checkpoint recorded").  A stale temp file from a crash
    mid-write is cleaned up on the way through.
    """
    tmp_path = os.path.join(directory, _MARKER_TMP)
    try:
        os.unlink(tmp_path)
    except OSError:
        pass
    final_path = os.path.join(directory, CHECKPOINT_MARKER)
    try:
        with open(final_path, "rb") as handle:
            data = handle.read()
    except OSError:
        return None
    try:
        marker = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(marker, dict):
        return None
    return marker


@dataclass
class ConsistencyReport:
    """Outcome of a store consistency check."""

    errors: List[str] = field(default_factory=list)
    nodes_checked: int = 0
    relationships_checked: int = 0

    @property
    def consistent(self) -> bool:
        """True when no structural problems were found."""
        return not self.errors

    def add_error(self, message: str) -> None:
        """Record one structural problem."""
        self.errors.append(message)


class ConsistencyChecker:
    """Verifies the structural invariants of a persistent graph store.

    Checks performed:

    * every relationship's endpoints are in-use nodes,
    * every relationship is reachable from both of its endpoints' chains,
    * every relationship chain only contains relationships that touch the
      chain's node, and
    * property and label chains of in-use entities decode without errors.
    """

    def __init__(self, store: StoreManager) -> None:
        self._store = store

    def check(self) -> ConsistencyReport:
        """Run all checks and return a report."""
        report = ConsistencyReport()
        self._check_relationships(report)
        self._check_nodes(report)
        return report

    def _check_relationships(self, report: ConsistencyReport) -> None:
        store = self._store
        for rel_id in store.iter_relationship_ids():
            report.relationships_checked += 1
            record = store.relationships.read(rel_id)
            for node_id in {record.start_node, record.end_node}:
                if not store.nodes.exists(node_id):
                    report.add_error(
                        f"relationship {rel_id} references missing node {node_id}"
                    )
                    continue
                chain = store.node_relationship_ids(node_id)
                if rel_id not in chain:
                    report.add_error(
                        f"relationship {rel_id} is not in the chain of node {node_id}"
                    )
            try:
                store.read_relationship(rel_id)
            except Exception as exc:  # noqa: BLE001 - report, do not crash
                report.add_error(f"relationship {rel_id} cannot be decoded: {exc}")

    def _check_nodes(self, report: ConsistencyReport) -> None:
        store = self._store
        for node_id in store.iter_node_ids():
            report.nodes_checked += 1
            try:
                chain = store.node_relationship_ids(node_id)
            except Exception as exc:  # noqa: BLE001 - report, do not crash
                report.add_error(f"node {node_id} has a broken relationship chain: {exc}")
                continue
            for rel_id in chain:
                record = store.relationships.read(rel_id)
                if not record.in_use:
                    report.add_error(
                        f"node {node_id} chain references unused relationship {rel_id}"
                    )
                elif node_id not in (record.start_node, record.end_node):
                    report.add_error(
                        f"node {node_id} chain contains foreign relationship {rel_id}"
                    )
            record = store.nodes.read(node_id)
            if record.first_rel != NULL_REF and not store.relationships.exists(record.first_rel):
                report.add_error(
                    f"node {node_id} first_rel points at missing relationship "
                    f"{record.first_rel}"
                )
            try:
                store.read_node(node_id)
            except Exception as exc:  # noqa: BLE001 - report, do not crash
                report.add_error(f"node {node_id} cannot be decoded: {exc}")


def check_store(store: StoreManager) -> ConsistencyReport:
    """Convenience wrapper: run a full consistency check on ``store``."""
    return ConsistencyChecker(store).check()
