"""Page cache and paged files.

Neo4j accesses its store files through a page cache; the reproduction does the
same so that store reads and writes have realistic locality behaviour and so
that the write-ahead log has a meaningful "checkpoint = flush dirty pages"
step.

Two byte-level backends are provided:

* :class:`InMemoryBackend` — a growable ``bytearray``; used when the database
  is opened without a path (unit tests, benchmarks that should not touch
  disk).
* :class:`FileBackend` — a real file opened with ``os.open``.

:class:`PageCache` is a shared LRU cache of fixed-size pages keyed by
``(file_id, page_number)``.  :class:`PagedFile` exposes byte-range reads and
writes on top of it, transparently spanning page boundaries.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import StoreClosedError

#: Default page size in bytes.  Small enough that unit tests exercise multi-page
#: files, large enough to be realistic.
DEFAULT_PAGE_SIZE = 4096

#: Default number of pages held by a page cache (4096 pages * 4 KiB = 16 MiB).
DEFAULT_PAGE_CAPACITY = 4096


class ByteBackend:
    """Abstract random-access byte storage underneath a paged file."""

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset``; short reads are zero-padded."""
        raise NotImplementedError

    def write(self, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset``, growing the backend if needed."""
        raise NotImplementedError

    def size(self) -> int:
        """Current size in bytes."""
        raise NotImplementedError

    def truncate(self, size: int) -> None:
        """Shrink or grow the backend to exactly ``size`` bytes."""
        raise NotImplementedError

    def sync(self) -> None:
        """Flush to durable storage (no-op for memory backends)."""

    def close(self) -> None:
        """Release resources."""


class InMemoryBackend(ByteBackend):
    """Byte storage held entirely in a ``bytearray``."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._closed = False

    def read(self, offset: int, length: int) -> bytes:
        self._check_open()
        chunk = bytes(self._buffer[offset:offset + length])
        if len(chunk) < length:
            chunk += b"\x00" * (length - len(chunk))
        return chunk

    def write(self, offset: int, data: bytes) -> None:
        self._check_open()
        end = offset + len(data)
        if end > len(self._buffer):
            self._buffer.extend(b"\x00" * (end - len(self._buffer)))
        self._buffer[offset:end] = data

    def size(self) -> int:
        self._check_open()
        return len(self._buffer)

    def truncate(self, size: int) -> None:
        self._check_open()
        if size < len(self._buffer):
            del self._buffer[size:]
        else:
            self._buffer.extend(b"\x00" * (size - len(self._buffer)))

    def close(self) -> None:
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("in-memory backend is closed")


class FileBackend(ByteBackend):
    """Byte storage backed by a file on disk."""

    def __init__(self, path: str) -> None:
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._path = path
        self._fd: Optional[int] = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        self._lock = threading.Lock()

    @property
    def path(self) -> str:
        """Path of the underlying file."""
        return self._path

    def read(self, offset: int, length: int) -> bytes:
        with self._lock:
            fd = self._require_fd()
            chunk = os.pread(fd, length, offset)
        if len(chunk) < length:
            chunk += b"\x00" * (length - len(chunk))
        return chunk

    def write(self, offset: int, data: bytes) -> None:
        with self._lock:
            fd = self._require_fd()
            os.pwrite(fd, data, offset)

    def size(self) -> int:
        with self._lock:
            fd = self._require_fd()
            return os.fstat(fd).st_size

    def truncate(self, size: int) -> None:
        with self._lock:
            fd = self._require_fd()
            os.ftruncate(fd, size)

    def sync(self) -> None:
        with self._lock:
            fd = self._require_fd()
            os.fsync(fd)

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def _require_fd(self) -> int:
        if self._fd is None:
            raise StoreClosedError(f"file backend {self._path} is closed")
        return self._fd


@dataclass
class PageCacheStats:
    """Counters exposed by :class:`PageCache` for observability and tests."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    flushes: int = 0
    page_writes: int = 0

    def hit_ratio(self) -> float:
        """Fraction of page lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by database statistics endpoints."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "flushes": self.flushes,
            "page_writes": self.page_writes,
            "hit_ratio": self.hit_ratio(),
        }


class PageCache:
    """A shared LRU cache of fixed-size pages.

    Pages are keyed by ``(file_id, page_number)``.  Dirty pages are written
    back to their backend on eviction and on :meth:`flush`.
    """

    def __init__(
        self,
        capacity_pages: int = DEFAULT_PAGE_CAPACITY,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> None:
        if capacity_pages < 1:
            raise ValueError("page cache capacity must be at least one page")
        self._capacity = capacity_pages
        self._page_size = page_size
        self._lock = threading.RLock()
        self._pages: "OrderedDict[Tuple[int, int], bytearray]" = OrderedDict()
        self._dirty: Dict[Tuple[int, int], bool] = {}
        self._backends: Dict[int, ByteBackend] = {}
        self._next_file_id = 0
        self.stats = PageCacheStats()

    @property
    def page_size(self) -> int:
        """Size in bytes of every cached page."""
        return self._page_size

    @property
    def capacity(self) -> int:
        """Maximum number of resident pages."""
        return self._capacity

    def register_backend(self, backend: ByteBackend) -> int:
        """Register a backend and return the file id used to key its pages."""
        with self._lock:
            file_id = self._next_file_id
            self._next_file_id += 1
            self._backends[file_id] = backend
            return file_id

    def unregister_backend(self, file_id: int) -> None:
        """Flush and drop every page belonging to ``file_id``."""
        with self._lock:
            self.flush_file(file_id)
            for key in [key for key in self._pages if key[0] == file_id]:
                del self._pages[key]
                self._dirty.pop(key, None)
            self._backends.pop(file_id, None)

    def read_page(self, file_id: int, page_no: int) -> bytes:
        """Return a copy of the page's bytes (loading it if necessary)."""
        with self._lock:
            page = self._get_page(file_id, page_no)
            return bytes(page)

    def write_into_page(
        self, file_id: int, page_no: int, offset_in_page: int, data: bytes
    ) -> None:
        """Write ``data`` into a page at ``offset_in_page`` and mark it dirty."""
        if offset_in_page + len(data) > self._page_size:
            raise ValueError("write spans past the end of the page")
        with self._lock:
            page = self._get_page(file_id, page_no)
            page[offset_in_page:offset_in_page + len(data)] = data
            self._dirty[(file_id, page_no)] = True
            self.stats.page_writes += 1

    def flush_file(self, file_id: int) -> int:
        """Write back every dirty page of one file; returns pages flushed."""
        with self._lock:
            flushed = 0
            for key, page in self._pages.items():
                if key[0] == file_id and self._dirty.get(key):
                    self._write_back(key, page)
                    flushed += 1
            return flushed

    def flush(self) -> int:
        """Write back every dirty page in the cache; returns pages flushed."""
        with self._lock:
            flushed = 0
            for key, page in self._pages.items():
                if self._dirty.get(key):
                    self._write_back(key, page)
                    flushed += 1
            return flushed

    def resident_pages(self) -> int:
        """Number of pages currently held in memory."""
        with self._lock:
            return len(self._pages)

    # -- internal helpers --------------------------------------------------

    def _get_page(self, file_id: int, page_no: int) -> bytearray:
        key = (file_id, page_no)
        page = self._pages.get(key)
        if page is not None:
            self._pages.move_to_end(key)
            self.stats.hits += 1
            return page
        self.stats.misses += 1
        backend = self._backends.get(file_id)
        if backend is None:
            raise StoreClosedError(f"no backend registered for file id {file_id}")
        raw = backend.read(page_no * self._page_size, self._page_size)
        page = bytearray(raw)
        self._pages[key] = page
        self._dirty[key] = False
        self._evict_if_needed()
        return page

    def _evict_if_needed(self) -> None:
        while len(self._pages) > self._capacity:
            key, page = self._pages.popitem(last=False)
            if self._dirty.get(key):
                self._write_back(key, page)
            self._dirty.pop(key, None)
            self.stats.evictions += 1

    def _write_back(self, key: Tuple[int, int], page: bytearray) -> None:
        file_id, page_no = key
        backend = self._backends.get(file_id)
        if backend is None:
            return
        backend.write(page_no * self._page_size, bytes(page))
        self._dirty[key] = False
        self.stats.flushes += 1


class PagedFile:
    """Byte-range reads and writes over a backend, going through a page cache."""

    def __init__(self, backend: ByteBackend, page_cache: PageCache) -> None:
        self._backend = backend
        self._cache = page_cache
        self._file_id = page_cache.register_backend(backend)
        self._lock = threading.RLock()
        self._size = backend.size()
        self._closed = False

    @property
    def backend(self) -> ByteBackend:
        """The raw byte backend (used by checkpointing to fsync)."""
        return self._backend

    def size(self) -> int:
        """Logical size in bytes (highest byte ever written + 1)."""
        with self._lock:
            return self._size

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``offset`` (zero padded past EOF)."""
        self._check_open()
        if length <= 0:
            return b""
        page_size = self._cache.page_size
        chunks = []
        remaining = length
        position = offset
        while remaining > 0:
            page_no, in_page = divmod(position, page_size)
            take = min(remaining, page_size - in_page)
            page = self._cache.read_page(self._file_id, page_no)
            chunks.append(page[in_page:in_page + take])
            position += take
            remaining -= take
        return b"".join(chunks)

    def write(self, offset: int, data: bytes) -> None:
        """Write ``data`` starting at ``offset`` (grows the file if needed)."""
        self._check_open()
        if not data:
            return
        page_size = self._cache.page_size
        position = offset
        index = 0
        while index < len(data):
            page_no, in_page = divmod(position, page_size)
            take = min(len(data) - index, page_size - in_page)
            self._cache.write_into_page(
                self._file_id, page_no, in_page, data[index:index + take]
            )
            position += take
            index += take
        with self._lock:
            self._size = max(self._size, offset + len(data))

    def flush(self) -> None:
        """Write back dirty pages and sync the backend."""
        self._check_open()
        self._cache.flush_file(self._file_id)
        self._backend.sync()

    def close(self) -> None:
        """Flush, unregister from the cache, and close the backend."""
        if self._closed:
            return
        self._cache.unregister_backend(self._file_id)
        self._backend.sync()
        self._backend.close()
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("paged file is closed")


def open_backend(path: Optional[str]) -> ByteBackend:
    """Open a file backend at ``path``, or an in-memory backend when ``None``."""
    if path is None:
        return InMemoryBackend()
    return FileBackend(path)
