"""Neo4j-like storage substrate.

This package reproduces the parts of the Neo4j architecture that the paper's
Section 2 describes and that the snapshot-isolation layer builds on:

* fixed-size record stores for nodes, relationships and properties
  (:mod:`repro.graph.records`, :mod:`repro.graph.node_store`,
  :mod:`repro.graph.relationship_store`, :mod:`repro.graph.property_store`),
* dynamic stores for values that do not fit in a fixed record
  (:mod:`repro.graph.dynamic_store`),
* a page cache (:mod:`repro.graph.paging`),
* a write-ahead log and recovery (:mod:`repro.graph.wal`,
  :mod:`repro.graph.recovery`),
* an object cache holding materialised entities — and, under snapshot
  isolation, their version chains (:mod:`repro.graph.object_cache`), and
* a :class:`~repro.graph.store_manager.StoreManager` facade that exposes the
  stores at the logical ``NodeData`` / ``RelationshipData`` level.
"""

from repro.graph.entity import (
    Direction,
    EntityKey,
    EntityKind,
    NodeData,
    RelationshipData,
)
from repro.graph.properties import validate_properties, validate_property_value
from repro.graph.tokens import TokenRegistry
from repro.graph.store_manager import StoreManager

__all__ = [
    "Direction",
    "EntityKey",
    "EntityKind",
    "NodeData",
    "RelationshipData",
    "StoreManager",
    "TokenRegistry",
    "validate_properties",
    "validate_property_value",
]
