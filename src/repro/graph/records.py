"""Fixed-size record formats and the generic record store.

Section 2 of the paper describes Neo4j's storage layout: "Nodes are kept in a
file whose position is determined by the node identifier", relationships live
in a second file and properties in a third.  This module defines the binary
record formats for those files and a generic :class:`RecordStore` that reads
and writes one record type through a :class:`~repro.graph.paging.PagedFile`.

Record layouts (little-endian):

``NodeRecord`` (32 bytes)
    ``in_use``, ``first_rel`` (head of the node's relationship chain),
    ``first_prop`` (head of the property chain), ``label_ref`` (dynamic-store
    chain holding the node's label token ids).

``RelationshipRecord`` (64 bytes)
    ``in_use``, ``start_node``, ``end_node``, ``type_id`` and the four chain
    pointers Neo4j uses to thread each relationship into the relationship
    chains of both of its endpoint nodes, plus ``first_prop``.

``PropertyRecord`` (32 bytes)
    ``in_use``, ``key_id``, ``value_type``, an 8-byte inline value slot (or a
    pointer into a dynamic store for long strings and arrays) and ``prev`` /
    ``next`` chain pointers.

``DynamicRecord`` (64 bytes)
    chained variable-length blocks used for long strings, arrays and label
    lists.

``TokenRecord`` (16 bytes)
    one interned token name, stored as a pointer into a dynamic store.
"""

from __future__ import annotations

import struct
import threading
from dataclasses import dataclass
from typing import Generic, Iterator, List, Optional, Type, TypeVar

from repro.errors import StoreCorruptionError
from repro.graph.paging import PagedFile

#: Null reference used by every chain pointer field.
NULL_REF = -1

#: Size in bytes of the per-store header written at offset zero.
STORE_HEADER_SIZE = 16

#: Magic number identifying a repro record store file.
STORE_MAGIC = b"RPRO"

#: On-disk format version, bumped when any record layout changes.
STORE_FORMAT_VERSION = 1


@dataclass
class NodeRecord:
    """One slot in the node store."""

    in_use: bool = False
    first_rel: int = NULL_REF
    first_prop: int = NULL_REF
    label_ref: int = NULL_REF

    FORMAT = "<Bqqq"
    RECORD_SIZE = 32

    def pack(self) -> bytes:
        data = struct.pack(
            self.FORMAT,
            1 if self.in_use else 0,
            self.first_rel,
            self.first_prop,
            self.label_ref,
        )
        return data.ljust(self.RECORD_SIZE, b"\x00")

    @classmethod
    def unpack(cls, data: bytes) -> "NodeRecord":
        try:
            in_use, first_rel, first_prop, label_ref = struct.unpack_from(
                cls.FORMAT, data
            )
        except struct.error as exc:
            raise StoreCorruptionError(f"cannot decode node record: {exc}") from exc
        return cls(
            in_use=bool(in_use),
            first_rel=first_rel,
            first_prop=first_prop,
            label_ref=label_ref,
        )


@dataclass
class RelationshipRecord:
    """One slot in the relationship store.

    ``start_prev`` / ``start_next`` link this record into the relationship
    chain of its start node; ``end_prev`` / ``end_next`` into the chain of its
    end node (for self-loops only the start-side pointers are used).
    """

    in_use: bool = False
    start_node: int = NULL_REF
    end_node: int = NULL_REF
    type_id: int = NULL_REF
    start_prev: int = NULL_REF
    start_next: int = NULL_REF
    end_prev: int = NULL_REF
    end_next: int = NULL_REF
    first_prop: int = NULL_REF

    FORMAT = "<Bqqiqqqqq"
    RECORD_SIZE = 64

    def pack(self) -> bytes:
        data = struct.pack(
            self.FORMAT,
            1 if self.in_use else 0,
            self.start_node,
            self.end_node,
            self.type_id,
            self.start_prev,
            self.start_next,
            self.end_prev,
            self.end_next,
            self.first_prop,
        )
        return data.ljust(self.RECORD_SIZE, b"\x00")

    @classmethod
    def unpack(cls, data: bytes) -> "RelationshipRecord":
        try:
            fields = struct.unpack_from(cls.FORMAT, data)
        except struct.error as exc:
            raise StoreCorruptionError(
                f"cannot decode relationship record: {exc}"
            ) from exc
        (
            in_use,
            start_node,
            end_node,
            type_id,
            start_prev,
            start_next,
            end_prev,
            end_next,
            first_prop,
        ) = fields
        return cls(
            in_use=bool(in_use),
            start_node=start_node,
            end_node=end_node,
            type_id=type_id,
            start_prev=start_prev,
            start_next=start_next,
            end_prev=end_prev,
            end_next=end_next,
            first_prop=first_prop,
        )


@dataclass
class PropertyRecord:
    """One slot in the property store (a link in an entity's property chain)."""

    in_use: bool = False
    key_id: int = NULL_REF
    value_type: int = 0
    inline_value: bytes = b"\x00" * 8
    prev_prop: int = NULL_REF
    next_prop: int = NULL_REF

    FORMAT = "<BiB8sqq"
    RECORD_SIZE = 32

    def pack(self) -> bytes:
        inline = self.inline_value.ljust(8, b"\x00")[:8]
        data = struct.pack(
            self.FORMAT,
            1 if self.in_use else 0,
            self.key_id,
            self.value_type,
            inline,
            self.prev_prop,
            self.next_prop,
        )
        return data.ljust(self.RECORD_SIZE, b"\x00")

    @classmethod
    def unpack(cls, data: bytes) -> "PropertyRecord":
        try:
            in_use, key_id, value_type, inline, prev_prop, next_prop = (
                struct.unpack_from(cls.FORMAT, data)
            )
        except struct.error as exc:
            raise StoreCorruptionError(
                f"cannot decode property record: {exc}"
            ) from exc
        return cls(
            in_use=bool(in_use),
            key_id=key_id,
            value_type=value_type,
            inline_value=inline,
            prev_prop=prev_prop,
            next_prop=next_prop,
        )


@dataclass
class DynamicRecord:
    """One block of a chained variable-length value."""

    in_use: bool = False
    length: int = 0
    next_block: int = NULL_REF
    payload: bytes = b""

    HEADER_FORMAT = "<BIq"
    RECORD_SIZE = 64
    PAYLOAD_SIZE = RECORD_SIZE - struct.calcsize(HEADER_FORMAT)

    def pack(self) -> bytes:
        payload = self.payload.ljust(self.PAYLOAD_SIZE, b"\x00")[: self.PAYLOAD_SIZE]
        header = struct.pack(
            self.HEADER_FORMAT,
            1 if self.in_use else 0,
            self.length,
            self.next_block,
        )
        return header + payload

    @classmethod
    def unpack(cls, data: bytes) -> "DynamicRecord":
        try:
            in_use, length, next_block = struct.unpack_from(cls.HEADER_FORMAT, data)
        except struct.error as exc:
            raise StoreCorruptionError(f"cannot decode dynamic record: {exc}") from exc
        header_size = struct.calcsize(cls.HEADER_FORMAT)
        payload = data[header_size:header_size + cls.PAYLOAD_SIZE][:length]
        if length > cls.PAYLOAD_SIZE:
            raise StoreCorruptionError(
                f"dynamic record claims {length} payload bytes, "
                f"maximum is {cls.PAYLOAD_SIZE}"
            )
        return cls(
            in_use=bool(in_use),
            length=length,
            next_block=next_block,
            payload=payload,
        )


@dataclass
class TokenRecord:
    """One interned token (label, relationship type or property key) name."""

    in_use: bool = False
    name_ref: int = NULL_REF

    FORMAT = "<Bq"
    RECORD_SIZE = 16

    def pack(self) -> bytes:
        data = struct.pack(self.FORMAT, 1 if self.in_use else 0, self.name_ref)
        return data.ljust(self.RECORD_SIZE, b"\x00")

    @classmethod
    def unpack(cls, data: bytes) -> "TokenRecord":
        try:
            in_use, name_ref = struct.unpack_from(cls.FORMAT, data)
        except struct.error as exc:
            raise StoreCorruptionError(f"cannot decode token record: {exc}") from exc
        return cls(in_use=bool(in_use), name_ref=name_ref)


RecordT = TypeVar(
    "RecordT", NodeRecord, RelationshipRecord, PropertyRecord, DynamicRecord, TokenRecord
)


class RecordStore(Generic[RecordT]):
    """A file of fixed-size records addressed by record id.

    The record id determines the byte offset directly — exactly the property
    of Neo4j's store files that Section 2 of the paper points out ("whose
    position is determined by the node identifier").
    """

    def __init__(
        self, paged_file: PagedFile, record_class: Type[RecordT], store_name: str
    ) -> None:
        self._file = paged_file
        self._record_class = record_class
        self._record_size: int = record_class.RECORD_SIZE
        self._name = store_name
        self._lock = threading.RLock()
        self._high_water = self._infer_high_water()
        self._ensure_header()

    @property
    def name(self) -> str:
        """Store name used in write-ahead log entries and error messages."""
        return self._name

    @property
    def record_size(self) -> int:
        """Size in bytes of one record slot."""
        return self._record_size

    def high_water_mark(self) -> int:
        """One past the highest record id ever written."""
        with self._lock:
            return self._high_water

    def read(self, record_id: int) -> RecordT:
        """Read the record at ``record_id`` (never-written slots read as not in use)."""
        if record_id < 0:
            raise ValueError(f"record id must be non-negative, got {record_id}")
        data = self._file.read(self._offset(record_id), self._record_size)
        return self._record_class.unpack(data)

    def write(self, record_id: int, record: RecordT) -> None:
        """Write ``record`` into slot ``record_id``."""
        if record_id < 0:
            raise ValueError(f"record id must be non-negative, got {record_id}")
        self._file.write(self._offset(record_id), record.pack())
        with self._lock:
            if record_id >= self._high_water:
                self._high_water = record_id + 1

    def mark_not_in_use(self, record_id: int) -> None:
        """Clear the in-use flag of a slot (the rest of the bytes are kept)."""
        record = self.read(record_id)
        record.in_use = False
        self.write(record_id, record)

    def iter_used_ids(self) -> Iterator[int]:
        """Yield every record id whose slot is marked in use."""
        for record_id in range(self.high_water_mark()):
            if self.read(record_id).in_use:
                yield record_id

    def iter_used_records(self) -> Iterator[tuple]:
        """Yield ``(record_id, record)`` for every in-use slot."""
        for record_id in range(self.high_water_mark()):
            record = self.read(record_id)
            if record.in_use:
                yield record_id, record

    def used_ids(self) -> List[int]:
        """All in-use record ids as a list (used to rebuild id allocators)."""
        return list(self.iter_used_ids())

    def count_in_use(self) -> int:
        """Number of in-use records (linear scan)."""
        return sum(1 for _ in self.iter_used_ids())

    def flush(self) -> None:
        """Flush the underlying paged file."""
        self._file.flush()

    def close(self) -> None:
        """Flush and close the underlying paged file."""
        self._file.close()

    # -- internal ----------------------------------------------------------

    def _offset(self, record_id: int) -> int:
        return STORE_HEADER_SIZE + record_id * self._record_size

    def _infer_high_water(self) -> int:
        size = self._file.size()
        if size <= STORE_HEADER_SIZE:
            return 0
        return (size - STORE_HEADER_SIZE + self._record_size - 1) // self._record_size

    def _ensure_header(self) -> None:
        header = self._file.read(0, STORE_HEADER_SIZE)
        if header[:4] == b"\x00\x00\x00\x00":
            fresh = struct.pack(
                "<4sII", STORE_MAGIC, STORE_FORMAT_VERSION, self._record_size
            ).ljust(STORE_HEADER_SIZE, b"\x00")
            self._file.write(0, fresh)
            return
        magic, version, record_size = struct.unpack_from("<4sII", header)
        if magic != STORE_MAGIC:
            raise StoreCorruptionError(
                f"store {self._name}: bad magic {magic!r}, expected {STORE_MAGIC!r}"
            )
        if version != STORE_FORMAT_VERSION:
            raise StoreCorruptionError(
                f"store {self._name}: format version {version} is not supported"
            )
        if record_size != self._record_size:
            raise StoreCorruptionError(
                f"store {self._name}: record size {record_size} on disk, "
                f"expected {self._record_size}"
            )
