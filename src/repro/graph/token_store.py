"""Token stores: persistence for label, relationship-type and property-key names.

Token ids are dense and equal to their record id, so rebuilding a
:class:`~repro.graph.tokens.TokenRegistry` is a single ordered scan of the
store.  Token names themselves live in a dynamic store because they are
variable length.
"""

from __future__ import annotations

import sys
import threading
from typing import List, Tuple

from repro.errors import StoreCorruptionError
from repro.graph.dynamic_store import DynamicStore
from repro.graph.paging import PagedFile
from repro.graph.records import NULL_REF, TokenRecord, RecordStore
from repro.graph.tokens import TokenRegistry


class TokenStore:
    """File of token records, one per interned name."""

    def __init__(
        self,
        paged_file: PagedFile,
        name_store: DynamicStore,
        store_name: str,
    ) -> None:
        self._records: RecordStore[TokenRecord] = RecordStore(
            paged_file, TokenRecord, store_name
        )
        self._names = name_store
        self._lock = threading.RLock()

    @property
    def name(self) -> str:
        """Store name used in diagnostics."""
        return self._records.name

    def create(self, token_id: int, token_name: str) -> None:
        """Persist a newly interned token.

        Token ids are dense, so ``token_id`` must be the next unused slot
        unless the token is being re-applied during write-ahead-log replay (in
        which case the existing record is simply overwritten with the same
        name).
        """
        with self._lock:
            name_ref = self._names.write_bytes(token_name.encode("utf-8"))
            record = TokenRecord(in_use=True, name_ref=name_ref)
            self._records.write(token_id, record)

    def load_all(self) -> List[Tuple[int, str]]:
        """Read back every token as ``(token_id, name)`` in id order."""
        tokens: List[Tuple[int, str]] = []
        with self._lock:
            for token_id, record in self._records.iter_used_records():
                if record.name_ref == NULL_REF:
                    raise StoreCorruptionError(
                        f"{self.name}: token {token_id} has no name reference"
                    )
                # Intern at the store boundary: a name read back from disk is
                # the same object as the one the registry hands out, so
                # property/label lookups hash and compare by identity.
                name = sys.intern(self._names.read_bytes(record.name_ref).decode("utf-8"))
                tokens.append((token_id, name))
        tokens.sort()
        return tokens

    def populate_registry(self, registry: TokenRegistry) -> None:
        """Load every persisted token into an empty registry."""
        for token_id, token_name in self.load_all():
            registry.load(token_id, token_name)

    def count(self) -> int:
        """Number of persisted tokens."""
        return self._records.count_in_use()

    def flush(self) -> None:
        """Flush token records."""
        self._records.flush()

    def close(self) -> None:
        """Close the token record file."""
        self._records.close()
