"""Property value model and validation.

Neo4j restricts property values to booleans, integers, floats, strings and
homogeneous arrays of those primitives; ``null`` is expressed by removing the
property.  The same rules apply here so that every value can be encoded into
the property store (:mod:`repro.graph.property_store`).

Property keys beginning with the reserved prefix ``"_si_"`` are used by the
snapshot-isolation layer for its bookkeeping (commit timestamp and tombstone
flag, exactly the two extra properties described in Section 4 of the paper)
and are rejected at the public API boundary.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, Iterable, List, Mapping, Tuple, Union

from repro.errors import InvalidPropertyValueError, ReservedNameError

#: Prefix reserved for internal bookkeeping properties added by the MVCC layer.
RESERVED_PROPERTY_PREFIX = "_si_"

#: Scalar property types accepted by the store.
ScalarValue = Union[bool, int, float, str]

#: Any property value accepted by the store.
PropertyValue = Union[ScalarValue, List[ScalarValue], Tuple[ScalarValue, ...]]

_SCALAR_TYPES = (bool, int, float, str)

# Integers must fit in a signed 64-bit slot in the property record.
_INT_MIN = -(2 ** 63)
_INT_MAX = 2 ** 63 - 1


def validate_property_key(key: Any, *, allow_reserved: bool = False) -> str:
    """Validate a property key and return its canonical (interned) form.

    Keys must be non-empty strings.  Keys using the internal prefix are
    rejected unless ``allow_reserved`` is set (only the MVCC layer does that).
    The returned key is interned so that every property map built through
    validation shares one string object per spelling with the token
    registries — hot-path dict lookups then hash and compare by identity.
    """
    if not isinstance(key, str):
        raise InvalidPropertyValueError(
            f"property keys must be strings, got {type(key).__name__}"
        )
    if not key:
        raise InvalidPropertyValueError("property keys must be non-empty strings")
    if not allow_reserved and key.startswith(RESERVED_PROPERTY_PREFIX):
        raise ReservedNameError(
            f"property key {key!r} uses the reserved prefix {RESERVED_PROPERTY_PREFIX!r}"
        )
    return sys.intern(key) if type(key) is str else key


def validate_property_value(value: Any) -> PropertyValue:
    """Validate a single property value and return a normalised copy.

    Scalars are returned unchanged.  Lists and tuples are normalised to lists
    and must be homogeneous (all elements share one scalar type, where bool is
    not interchangeable with int).  Anything else raises
    :class:`~repro.errors.InvalidPropertyValueError`.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        if not _INT_MIN <= value <= _INT_MAX:
            raise InvalidPropertyValueError(
                f"integer property {value} does not fit in 64 bits"
            )
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, str):
        return value
    if isinstance(value, (list, tuple)):
        return _validate_array(value)
    raise InvalidPropertyValueError(
        f"unsupported property value type: {type(value).__name__}"
    )


def _validate_array(value: Iterable[Any]) -> List[ScalarValue]:
    items = list(value)
    if not items:
        return []
    element_type = _scalar_type_of(items[0])
    normalised: List[ScalarValue] = []
    for item in items:
        if _scalar_type_of(item) is not element_type:
            raise InvalidPropertyValueError(
                "array properties must be homogeneous "
                f"(mixed {element_type.__name__} and {type(item).__name__})"
            )
        normalised.append(validate_property_value(item))  # type: ignore[arg-type]
    return normalised


def _scalar_type_of(item: Any) -> type:
    if isinstance(item, bool):
        return bool
    if isinstance(item, int):
        return int
    if isinstance(item, float):
        return float
    if isinstance(item, str):
        return str
    raise InvalidPropertyValueError(
        f"unsupported array element type: {type(item).__name__}"
    )


def validate_properties(
    properties: Mapping[str, Any] | None,
    *,
    allow_reserved: bool = False,
) -> Dict[str, PropertyValue]:
    """Validate a property map and return a defensive copy.

    ``None`` is treated as an empty map.  Values of ``None`` are rejected:
    like Neo4j, "no value" is expressed by removing the property.
    """
    if properties is None:
        return {}
    validated: Dict[str, PropertyValue] = {}
    for key, value in properties.items():
        clean_key = validate_property_key(key, allow_reserved=allow_reserved)
        if value is None:
            raise InvalidPropertyValueError(
                f"property {key!r} is None; remove the property instead"
            )
        validated[clean_key] = validate_property_value(value)
    return validated


def properties_equal(
    left: Mapping[str, PropertyValue], right: Mapping[str, PropertyValue]
) -> bool:
    """Structural equality for property maps (arrays compared element-wise)."""
    if set(left) != set(right):
        return False
    for key, value in left.items():
        other = right[key]
        if isinstance(value, (list, tuple)) and isinstance(other, (list, tuple)):
            if list(value) != list(other):
                return False
        elif value != other or type(value) is not type(other):
            return False
    return True
