"""Token registries mapping names to small integer ids.

Neo4j never stores label names, relationship type names or property key names
inside node/relationship/property records; instead each name is interned once
in a token store and records reference the small integer token id.  The paper
relies on this in Section 4: "properties and labels are never deleted in Neo4j
even if no node/relationship is using them", which is why the MVCC layer only
has to version the *membership lists* hanging off each token, never the tokens
themselves.

:class:`TokenRegistry` is the in-memory registry; persistence is handled by
:class:`repro.graph.token_store.TokenStore`, which replays its records into a
registry at startup.
"""

from __future__ import annotations

import sys
import threading
from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import ReservedNameError


class TokenRegistry:
    """Thread-safe bidirectional mapping between token names and ids.

    Ids are allocated densely starting at zero, in creation order, so that a
    registry can be rebuilt deterministically from an ordered list of names.
    """

    def __init__(
        self,
        kind: str,
        *,
        on_create: Optional[Callable[[int, str], None]] = None,
        reserved_prefix: Optional[str] = None,
    ) -> None:
        """Create an empty registry.

        ``kind`` is a human-readable description used in error messages (for
        example ``"label"`` or ``"property key"``).  ``on_create`` is invoked
        with ``(token_id, name)`` whenever a new token is interned, which is
        how the persistent token store hears about new tokens.  Names starting
        with ``reserved_prefix`` are rejected.
        """
        self._kind = kind
        self._on_create = on_create
        self._reserved_prefix = reserved_prefix
        self._lock = threading.RLock()
        self._by_name: Dict[str, int] = {}
        self._by_id: List[str] = []

    @property
    def kind(self) -> str:
        """Human-readable token kind (used in error messages)."""
        return self._kind

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_id)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._by_name

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._by_id))

    def names(self) -> List[str]:
        """All interned names in id order."""
        with self._lock:
            return list(self._by_id)

    def get_or_create(self, name: str) -> int:
        """Return the id for ``name``, interning it if necessary.

        Names are also interned in CPython's string table: every token name
        flowing through the registry becomes *the* canonical object for that
        spelling, so hot-path dict lookups and equality checks on property
        keys, labels and relationship types short-circuit on identity.
        """
        name = sys.intern(name) if type(name) is str else name
        self._check_name(name)
        with self._lock:
            token_id = self._by_name.get(name)
            if token_id is not None:
                return token_id
            token_id = len(self._by_id)
            self._by_id.append(name)
            self._by_name[name] = token_id
        if self._on_create is not None:
            self._on_create(token_id, name)
        return token_id

    def maybe_id(self, name: str) -> Optional[int]:
        """Return the id for ``name`` or ``None`` if it has never been interned."""
        with self._lock:
            return self._by_name.get(name)

    def name_of(self, token_id: int) -> str:
        """Return the name for ``token_id``.

        Raises :class:`KeyError` for unknown ids, which indicates a corrupt
        store or a logic error rather than a user mistake.
        """
        with self._lock:
            if 0 <= token_id < len(self._by_id):
                return self._by_id[token_id]
        raise KeyError(f"unknown {self._kind} token id {token_id}")

    def load(self, token_id: int, name: str) -> None:
        """Install a token read back from the persistent token store.

        Tokens must be loaded in id order (ids are dense); gaps indicate a
        corrupt token store.
        """
        name = sys.intern(name) if type(name) is str else name
        with self._lock:
            if token_id != len(self._by_id):
                raise ValueError(
                    f"{self._kind} tokens must be loaded densely: "
                    f"expected id {len(self._by_id)}, got {token_id}"
                )
            if name in self._by_name:
                raise ValueError(f"duplicate {self._kind} token name {name!r}")
            self._by_id.append(name)
            self._by_name[name] = token_id

    def _check_name(self, name: str) -> None:
        if not isinstance(name, str) or not name:
            raise ValueError(f"{self._kind} names must be non-empty strings")
        if self._reserved_prefix and name.startswith(self._reserved_prefix):
            raise ReservedNameError(
                f"{self._kind} name {name!r} uses the reserved prefix "
                f"{self._reserved_prefix!r}"
            )


class TokenSet:
    """The three registries a graph store needs, bundled together."""

    def __init__(
        self,
        *,
        on_create_label: Optional[Callable[[int, str], None]] = None,
        on_create_type: Optional[Callable[[int, str], None]] = None,
        on_create_key: Optional[Callable[[int, str], None]] = None,
    ) -> None:
        self.labels = TokenRegistry("label", on_create=on_create_label)
        self.relationship_types = TokenRegistry(
            "relationship type", on_create=on_create_type
        )
        self.property_keys = TokenRegistry("property key", on_create=on_create_key)

    def snapshot_counts(self) -> Dict[str, int]:
        """Number of interned tokens per registry (used by stats endpoints)."""
        return {
            "labels": len(self.labels),
            "relationship_types": len(self.relationship_types),
            "property_keys": len(self.property_keys),
        }
