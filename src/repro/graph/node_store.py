"""Node store: fixed-size node records plus the label chains they reference.

A node record holds the head of the node's relationship chain, the head of its
property chain and a reference to a dynamic-store chain containing the node's
label token ids (Section 2 of the paper: the node file position is determined
by the node identifier).
"""

from __future__ import annotations

import struct
import threading
from typing import Iterator, List

from repro.graph.dynamic_store import DynamicStore
from repro.graph.id_allocator import IdAllocator
from repro.graph.paging import PagedFile
from repro.graph.records import NULL_REF, NodeRecord, RecordStore


class NodeStore:
    """Typed wrapper around the node record file."""

    def __init__(
        self,
        paged_file: PagedFile,
        label_store: DynamicStore,
        store_name: str = "node",
        *,
        reuse_ids: bool = True,
    ) -> None:
        self._records: RecordStore[NodeRecord] = RecordStore(
            paged_file, NodeRecord, store_name
        )
        self._labels = label_store
        self._allocator = IdAllocator(reuse=reuse_ids)
        self._lock = threading.RLock()
        self._allocator.rebuild(self._records.used_ids())

    @property
    def name(self) -> str:
        """Store name used in diagnostics."""
        return self._records.name

    # -- id management -------------------------------------------------------

    def allocate_id(self) -> int:
        """Reserve a node id (the slot stays not-in-use until written)."""
        return self._allocator.allocate()

    def free_id(self, node_id: int) -> None:
        """Return a node id to the allocator after its record was cleared."""
        self._allocator.free(node_id)

    def mark_id_used(self, node_id: int) -> None:
        """Tell the allocator an externally chosen id is in use (WAL replay)."""
        self._allocator.mark_used(node_id)

    def high_water_mark(self) -> int:
        """One past the largest node id ever written."""
        return self._records.high_water_mark()

    # -- record access -------------------------------------------------------

    def read(self, node_id: int) -> NodeRecord:
        """Read the raw record for ``node_id``."""
        return self._records.read(node_id)

    def write(self, node_id: int, record: NodeRecord) -> None:
        """Write the raw record for ``node_id``."""
        self._records.write(node_id, record)

    def exists(self, node_id: int) -> bool:
        """Whether the slot for ``node_id`` is in use."""
        if node_id < 0 or node_id >= self._records.high_water_mark():
            return False
        return self._records.read(node_id).in_use

    def delete(self, node_id: int) -> None:
        """Clear the record slot (label/property chains are freed by the caller)."""
        self._records.mark_not_in_use(node_id)
        self._allocator.free(node_id)

    def iter_used_ids(self) -> Iterator[int]:
        """Yield every node id whose record is in use, in id order."""
        return self._records.iter_used_ids()

    def count(self) -> int:
        """Number of in-use node records (linear scan)."""
        return self._records.count_in_use()

    # -- label chains ---------------------------------------------------------

    def write_labels(self, label_ids: List[int]) -> int:
        """Store a list of label token ids and return the chain reference."""
        if not label_ids:
            return NULL_REF
        payload = struct.pack(f"<{len(label_ids)}I", *sorted(label_ids))
        return self._labels.write_bytes(payload)

    def read_labels(self, label_ref: int) -> List[int]:
        """Read back the label token ids stored at ``label_ref``."""
        if label_ref == NULL_REF:
            return []
        payload = self._labels.read_bytes(label_ref)
        count = len(payload) // 4
        if count == 0:
            return []
        return list(struct.unpack(f"<{count}I", payload[:count * 4]))

    def free_labels(self, label_ref: int) -> None:
        """Free a label chain (no-op for ``NULL_REF``)."""
        if label_ref != NULL_REF:
            self._labels.free_chain(label_ref)

    # -- lifecycle -------------------------------------------------------------

    def flush(self) -> None:
        """Flush node records (label dynamic store is flushed by the manager)."""
        self._records.flush()

    def close(self) -> None:
        """Close the node record file."""
        self._records.close()
