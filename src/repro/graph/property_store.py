"""Property store: encoding property values into chained fixed-size records.

Each node or relationship record points at the head of a property chain.  A
chain link (:class:`~repro.graph.records.PropertyRecord`) stores the property
key token id, a type tag and either an inline 8-byte value (booleans,
integers, floats, short strings) or a reference into a dynamic store (long
strings and arrays), mirroring Neo4j's short-string optimisation.
"""

from __future__ import annotations

import struct
import threading
from typing import Dict, List, Tuple

from repro.errors import InvalidPropertyValueError, StoreCorruptionError
from repro.graph.dynamic_store import DynamicStore
from repro.graph.id_allocator import IdAllocator
from repro.graph.paging import PagedFile
from repro.graph.properties import PropertyValue
from repro.graph.records import NULL_REF, PropertyRecord, RecordStore


class PropertyType:
    """Type tags stored in the ``value_type`` field of a property record."""

    BOOL = 1
    INT = 2
    FLOAT = 3
    SHORT_STRING = 4
    LONG_STRING = 5
    ARRAY = 6


_ARRAY_ELEMENT_BOOL = 1
_ARRAY_ELEMENT_INT = 2
_ARRAY_ELEMENT_FLOAT = 3
_ARRAY_ELEMENT_STRING = 4

#: Longest UTF-8 string (in bytes) that fits inline in a property record.
SHORT_STRING_LIMIT = 7


def encode_array(values: List[PropertyValue]) -> bytes:
    """Serialise a homogeneous array property into bytes for the dynamic store."""
    items = list(values)
    if not items:
        return struct.pack("<BI", 0, 0)
    first = items[0]
    if isinstance(first, bool):
        body = struct.pack(f"<{len(items)}B", *(1 if item else 0 for item in items))
        tag = _ARRAY_ELEMENT_BOOL
    elif isinstance(first, int):
        body = struct.pack(f"<{len(items)}q", *items)
        tag = _ARRAY_ELEMENT_INT
    elif isinstance(first, float):
        body = struct.pack(f"<{len(items)}d", *items)
        tag = _ARRAY_ELEMENT_FLOAT
    elif isinstance(first, str):
        encoded = [item.encode("utf-8") for item in items]
        body = b"".join(struct.pack("<I", len(raw)) + raw for raw in encoded)
        tag = _ARRAY_ELEMENT_STRING
    else:  # pragma: no cover - validate_properties rejects this earlier
        raise InvalidPropertyValueError(
            f"cannot encode array of {type(first).__name__}"
        )
    return struct.pack("<BI", tag, len(items)) + body


def decode_array(data: bytes) -> List[PropertyValue]:
    """Inverse of :func:`encode_array`."""
    if len(data) < 5:
        raise StoreCorruptionError("array payload shorter than its header")
    tag, count = struct.unpack_from("<BI", data)
    body = data[5:]
    if count == 0:
        return []
    if tag == _ARRAY_ELEMENT_BOOL:
        return [bool(value) for value in struct.unpack_from(f"<{count}B", body)]
    if tag == _ARRAY_ELEMENT_INT:
        return list(struct.unpack_from(f"<{count}q", body))
    if tag == _ARRAY_ELEMENT_FLOAT:
        return list(struct.unpack_from(f"<{count}d", body))
    if tag == _ARRAY_ELEMENT_STRING:
        values: List[PropertyValue] = []
        offset = 0
        for _ in range(count):
            (length,) = struct.unpack_from("<I", body, offset)
            offset += 4
            values.append(body[offset:offset + length].decode("utf-8"))
            offset += length
        return values
    raise StoreCorruptionError(f"unknown array element tag {tag}")


class PropertyStore:
    """File of property records plus the dynamic store for oversized values."""

    def __init__(
        self,
        paged_file: PagedFile,
        value_store: DynamicStore,
        store_name: str = "property",
    ) -> None:
        self._records: RecordStore[PropertyRecord] = RecordStore(
            paged_file, PropertyRecord, store_name
        )
        self._values = value_store
        self._allocator = IdAllocator()
        self._lock = threading.RLock()
        self._allocator.rebuild(self._records.used_ids())

    @property
    def name(self) -> str:
        """Store name used in diagnostics."""
        return self._records.name

    # -- value encoding ----------------------------------------------------

    def _encode_value(self, value: PropertyValue) -> Tuple[int, bytes]:
        """Encode a value into ``(type_tag, inline_bytes)``.

        Values that do not fit inline are written to the dynamic store and the
        inline bytes hold the block reference.
        """
        if isinstance(value, bool):
            return PropertyType.BOOL, struct.pack("<q", 1 if value else 0)
        if isinstance(value, int):
            return PropertyType.INT, struct.pack("<q", value)
        if isinstance(value, float):
            return PropertyType.FLOAT, struct.pack("<d", value)
        if isinstance(value, str):
            raw = value.encode("utf-8")
            if len(raw) <= SHORT_STRING_LIMIT:
                return PropertyType.SHORT_STRING, bytes([len(raw)]) + raw
            block = self._values.write_bytes(raw)
            return PropertyType.LONG_STRING, struct.pack("<q", block)
        if isinstance(value, (list, tuple)):
            block = self._values.write_bytes(encode_array(list(value)))
            return PropertyType.ARRAY, struct.pack("<q", block)
        raise InvalidPropertyValueError(
            f"cannot encode property value of type {type(value).__name__}"
        )

    def _decode_value(self, value_type: int, inline: bytes) -> PropertyValue:
        if value_type == PropertyType.BOOL:
            return bool(struct.unpack_from("<q", inline)[0])
        if value_type == PropertyType.INT:
            return struct.unpack_from("<q", inline)[0]
        if value_type == PropertyType.FLOAT:
            return struct.unpack_from("<d", inline)[0]
        if value_type == PropertyType.SHORT_STRING:
            length = inline[0]
            return inline[1:1 + length].decode("utf-8")
        if value_type == PropertyType.LONG_STRING:
            block = struct.unpack_from("<q", inline)[0]
            return self._values.read_bytes(block).decode("utf-8")
        if value_type == PropertyType.ARRAY:
            block = struct.unpack_from("<q", inline)[0]
            return decode_array(self._values.read_bytes(block))
        raise StoreCorruptionError(f"unknown property type tag {value_type}")

    def _free_value(self, value_type: int, inline: bytes) -> None:
        if value_type in (PropertyType.LONG_STRING, PropertyType.ARRAY):
            block = struct.unpack_from("<q", inline)[0]
            self._values.free_chain(block)

    # -- chain management ---------------------------------------------------

    def write_chain(self, properties: Dict[int, PropertyValue]) -> int:
        """Write a property map (keyed by key token id) as a fresh chain.

        Returns the record id of the chain head, or ``NULL_REF`` for an empty
        map.
        """
        if not properties:
            return NULL_REF
        with self._lock:
            items = sorted(properties.items())
            record_ids = [self._allocator.allocate() for _ in items]
            for index, (key_id, value) in enumerate(items):
                value_type, inline = self._encode_value(value)
                record = PropertyRecord(
                    in_use=True,
                    key_id=key_id,
                    value_type=value_type,
                    inline_value=inline,
                    prev_prop=record_ids[index - 1] if index > 0 else NULL_REF,
                    next_prop=(
                        record_ids[index + 1] if index + 1 < len(record_ids) else NULL_REF
                    ),
                )
                self._records.write(record_ids[index], record)
            return record_ids[0]

    def read_chain(self, first_prop: int) -> Dict[int, PropertyValue]:
        """Read a property chain back into a ``{key_id: value}`` map."""
        properties: Dict[int, PropertyValue] = {}
        record_id = first_prop
        seen = set()
        with self._lock:
            while record_id != NULL_REF:
                if record_id in seen:
                    raise StoreCorruptionError(
                        f"{self.name}: property chain cycle at record {record_id}"
                    )
                seen.add(record_id)
                record = self._records.read(record_id)
                if not record.in_use:
                    raise StoreCorruptionError(
                        f"{self.name}: property record {record_id} is not in use"
                    )
                properties[record.key_id] = self._decode_value(
                    record.value_type, record.inline_value
                )
                record_id = record.next_prop
        return properties

    def free_chain(self, first_prop: int) -> int:
        """Free a property chain (and any dynamic values it references)."""
        freed = 0
        record_id = first_prop
        with self._lock:
            while record_id != NULL_REF:
                record = self._records.read(record_id)
                if not record.in_use:
                    break
                self._free_value(record.value_type, record.inline_value)
                next_prop = record.next_prop
                self._records.mark_not_in_use(record_id)
                self._allocator.free(record_id)
                freed += 1
                record_id = next_prop
        return freed

    def replace_chain(self, first_prop: int, properties: Dict[int, PropertyValue]) -> int:
        """Free the existing chain and write a new one; returns the new head."""
        with self._lock:
            if first_prop != NULL_REF:
                self.free_chain(first_prop)
            return self.write_chain(properties)

    def records_in_use(self) -> int:
        """Number of live property records (linear scan)."""
        return self._records.count_in_use()

    def flush(self) -> None:
        """Flush property records and the dynamic value store."""
        self._records.flush()
        self._values.flush()

    def close(self) -> None:
        """Close property records (the dynamic store is owned by the manager)."""
        self._records.close()
