"""Store manager: the logical face of the persistent store.

Everything above this module (transaction managers, indexes, the MVCC layer)
speaks :class:`~repro.graph.entity.NodeData` and
:class:`~repro.graph.entity.RelationshipData`; this module translates those
logical entities into record writes across the node, relationship, property,
dynamic and token stores, maintains the per-node relationship chains, logs
every mutation to the write-ahead log, and replays the log on startup.

The snapshot-isolation layer relies on one property of this class that the
paper calls out explicitly in Section 4: **only the most recent committed
version of an entity is ever written to the persistent store** — the store
manager has no notion of versions at all.  Older versions live purely in the
object cache above.
"""

from __future__ import annotations

import os
import threading
from time import perf_counter
from typing import Dict, Iterator, List, Optional

from repro.errors import (
    ConstraintViolationError,
    DatabaseReadOnlyError,
    EntityNotFoundError,
    NodeNotFoundError,
    RelationshipNotFoundError,
    SimulatedCrashError,
    WalError,
)
from repro.health import EngineHealth
from repro.graph.dynamic_store import DynamicStore
from repro.graph.entity import Direction, NodeData, RelationshipData
from repro.graph.node_store import NodeStore
from repro.graph.operations import (
    DeleteNodeOp,
    DeleteRelationshipOp,
    StoreOperation,
    WriteNodeOp,
    WriteRelationshipOp,
    operations_from_payloads,
    operations_to_payloads,
)
from repro.graph.paging import (
    DEFAULT_PAGE_CAPACITY,
    DEFAULT_PAGE_SIZE,
    PageCache,
    PagedFile,
    open_backend,
)
from repro.graph.property_store import PropertyStore
from repro.graph.records import NULL_REF, RelationshipRecord, NodeRecord
from repro.graph.relationship_store import RelationshipStore
from repro.graph.token_store import TokenStore
from repro.graph.tokens import TokenSet
from repro.graph.recovery import (
    read_checkpoint_marker,
    write_checkpoint_marker,
)
from repro.graph.wal import WriteAheadLog
from repro.graph.properties import PropertyValue


class StoreManagerStats:
    """Mutation counters used by the persistence experiment (E8) and tests."""

    def __init__(self) -> None:
        self.node_writes = 0
        self.relationship_writes = 0
        self.node_deletes = 0
        self.relationship_deletes = 0
        self.batches_applied = 0
        self.batches_replayed = 0
        self.group_flushes = 0
        self.group_batches = 0
        self.group_max_coalesced = 0

    def entity_writes(self) -> int:
        """Total number of logical entity writes flushed to the store."""
        return self.node_writes + self.relationship_writes

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view of the counters."""
        return {
            "node_writes": self.node_writes,
            "relationship_writes": self.relationship_writes,
            "node_deletes": self.node_deletes,
            "relationship_deletes": self.relationship_deletes,
            "batches_applied": self.batches_applied,
            "batches_replayed": self.batches_replayed,
            "entity_writes": self.entity_writes(),
            "group_flushes": self.group_flushes,
            "group_batches": self.group_batches,
            "group_max_coalesced": self.group_max_coalesced,
        }


class _PendingCommit:
    """One committer's batch waiting in the group-commit queue."""

    __slots__ = ("txn_id", "operations", "done", "error")

    def __init__(self, txn_id: int, operations: List[StoreOperation]) -> None:
        self.txn_id = txn_id
        self.operations = operations
        self.done = threading.Event()
        self.error: Optional[BaseException] = None


class StoreManager:
    """Owns every store file and exposes the logical read/write API."""

    def __init__(
        self,
        path: Optional[str] = None,
        *,
        page_cache_pages: int = DEFAULT_PAGE_CAPACITY,
        page_size: int = DEFAULT_PAGE_SIZE,
        wal_enabled: bool = True,
        wal_sync: bool = False,
        reuse_entity_ids: bool = True,
        group_commit: bool = False,
        failpoints=None,
        health: Optional[EngineHealth] = None,
    ) -> None:
        """Open (or create) a graph store.

        ``path`` is a directory; ``None`` keeps everything in memory.  With
        ``wal_enabled`` every applied batch is logged before it touches the
        stores and the log is replayed on the next open.  ``wal_sync``
        controls whether commits fsync the log (off by default because the
        benchmarks measure concurrency-control costs, not disk latency).
        ``reuse_entity_ids`` is disabled by the multi-version engine so that
        node/relationship ids are never recycled while old versions of a
        deleted entity may still be readable by an open snapshot.

        With ``group_commit`` concurrent :meth:`apply_batch` callers coalesce:
        whichever committer reaches the store latch first drains the whole
        queue and flushes every queued batch with one WAL append (and one
        fsync, when ``wal_sync`` is on) — the classic group commit that makes
        the sharded commit pipeline pay one disk round trip per *group*.

        ``failpoints`` is an optional
        :class:`~repro.fault.FailpointRegistry` threaded into the WAL, the
        checkpoint path and the group-commit flush; ``health`` is the shared
        :class:`~repro.health.EngineHealth` switch (one is created here when
        the caller does not supply it).
        """
        self._path = path
        self._lock = threading.RLock()
        self._closed = False
        self._failpoints = failpoints
        self.health = health if health is not None else EngineHealth()
        self._group_commit = group_commit
        self._group_gate = threading.Lock()
        self._group_pending: List[_PendingCommit] = []
        self.stats = StoreManagerStats()
        #: Observability bundle (set by the database); when present, the
        #: commit flush path times WAL appends into its latency histogram.
        self.obs = None
        self.page_cache = PageCache(page_cache_pages, page_size)

        def paged(name: str) -> PagedFile:
            file_path = None if path is None else os.path.join(path, name)
            return PagedFile(open_backend(file_path), self.page_cache)

        self._label_dynamic = DynamicStore(paged("labels.dyn"), "label-dynamic")
        self._value_dynamic = DynamicStore(paged("values.dyn"), "value-dynamic")
        self._name_dynamic = DynamicStore(paged("names.dyn"), "name-dynamic")
        self.nodes = NodeStore(
            paged("node.store"), self._label_dynamic, reuse_ids=reuse_entity_ids
        )
        self.relationships = RelationshipStore(
            paged("relationship.store"), reuse_ids=reuse_entity_ids
        )
        self.properties = PropertyStore(paged("property.store"), self._value_dynamic)
        self._label_tokens = TokenStore(paged("label_tokens.store"), self._name_dynamic, "label-tokens")
        self._type_tokens = TokenStore(paged("type_tokens.store"), self._name_dynamic, "type-tokens")
        self._key_tokens = TokenStore(paged("key_tokens.store"), self._name_dynamic, "key-tokens")

        self.tokens = TokenSet(
            on_create_label=self._label_tokens.create,
            on_create_type=self._type_tokens.create,
            on_create_key=self._key_tokens.create,
        )
        self._load_tokens()

        wal_path = None if path is None else os.path.join(path, "wal.log")
        self._wal_enabled = wal_enabled
        self.wal = WriteAheadLog(
            wal_path if wal_enabled else None,
            sync_on_commit=wal_sync,
            failpoints=failpoints,
        )
        marker = read_checkpoint_marker(path) if path is not None else None
        self._checkpoint_generation = (
            int(marker.get("generation", 0)) if marker else 0
        )
        if wal_enabled:
            self._recover()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def path(self) -> Optional[str]:
        """Directory holding the store files (``None`` when in memory)."""
        return self._path

    @property
    def failpoints(self):
        """The fault-injection registry, or ``None`` (the production default)."""
        return self._failpoints

    def wal_stats(self) -> Dict[str, object]:
        """Write-ahead-log counters (the database's ``statistics()["wal"]``)."""
        return dict(self.wal.stats(), enabled=self._wal_enabled)

    def checkpoint(self) -> None:
        """Flush all dirty pages, persist the checkpoint marker, reset the WAL.

        The three steps are strictly ordered so that a crash at *any* point
        is repaired by WAL replay on the next open:

        1. every store file is flushed and fsynced (crash after: the WAL is
           still intact, replay re-applies — harmless, replay is idempotent);
        2. the checkpoint marker is written crash-atomically via a temp file
           and ``os.replace`` (crash after: same as 1);
        3. only then is the WAL truncated — nothing is ever dropped from the
           log before the stores durably contain it.

        A degraded engine refuses to checkpoint: after a failed durability
        operation the store files cannot be trusted to contain everything in
        the WAL, and truncating the log would turn a transient fault into
        data loss.  Any checkpoint failure likewise flips the engine into
        degraded read-only mode, for the same reason.
        """
        with self._lock:
            self.health.ensure_writable()
            try:
                if self._failpoints is not None:
                    fault = self._failpoints.hit("store.checkpoint")
                    if fault is not None:
                        fault.raise_fault()
                self.page_cache.flush()
                if self._failpoints is not None:
                    fault = self._failpoints.hit("store.flush")
                    if fault is not None:
                        fault.raise_fault()
                for store in (self.nodes, self.relationships, self.properties):
                    store.flush()
                self._label_dynamic.flush()
                self._value_dynamic.flush()
                self._name_dynamic.flush()
                self._label_tokens.flush()
                self._type_tokens.flush()
                self._key_tokens.flush()
                if self._path is not None and self._wal_enabled:
                    write_checkpoint_marker(
                        self._path,
                        self._checkpoint_generation + 1,
                        failpoints=self._failpoints,
                    )
                self.wal.checkpoint()
                self._checkpoint_generation += 1
            except BaseException as exc:  # noqa: BLE001 - degrade, then surface
                self.health.mark_degraded("checkpoint-failed", exc)
                self._note_degraded_obs()
                raise

    def checkpoint_generation(self) -> int:
        """Number of checkpoints this directory has completed (0 when fresh)."""
        with self._lock:
            return self._checkpoint_generation

    def close(self) -> None:
        """Checkpoint (when healthy) and close every store file.

        The file descriptors are *always* released, even when the final
        checkpoint fails — the failure is re-raised after cleanup.  A
        degraded engine skips the checkpoint entirely: its WAL must survive
        for replay on the next open.
        """
        with self._lock:
            if self._closed:
                return
            checkpoint_error: Optional[BaseException] = None
            if not self.health.is_degraded:
                try:
                    self.checkpoint()
                except BaseException as exc:  # noqa: BLE001 - close fds first
                    checkpoint_error = exc
            for closable in (
                self.nodes,
                self.relationships,
                self.properties,
                self._label_dynamic,
                self._value_dynamic,
                self._name_dynamic,
                self._label_tokens,
                self._type_tokens,
                self._key_tokens,
            ):
                closable.close()
            self.wal.close()
            self._closed = True
            if checkpoint_error is not None:
                raise checkpoint_error

    def _note_degraded_obs(self) -> None:
        """Mirror a degradation into the metrics registry, when wired."""
        obs = self.obs
        if obs is not None:
            obs.engine_degraded.set(1)

    # ------------------------------------------------------------------
    # id allocation
    # ------------------------------------------------------------------

    def allocate_node_id(self) -> int:
        """Reserve a node id for a not-yet-committed node."""
        return self.nodes.allocate_id()

    def allocate_relationship_id(self) -> int:
        """Reserve a relationship id for a not-yet-committed relationship."""
        return self.relationships.allocate_id()

    # ------------------------------------------------------------------
    # batched application (the commit path)
    # ------------------------------------------------------------------

    def apply_batch(self, txn_id: int, operations: List[StoreOperation]) -> None:
        """Log and apply one committed transaction's store operations.

        The write-ahead log entry is appended before any store file is
        touched, so a crash in the middle of application is repaired by
        replay on the next open.

        Without group commit each batch takes the store latch on its own.
        With group commit the batch joins the pending queue; the first
        committer through the latch flushes the entire queue (its own batch
        included) and later committers find their entry already flushed.
        """
        if not operations:
            return
        self.health.ensure_writable()
        entry = _PendingCommit(txn_id, operations)
        if not self._group_commit:
            with self._lock:
                self._flush_batches([entry])
        else:
            with self._group_gate:
                self._group_pending.append(entry)
            with self._lock:
                if not entry.done.is_set():
                    with self._group_gate:
                        drained = self._group_pending
                        self._group_pending = []
                    self.stats.group_flushes += 1
                    self.stats.group_batches += len(drained)
                    self.stats.group_max_coalesced = max(
                        self.stats.group_max_coalesced, len(drained)
                    )
                    self._flush_batches(drained)
        if entry.error is not None:
            raise entry.error

    def _flush_batches(self, batch: List[_PendingCommit]) -> None:
        """Apply a group of batches under the store latch (caller holds it).

        Never raises directly: failures are recorded per entry and re-raised
        in each owning committer's thread, so followers waiting on their
        event are always released.  A failed WAL append fails the whole group
        (nothing was made durable).  After a durable append the batches are
        independent: each one is applied regardless of another batch's apply
        failure and is attributed only its own error — skipping an innocent
        follower's operations would leave the store behind its own durable
        log entry.  As in the seed's single-batch path, an apply failure
        after the durable append leaves the store to be repaired by WAL
        replay on the next open.

        Unrecoverable failures additionally flip the engine into degraded
        read-only mode: a failed WAL append after the retry budget (or a
        simulated crash) means durability can no longer be promised, and a
        failed store apply after a *durable* append means a later checkpoint
        would truncate operations out of the log that never reached the
        store files.  Either way the safe continuation is "stop writing,
        keep serving snapshot reads, repair by replay on the next open".
        """
        try:
            if self._failpoints is not None:
                fault = self._failpoints.hit("store.group_flush")
                if fault is not None:
                    fault.raise_fault()
            if self._wal_enabled:
                payloads = [
                    (entry.txn_id, operations_to_payloads(entry.operations))
                    for entry in batch
                ]
                obs = self.obs
                if obs is not None:
                    wal_started = perf_counter()
                    self.wal.append_commits(payloads)
                    obs.wal_append_seconds.observe(perf_counter() - wal_started)
                else:
                    self.wal.append_commits(payloads)
        except BaseException as exc:  # noqa: BLE001 - re-raised in the owners
            if isinstance(exc, (WalError, SimulatedCrashError)) or not isinstance(
                exc, Exception
            ):
                self.health.mark_degraded("wal-append-failed", exc)
                self._note_degraded_obs()
            for entry in batch:
                entry.error = exc
                entry.done.set()
            return
        for entry in batch:
            try:
                for operation in entry.operations:
                    self._apply_operation(operation)
                self.stats.batches_applied += 1
            except BaseException as exc:  # noqa: BLE001 - re-raised in the owner
                if self._wal_enabled:
                    self.health.mark_degraded("store-apply-failed", exc)
                    self._note_degraded_obs()
                entry.error = exc
            entry.done.set()

    def _apply_operation(self, operation: StoreOperation) -> None:
        if isinstance(operation, WriteNodeOp):
            self.write_node(operation.node, _log=False)
        elif isinstance(operation, DeleteNodeOp):
            self.delete_node(operation.node_id, _log=False, missing_ok=True)
        elif isinstance(operation, WriteRelationshipOp):
            self.write_relationship(operation.relationship, _log=False)
        elif isinstance(operation, DeleteRelationshipOp):
            self.delete_relationship(operation.rel_id, _log=False, missing_ok=True)
        else:  # pragma: no cover - exhaustive over StoreOperation
            raise TypeError(f"unknown store operation {operation!r}")

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------

    def write_node(self, node: NodeData, *, _log: bool = True) -> None:
        """Create or overwrite a node's persistent state."""
        with self._lock:
            if _log and self._wal_enabled:
                self.wal.append_commit(0, operations_to_payloads([WriteNodeOp(node)]))
            self.nodes.mark_id_used(node.node_id)
            record = self.nodes.read(node.node_id)
            if record.in_use:
                self.nodes.free_labels(record.label_ref)
                self.properties.free_chain(record.first_prop)
            else:
                record = NodeRecord(in_use=True)
            record.in_use = True
            record.label_ref = self.nodes.write_labels(
                [self.tokens.labels.get_or_create(label) for label in node.labels]
            )
            record.first_prop = self.properties.write_chain(
                self._encode_property_keys(node.properties)
            )
            self.nodes.write(node.node_id, record)
            self.stats.node_writes += 1

    def read_node(self, node_id: int) -> Optional[NodeData]:
        """Read a node's persistent state, or ``None`` if the slot is unused."""
        with self._lock:
            if not self.nodes.exists(node_id):
                return None
            record = self.nodes.read(node_id)
            labels = frozenset(
                self.tokens.labels.name_of(label_id)
                for label_id in self.nodes.read_labels(record.label_ref)
            )
            properties = self._decode_property_keys(
                self.properties.read_chain(record.first_prop)
            )
            return NodeData(node_id=node_id, labels=labels, properties=properties)

    def delete_node(
        self, node_id: int, *, _log: bool = True, missing_ok: bool = False
    ) -> None:
        """Delete a node's persistent state.

        The node must have no relationships left in the store; higher layers
        are responsible for detach semantics.
        """
        with self._lock:
            if not self.nodes.exists(node_id):
                if missing_ok:
                    return
                raise NodeNotFoundError(node_id)
            record = self.nodes.read(node_id)
            if record.first_rel != NULL_REF:
                raise ConstraintViolationError(
                    f"node {node_id} still has relationships in the store"
                )
            if _log and self._wal_enabled:
                self.wal.append_commit(0, operations_to_payloads([DeleteNodeOp(node_id)]))
            self.nodes.free_labels(record.label_ref)
            self.properties.free_chain(record.first_prop)
            self.nodes.delete(node_id)
            self.stats.node_deletes += 1

    def node_exists(self, node_id: int) -> bool:
        """Whether the persistent store holds a node with this id."""
        with self._lock:
            return self.nodes.exists(node_id)

    def iter_node_ids(self) -> Iterator[int]:
        """Node ids present in the persistent store, in id order."""
        with self._lock:
            ids = list(self.nodes.iter_used_ids())
        return iter(ids)

    def iter_nodes(self) -> Iterator[NodeData]:
        """Persistent node states, in id order."""
        for node_id in self.iter_node_ids():
            node = self.read_node(node_id)
            if node is not None:
                yield node

    def node_count(self) -> int:
        """Number of nodes in the persistent store."""
        with self._lock:
            return self.nodes.count()

    # ------------------------------------------------------------------
    # relationships
    # ------------------------------------------------------------------

    def write_relationship(self, relationship: RelationshipData, *, _log: bool = True) -> None:
        """Create or overwrite a relationship's persistent state.

        For an existing relationship only the property chain is replaced; the
        endpoints and type of a relationship are immutable, as in Neo4j.
        """
        with self._lock:
            if _log and self._wal_enabled:
                self.wal.append_commit(
                    0, operations_to_payloads([WriteRelationshipOp(relationship)])
                )
            self.relationships.mark_id_used(relationship.rel_id)
            record = self.relationships.read(relationship.rel_id)
            encoded_props = self._encode_property_keys(relationship.properties)
            if record.in_use:
                self.properties.free_chain(record.first_prop)
                record.first_prop = self.properties.write_chain(encoded_props)
                self.relationships.write(relationship.rel_id, record)
            else:
                self._require_node(relationship.start_node)
                self._require_node(relationship.end_node)
                record = RelationshipRecord(
                    in_use=True,
                    start_node=relationship.start_node,
                    end_node=relationship.end_node,
                    type_id=self.tokens.relationship_types.get_or_create(
                        relationship.rel_type
                    ),
                    first_prop=self.properties.write_chain(encoded_props),
                )
                self._link_into_chains(relationship.rel_id, record)
            self.stats.relationship_writes += 1

    def read_relationship(self, rel_id: int) -> Optional[RelationshipData]:
        """Read a relationship's persistent state, or ``None`` if unused."""
        with self._lock:
            if not self.relationships.exists(rel_id):
                return None
            record = self.relationships.read(rel_id)
            properties = self._decode_property_keys(
                self.properties.read_chain(record.first_prop)
            )
            return RelationshipData(
                rel_id=rel_id,
                rel_type=self.tokens.relationship_types.name_of(record.type_id),
                start_node=record.start_node,
                end_node=record.end_node,
                properties=properties,
            )

    def delete_relationship(
        self, rel_id: int, *, _log: bool = True, missing_ok: bool = False
    ) -> None:
        """Delete a relationship, unlinking it from both endpoint chains."""
        with self._lock:
            if not self.relationships.exists(rel_id):
                if missing_ok:
                    return
                raise RelationshipNotFoundError(rel_id)
            if _log and self._wal_enabled:
                self.wal.append_commit(
                    0, operations_to_payloads([DeleteRelationshipOp(rel_id)])
                )
            record = self.relationships.read(rel_id)
            self._unlink_from_chain(rel_id, record, record.start_node)
            if record.end_node != record.start_node:
                self._unlink_from_chain(rel_id, record, record.end_node)
            self.properties.free_chain(record.first_prop)
            self.relationships.delete(rel_id)
            self.stats.relationship_deletes += 1

    def relationship_exists(self, rel_id: int) -> bool:
        """Whether the persistent store holds a relationship with this id."""
        with self._lock:
            return self.relationships.exists(rel_id)

    def iter_relationship_ids(self) -> Iterator[int]:
        """Relationship ids present in the persistent store, in id order."""
        with self._lock:
            ids = list(self.relationships.iter_used_ids())
        return iter(ids)

    def iter_relationships(self) -> Iterator[RelationshipData]:
        """Persistent relationship states, in id order."""
        for rel_id in self.iter_relationship_ids():
            relationship = self.read_relationship(rel_id)
            if relationship is not None:
                yield relationship

    def relationship_count(self) -> int:
        """Number of relationships in the persistent store."""
        with self._lock:
            return self.relationships.count()

    def node_relationship_ids(
        self, node_id: int, direction: Direction = Direction.BOTH
    ) -> List[int]:
        """Relationship ids attached to ``node_id``, found by walking its chain."""
        with self._lock:
            if not self.nodes.exists(node_id):
                raise NodeNotFoundError(node_id)
            result: List[int] = []
            rel_id = self.nodes.read(node_id).first_rel
            guard = 0
            while rel_id != NULL_REF:
                record = self.relationships.read(rel_id)
                if direction.matches(node_id, record.start_node, record.end_node):
                    result.append(rel_id)
                rel_id = self._chain_next(record, node_id)
                guard += 1
                if guard > self.relationships.high_water_mark() + 1:
                    raise EntityNotFoundError("relationship chain", node_id)
            return result

    def node_degree(self, node_id: int, direction: Direction = Direction.BOTH) -> int:
        """Number of relationships attached to ``node_id``."""
        return len(self.node_relationship_ids(node_id, direction))

    # ------------------------------------------------------------------
    # chain helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _chain_next(record: RelationshipRecord, node_id: int) -> int:
        if record.start_node == node_id:
            return record.start_next
        return record.end_next

    @staticmethod
    def _chain_prev(record: RelationshipRecord, node_id: int) -> int:
        if record.start_node == node_id:
            return record.start_prev
        return record.end_prev

    @staticmethod
    def _set_chain_next(record: RelationshipRecord, node_id: int, value: int) -> None:
        if record.start_node == node_id:
            record.start_next = value
        else:
            record.end_next = value

    @staticmethod
    def _set_chain_prev(record: RelationshipRecord, node_id: int, value: int) -> None:
        if record.start_node == node_id:
            record.start_prev = value
        else:
            record.end_prev = value

    def _link_into_chains(self, rel_id: int, record: RelationshipRecord) -> None:
        """Insert a new relationship at the head of both endpoint chains."""
        endpoints = [record.start_node]
        if record.end_node != record.start_node:
            endpoints.append(record.end_node)
        for node_id in endpoints:
            node_record = self.nodes.read(node_id)
            old_first = node_record.first_rel
            if node_id == record.start_node:
                record.start_prev = NULL_REF
                record.start_next = old_first
            else:
                record.end_prev = NULL_REF
                record.end_next = old_first
            if old_first != NULL_REF:
                neighbour = self.relationships.read(old_first)
                self._set_chain_prev(neighbour, node_id, rel_id)
                self.relationships.write(old_first, neighbour)
            node_record.first_rel = rel_id
            self.nodes.write(node_id, node_record)
        self.relationships.write(rel_id, record)

    def _unlink_from_chain(
        self, rel_id: int, record: RelationshipRecord, node_id: int
    ) -> None:
        """Remove ``rel_id`` from one endpoint's relationship chain."""
        prev_id = self._chain_prev(record, node_id)
        next_id = self._chain_next(record, node_id)
        if prev_id == NULL_REF:
            node_record = self.nodes.read(node_id)
            if node_record.first_rel == rel_id:
                node_record.first_rel = next_id
                self.nodes.write(node_id, node_record)
        else:
            prev_record = self.relationships.read(prev_id)
            self._set_chain_next(prev_record, node_id, next_id)
            self.relationships.write(prev_id, prev_record)
        if next_id != NULL_REF:
            next_record = self.relationships.read(next_id)
            self._set_chain_prev(next_record, node_id, prev_id)
            self.relationships.write(next_id, next_record)

    # ------------------------------------------------------------------
    # property key translation
    # ------------------------------------------------------------------

    def _encode_property_keys(self, properties) -> Dict[int, PropertyValue]:
        return {
            self.tokens.property_keys.get_or_create(key): (
                list(value) if isinstance(value, tuple) else value
            )
            for key, value in properties.items()
        }

    def _decode_property_keys(self, properties: Dict[int, PropertyValue]) -> Dict[str, PropertyValue]:
        return {
            self.tokens.property_keys.name_of(key_id): value
            for key_id, value in properties.items()
        }

    def _require_node(self, node_id: int) -> None:
        if not self.nodes.exists(node_id):
            raise NodeNotFoundError(node_id)

    # ------------------------------------------------------------------
    # startup
    # ------------------------------------------------------------------

    def _load_tokens(self) -> None:
        self._label_tokens.populate_registry(self.tokens.labels)
        self._type_tokens.populate_registry(self.tokens.relationship_types)
        self._key_tokens.populate_registry(self.tokens.property_keys)

    def _recover(self) -> None:
        """Replay committed write-ahead-log batches left over from a crash.

        Replay is idempotent (writes overwrite, deletes tolerate absence), so
        a crash *during* recovery simply replays the same prefix again on the
        next open — the ``recovery.replay`` failpoint (hit once per committed
        batch) exists exactly to prove that in tests.
        """
        replayed = 0
        for payloads in self.wal.replay():
            if self._failpoints is not None:
                fault = self._failpoints.hit("recovery.replay")
                if fault is not None:
                    fault.raise_fault()
            operations = operations_from_payloads(payloads)
            for operation in operations:
                self._apply_operation(operation)
            replayed += 1
        self.stats.batches_replayed = replayed
        if replayed:
            self.checkpoint()
