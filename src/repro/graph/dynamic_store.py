"""Dynamic store: chained variable-length byte payloads.

Values that do not fit into a fixed-size record slot — long strings, array
properties, label lists and token names — are written into a dynamic store as
a chain of fixed-size blocks, and the owning record keeps only the id of the
first block.  This mirrors Neo4j's dynamic string/array stores.
"""

from __future__ import annotations

import threading
from typing import List, Optional

from repro.errors import RecordNotInUseError
from repro.graph.id_allocator import IdAllocator
from repro.graph.paging import PagedFile
from repro.graph.records import NULL_REF, DynamicRecord, RecordStore


class DynamicStore:
    """Store of chained blocks holding arbitrary byte strings."""

    def __init__(self, paged_file: PagedFile, store_name: str) -> None:
        self._records: RecordStore[DynamicRecord] = RecordStore(
            paged_file, DynamicRecord, store_name
        )
        self._allocator = IdAllocator()
        self._lock = threading.RLock()
        self._allocator.rebuild(self._records.used_ids())

    @property
    def name(self) -> str:
        """Store name (used in diagnostics)."""
        return self._records.name

    def write_bytes(self, payload: bytes) -> int:
        """Store ``payload`` as a block chain and return the first block id.

        Empty payloads still occupy one block so that a valid reference is
        always returned.
        """
        chunk_size = DynamicRecord.PAYLOAD_SIZE
        chunks = [payload[i:i + chunk_size] for i in range(0, len(payload), chunk_size)]
        if not chunks:
            chunks = [b""]
        with self._lock:
            block_ids = [self._allocator.allocate() for _ in chunks]
            for index, chunk in enumerate(chunks):
                next_block = block_ids[index + 1] if index + 1 < len(block_ids) else NULL_REF
                record = DynamicRecord(
                    in_use=True,
                    length=len(chunk),
                    next_block=next_block,
                    payload=chunk,
                )
                self._records.write(block_ids[index], record)
            return block_ids[0]

    def read_bytes(self, first_block: int) -> bytes:
        """Read back the byte string starting at ``first_block``."""
        if first_block == NULL_REF:
            return b""
        chunks: List[bytes] = []
        block_id = first_block
        seen = set()
        with self._lock:
            while block_id != NULL_REF:
                if block_id in seen:
                    raise RecordNotInUseError(
                        f"{self.name}: dynamic chain cycle at block {block_id}"
                    )
                seen.add(block_id)
                record = self._records.read(block_id)
                if not record.in_use:
                    raise RecordNotInUseError(
                        f"{self.name}: dynamic block {block_id} is not in use"
                    )
                chunks.append(record.payload[:record.length])
                block_id = record.next_block
        return b"".join(chunks)

    def free_chain(self, first_block: int) -> int:
        """Free every block of a chain; returns the number of blocks freed."""
        if first_block == NULL_REF:
            return 0
        freed = 0
        block_id = first_block
        with self._lock:
            while block_id != NULL_REF:
                record = self._records.read(block_id)
                if not record.in_use:
                    break
                next_block = record.next_block
                self._records.mark_not_in_use(block_id)
                self._allocator.free(block_id)
                freed += 1
                block_id = next_block
        return freed

    def rewrite_chain(self, first_block: Optional[int], payload: bytes) -> int:
        """Replace an existing chain with a new payload, returning the new head."""
        with self._lock:
            if first_block is not None and first_block != NULL_REF:
                self.free_chain(first_block)
            return self.write_bytes(payload)

    def blocks_in_use(self) -> int:
        """Number of in-use blocks (linear scan, used by tests and stats)."""
        return self._records.count_in_use()

    def flush(self) -> None:
        """Flush the underlying record store."""
        self._records.flush()

    def close(self) -> None:
        """Close the underlying record store."""
        self._records.close()
