"""Logical store operations.

The store manager applies changes as small logical operations (write node,
delete node, write relationship, delete relationship).  The same operations
are what the write-ahead log records, so this module also defines their
serialisation to and from plain dictionaries (the WAL stores them as JSON).

Keeping the log at the logical level is the standard "logical redo" approach:
replaying an operation is idempotent, which is all recovery needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Union

from repro.errors import WalError
from repro.graph.entity import NodeData, RelationshipData
from repro.graph.properties import PropertyValue


def _properties_to_payload(properties: Mapping[str, PropertyValue]) -> Dict[str, Any]:
    """Convert a property map into JSON-serialisable form (tuples become lists)."""
    payload: Dict[str, Any] = {}
    for key, value in properties.items():
        if isinstance(value, tuple):
            payload[key] = list(value)
        else:
            payload[key] = value
    return payload


@dataclass(frozen=True)
class WriteNodeOp:
    """Create or overwrite a node with the given logical state."""

    node: NodeData

    op_name = "write_node"

    def to_payload(self) -> Dict[str, Any]:
        return {
            "op": self.op_name,
            "node_id": self.node.node_id,
            "labels": sorted(self.node.labels),
            "properties": _properties_to_payload(self.node.properties),
        }


@dataclass(frozen=True)
class DeleteNodeOp:
    """Remove a node record (and its label/property chains)."""

    node_id: int

    op_name = "delete_node"

    def to_payload(self) -> Dict[str, Any]:
        return {"op": self.op_name, "node_id": self.node_id}


@dataclass(frozen=True)
class WriteRelationshipOp:
    """Create or overwrite a relationship with the given logical state."""

    relationship: RelationshipData

    op_name = "write_relationship"

    def to_payload(self) -> Dict[str, Any]:
        rel = self.relationship
        return {
            "op": self.op_name,
            "rel_id": rel.rel_id,
            "rel_type": rel.rel_type,
            "start_node": rel.start_node,
            "end_node": rel.end_node,
            "properties": _properties_to_payload(rel.properties),
        }


@dataclass(frozen=True)
class DeleteRelationshipOp:
    """Remove a relationship record (unlinking it from both endpoint chains)."""

    rel_id: int

    op_name = "delete_relationship"

    def to_payload(self) -> Dict[str, Any]:
        return {"op": self.op_name, "rel_id": self.rel_id}


StoreOperation = Union[WriteNodeOp, DeleteNodeOp, WriteRelationshipOp, DeleteRelationshipOp]


def operation_from_payload(payload: Mapping[str, Any]) -> StoreOperation:
    """Rebuild a :data:`StoreOperation` from its WAL payload."""
    op_name = payload.get("op")
    if op_name == WriteNodeOp.op_name:
        node = NodeData(
            node_id=int(payload["node_id"]),
            labels=frozenset(payload.get("labels", ())),
            properties=dict(payload.get("properties", {})),
        )
        return WriteNodeOp(node)
    if op_name == DeleteNodeOp.op_name:
        return DeleteNodeOp(int(payload["node_id"]))
    if op_name == WriteRelationshipOp.op_name:
        rel = RelationshipData(
            rel_id=int(payload["rel_id"]),
            rel_type=str(payload["rel_type"]),
            start_node=int(payload["start_node"]),
            end_node=int(payload["end_node"]),
            properties=dict(payload.get("properties", {})),
        )
        return WriteRelationshipOp(rel)
    if op_name == DeleteRelationshipOp.op_name:
        return DeleteRelationshipOp(int(payload["rel_id"]))
    raise WalError(f"unknown store operation {op_name!r} in write-ahead log")


def operations_to_payloads(operations: List[StoreOperation]) -> List[Dict[str, Any]]:
    """Serialise a batch of operations for the write-ahead log."""
    return [operation.to_payload() for operation in operations]


def operations_from_payloads(payloads: List[Mapping[str, Any]]) -> List[StoreOperation]:
    """Deserialise a batch of operations read back from the write-ahead log."""
    return [operation_from_payload(payload) for payload in payloads]
