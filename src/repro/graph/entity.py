"""Logical graph entities.

The storage layer thinks in fixed-size records; everything above it thinks in
the immutable value objects defined here.  ``NodeData`` and
``RelationshipData`` describe the full logical state of an entity at one point
in time — which is exactly what a *version* is under the paper's MVCC scheme,
so the snapshot-isolation layer stores these objects directly in its version
chains.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from repro.graph.properties import PropertyValue


class EntityKind(enum.Enum):
    """The two kinds of versioned entity in the store (paper Section 4)."""

    NODE = "node"
    RELATIONSHIP = "relationship"


class Direction(enum.Enum):
    """Traversal direction relative to a node."""

    OUTGOING = "outgoing"
    INCOMING = "incoming"
    BOTH = "both"

    def matches(self, node_id: int, start_node: int, end_node: int) -> bool:
        """Whether a relationship with the given endpoints matches this direction."""
        if self is Direction.OUTGOING:
            return start_node == node_id
        if self is Direction.INCOMING:
            return end_node == node_id
        return node_id in (start_node, end_node)

    def reverse(self) -> "Direction":
        """The opposite direction (BOTH is its own reverse)."""
        if self is Direction.OUTGOING:
            return Direction.INCOMING
        if self is Direction.INCOMING:
            return Direction.OUTGOING
        return Direction.BOTH


class EntityKey:
    """Globally unique identity of a versioned entity: kind plus id.

    Hand-written rather than a frozen dataclass: these keys index every hot
    read-path dict (the version-store chain cache, snapshot payload caches,
    write sets, SIREAD sets), and the generated dataclass ``__hash__``
    re-hashes an ``(enum, int)`` tuple on every probe.  Here the hash is
    precomputed at construction as a plain int — node ids map to even
    hashes, relationship ids to odd — so each probe costs one slot load.
    Treat instances as immutable values, like the dataclasses around them.
    """

    __slots__ = ("kind", "entity_id", "_hash")

    def __init__(self, kind: EntityKind, entity_id: int) -> None:
        self.kind = kind
        self.entity_id = entity_id
        self._hash = (entity_id << 1) | (kind is EntityKind.RELATIONSHIP)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EntityKey):
            return self.entity_id == other.entity_id and self.kind is other.kind
        return NotImplemented

    def __lt__(self, other: "EntityKey") -> bool:
        return (self.kind, self.entity_id) < (other.kind, other.entity_id)

    def __le__(self, other: "EntityKey") -> bool:
        return (self.kind, self.entity_id) <= (other.kind, other.entity_id)

    def __gt__(self, other: "EntityKey") -> bool:
        return (self.kind, self.entity_id) > (other.kind, other.entity_id)

    def __ge__(self, other: "EntityKey") -> bool:
        return (self.kind, self.entity_id) >= (other.kind, other.entity_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EntityKey(kind={self.kind!r}, entity_id={self.entity_id!r})"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind.value}:{self.entity_id}"

    @staticmethod
    def node(node_id: int) -> "EntityKey":
        """Key for a node id."""
        return EntityKey(EntityKind.NODE, node_id)

    @staticmethod
    def relationship(rel_id: int) -> "EntityKey":
        """Key for a relationship id."""
        return EntityKey(EntityKind.RELATIONSHIP, rel_id)


def _freeze_properties(properties: Mapping[str, PropertyValue]) -> Dict[str, PropertyValue]:
    """Copy a property map, converting mutable arrays to tuples."""
    frozen: Dict[str, PropertyValue] = {}
    for key, value in properties.items():
        if isinstance(value, list):
            frozen[key] = tuple(value)
        else:
            frozen[key] = value
    return frozen


@dataclass(frozen=True)
class NodeData:
    """Immutable logical state of a node."""

    node_id: int
    labels: FrozenSet[str] = frozenset()
    properties: Mapping[str, PropertyValue] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "labels", frozenset(self.labels))
        object.__setattr__(self, "properties", _freeze_properties(self.properties))

    @property
    def key(self) -> EntityKey:
        """Entity key of this node."""
        return EntityKey.node(self.node_id)

    def with_property(self, key: str, value: PropertyValue) -> "NodeData":
        """A copy of this node with one property set."""
        props = dict(self.properties)
        props[key] = value
        return replace(self, properties=props)

    def without_property(self, key: str) -> "NodeData":
        """A copy of this node with one property removed (no-op if absent)."""
        props = dict(self.properties)
        props.pop(key, None)
        return replace(self, properties=props)

    def with_label(self, label: str) -> "NodeData":
        """A copy of this node with one label added."""
        return replace(self, labels=self.labels | {label})

    def without_label(self, label: str) -> "NodeData":
        """A copy of this node with one label removed (no-op if absent)."""
        return replace(self, labels=self.labels - {label})

    def with_properties(self, properties: Mapping[str, PropertyValue]) -> "NodeData":
        """A copy of this node with its property map replaced."""
        return replace(self, properties=dict(properties))


@dataclass(frozen=True)
class RelationshipData:
    """Immutable logical state of a relationship (a directed, typed edge)."""

    rel_id: int
    rel_type: str
    start_node: int
    end_node: int
    properties: Mapping[str, PropertyValue] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "properties", _freeze_properties(self.properties))

    @property
    def key(self) -> EntityKey:
        """Entity key of this relationship."""
        return EntityKey.relationship(self.rel_id)

    def other_node(self, node_id: int) -> int:
        """The endpoint that is not ``node_id``.

        For self-loops the node itself is returned.  Raises ``ValueError`` if
        ``node_id`` is not an endpoint at all.
        """
        if node_id == self.start_node:
            return self.end_node
        if node_id == self.end_node:
            return self.start_node
        raise ValueError(
            f"node {node_id} is not an endpoint of relationship {self.rel_id}"
        )

    def touches(self, node_id: int) -> bool:
        """Whether ``node_id`` is one of this relationship's endpoints."""
        return node_id in (self.start_node, self.end_node)

    def endpoints(self) -> Tuple[int, int]:
        """The ``(start_node, end_node)`` pair."""
        return (self.start_node, self.end_node)

    def with_property(self, key: str, value: PropertyValue) -> "RelationshipData":
        """A copy of this relationship with one property set."""
        props = dict(self.properties)
        props[key] = value
        return replace(self, properties=props)

    def without_property(self, key: str) -> "RelationshipData":
        """A copy of this relationship with one property removed."""
        props = dict(self.properties)
        props.pop(key, None)
        return replace(self, properties=props)

    def with_properties(
        self, properties: Mapping[str, PropertyValue]
    ) -> "RelationshipData":
        """A copy of this relationship with its property map replaced."""
        return replace(self, properties=dict(properties))


#: Either kind of logical entity state.
EntityData = Optional[object]


def entity_key_of(data: object) -> EntityKey:
    """Entity key of a ``NodeData`` or ``RelationshipData`` instance."""
    if isinstance(data, NodeData):
        return data.key
    if isinstance(data, RelationshipData):
        return data.key
    raise TypeError(f"not an entity payload: {type(data).__name__}")
