"""Object cache.

Section 4 of the paper keeps the version lists of nodes and relationships "in
the Object Cache of Neo4j".  This module provides that cache: an LRU map from
:class:`~repro.graph.entity.EntityKey` to an arbitrary cached object (the
committed entity state under read committed, the version chain under snapshot
isolation).

Entries can be *pinned* against eviction.  The MVCC layer pins every entry
whose chain still holds more than the single persisted version, because those
in-memory versions are the only copy (the store only ever has the newest
committed version).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional, Set, Tuple

from repro.graph.entity import EntityKey


@dataclass
class ObjectCacheStats:
    """Counters for cache effectiveness, exposed through database stats."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    inserts: int = 0

    def hit_ratio(self) -> float:
        """Fraction of lookups that found a cached entry."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view of the counters."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "inserts": self.inserts,
            "hit_ratio": self.hit_ratio(),
        }


class ObjectCache:
    """Thread-safe LRU cache keyed by entity key, with pinning."""

    def __init__(
        self,
        capacity: int = 100_000,
        *,
        evictable: Optional[Callable[[EntityKey, Any], bool]] = None,
    ) -> None:
        """Create a cache holding at most ``capacity`` unpinned entries.

        ``evictable`` is an optional predicate consulted before evicting an
        entry; returning ``False`` keeps the entry resident even under
        pressure (the MVCC layer uses this for chains with unflushed
        versions).
        """
        if capacity < 1:
            raise ValueError("object cache capacity must be positive")
        self._capacity = capacity
        self._evictable = evictable
        self._lock = threading.RLock()
        self._entries: "OrderedDict[EntityKey, Any]" = OrderedDict()
        self._pinned: Set[EntityKey] = set()
        self.stats = ObjectCacheStats()

    @property
    def capacity(self) -> int:
        """Maximum number of unpinned resident entries."""
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: EntityKey) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: EntityKey) -> Optional[Any]:
        """Return the cached object for ``key`` or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def peek(self, key: EntityKey) -> Optional[Any]:
        """Lock-free probe: the cached object for ``key`` or ``None``.

        Skips the LRU touch and takes no lock — a plain dict read is atomic
        under CPython, and a probe racing an insert/evict simply observes the
        cache as of one instant.  This is the hot read path of the MVCC
        layer, where a lock per chain lookup would reintroduce exactly the
        reader/writer coordination the version chains exist to remove.  The
        hit counter is updated without the lock (racily — monitoring, not
        logic); a probe miss counts nothing, because every probe-miss caller
        falls back to a locked :meth:`get` that records the miss, and
        counting both would double-report one logical lookup.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        self.stats.hits += 1
        return entry

    def put(self, key: EntityKey, value: Any) -> None:
        """Insert or replace the cached object for ``key``."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self.stats.inserts += 1
            self._evict_if_needed()

    def get_or_create(self, key: EntityKey, factory: Callable[[], Any]) -> Any:
        """Return the cached object, creating it with ``factory`` on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry
            self.stats.misses += 1
            entry = factory()
            self._entries[key] = entry
            self.stats.inserts += 1
            self._evict_if_needed()
            return entry

    def invalidate(self, key: EntityKey) -> None:
        """Drop the entry for ``key`` (no-op if absent)."""
        with self._lock:
            self._entries.pop(key, None)
            self._pinned.discard(key)

    def clear(self) -> None:
        """Drop every entry (pinned ones included)."""
        with self._lock:
            self._entries.clear()
            self._pinned.clear()

    def pin(self, key: EntityKey) -> None:
        """Protect ``key`` from eviction until :meth:`unpin` is called."""
        with self._lock:
            self._pinned.add(key)

    def unpin(self, key: EntityKey) -> None:
        """Allow ``key`` to be evicted again."""
        with self._lock:
            self._pinned.discard(key)

    def pinned_count(self) -> int:
        """Number of pinned entries."""
        with self._lock:
            return len(self._pinned)

    def items(self) -> Iterator[Tuple[EntityKey, Any]]:
        """Snapshot of the cache contents (key, value) pairs."""
        with self._lock:
            return iter(list(self._entries.items()))

    def keys(self) -> Iterator[EntityKey]:
        """Snapshot of the cached keys."""
        with self._lock:
            return iter(list(self._entries.keys()))

    # -- internal -------------------------------------------------------------

    def _evict_if_needed(self) -> None:
        if len(self._entries) <= self._capacity:
            return
        for key in list(self._entries.keys()):
            if len(self._entries) <= self._capacity:
                break
            if key in self._pinned:
                continue
            value = self._entries[key]
            if self._evictable is not None and not self._evictable(key, value):
                continue
            del self._entries[key]
            self.stats.evictions += 1
