"""Write-ahead log.

Commits append a batch of logical store operations (serialised as JSON) to the
log before the operations touch the store files.  On startup the log is
replayed: every committed batch found after the last checkpoint is re-applied,
which makes a crash between "log written" and "stores updated" harmless.

Entry framing (little-endian)::

    magic (1 byte) | type (1 byte) | txn_id (8 bytes) |
    payload length (4 bytes) | payload | crc32 (4 bytes)

The CRC covers type, txn_id and payload.  A torn or corrupt tail entry simply
ends replay — everything before it is still recovered.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import SimulatedCrashError, WalError
from repro.retry import (
    DEFAULT_IO_RETRIES,
    IO_RETRY_BASE_SECONDS,
    IO_RETRY_MAX_SECONDS,
    jittered_backoff,
)

_ENTRY_MAGIC = 0xA5
_HEADER_FORMAT = "<BBqI"
_HEADER_SIZE = struct.calcsize(_HEADER_FORMAT)
_CRC_SIZE = 4


class LogRecordType:
    """Entry types appearing in the write-ahead log."""

    BEGIN = 1
    OPERATION = 2
    COMMIT = 3
    CHECKPOINT = 4


class WriteAheadLog:
    """Append-only logical redo log.

    With ``path=None`` the log lives in memory, which keeps the commit path
    identical (useful for benchmarks) without touching disk.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        *,
        sync_on_commit: bool = True,
        failpoints=None,
        io_retries: int = DEFAULT_IO_RETRIES,
    ) -> None:
        """``failpoints`` is an optional
        :class:`~repro.fault.FailpointRegistry`; when ``None`` (the default)
        the injection sites are dead branches.  ``io_retries`` bounds the
        transient-IO retry loop on the append and truncate paths (the error
        becomes unrecoverable once the budget is spent)."""
        self._path = path
        self._sync_on_commit = sync_on_commit
        self._lock = threading.Lock()
        self._memory_buffer = bytearray()
        self._fd: Optional[int] = None
        self._failpoints = failpoints
        self._io_retry_limit = max(0, io_retries)
        if path is not None:
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._fd = os.open(path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
            self._size = os.fstat(self._fd).st_size
        else:
            self._size = 0
        self.appended_batches = 0
        self.replayed_batches = 0
        self.fsyncs = 0
        self.bytes_appended = 0
        #: Transient IO errors absorbed by the bounded retry loop.
        self.io_retries = 0
        #: Observability bundle (set by the database); when present, the
        #: append path mirrors its counters into the metrics registry.
        self.obs = None

    @property
    def path(self) -> Optional[str]:
        """Log file path (``None`` for an in-memory log)."""
        return self._path

    # -- appending -----------------------------------------------------------

    def append_commit(self, txn_id: int, operation_payloads: List[Dict[str, Any]]) -> None:
        """Durably record one committed batch of logical operations."""
        self.append_commits([(txn_id, operation_payloads)])

    def append_commits(
        self, batches: List[Tuple[int, List[Dict[str, Any]]]]
    ) -> None:
        """Durably record several committed batches with one write and fsync.

        This is the group-commit entry point: each batch keeps its own
        BEGIN/OPERATION/COMMIT framing (replay is unchanged), but the frames
        of all batches are concatenated into a single append and covered by a
        single fsync, amortising the disk round trip across the group.
        """
        if not batches:
            return
        frames: List[bytes] = []
        for txn_id, operation_payloads in batches:
            frames.append(self._frame(LogRecordType.BEGIN, txn_id, b""))
            for payload in operation_payloads:
                encoded = json.dumps(
                    payload, separators=(",", ":"), sort_keys=True
                ).encode("utf-8")
                frames.append(self._frame(LogRecordType.OPERATION, txn_id, encoded))
            frames.append(self._frame(LogRecordType.COMMIT, txn_id, b""))
        data = b"".join(frames)
        with self._lock:
            synced = self._append_durably(data)
            self.appended_batches += len(batches)
            self.bytes_appended += len(data)
        obs = self.obs
        if obs is not None:
            obs.wal_bytes.inc(len(data))
            if synced:
                obs.wal_fsyncs.inc()

    def _append_durably(self, data: bytes) -> bool:
        """Append ``data`` and (optionally) fsync, retrying transient errors.

        Holds the append invariant: when this returns, the log grew by
        exactly ``len(data)`` bytes; when it raises, the log did not grow at
        all — a failed attempt is truncated back to its pre-append size
        before retrying *and* before surfacing the final error, so an
        un-acknowledged commit leaves zero durable trace.  A
        :class:`SimulatedCrashError` is the one exception: it models a power
        cut, so whatever bytes the injected fault persisted stay on disk and
        no repair or retry happens.  Returns whether an fsync was issued.

        Caller must hold ``self._lock``.
        """
        start_size = self._size
        attempt = 0
        while True:
            try:
                self._write_with_injection(data)
                self._size = start_size + len(data)
                if self._sync_on_commit and self._fd is not None:
                    if self._failpoints is not None:
                        fault = self._failpoints.hit("wal.fsync")
                        if fault is not None:
                            fault.raise_fault()
                    os.fsync(self._fd)
                    self.fsyncs += 1
                    return True
                return False
            except SimulatedCrashError:
                raise
            except OSError as exc:
                self._repair_tail(start_size, exc)
                if attempt >= self._io_retry_limit:
                    raise WalError(
                        f"WAL append failed after {attempt + 1} attempt(s): {exc}"
                    ) from exc
                self.io_retries += 1
                obs = self.obs
                if obs is not None:
                    obs.io_retries.inc()
                time.sleep(
                    jittered_backoff(
                        attempt,
                        base_seconds=IO_RETRY_BASE_SECONDS,
                        max_seconds=IO_RETRY_MAX_SECONDS,
                    )
                )
                attempt += 1

    def _write_with_injection(self, data: bytes) -> None:
        """One append attempt, honouring an armed ``wal.append`` failpoint.

        Torn actions persist ``fault.cut(len(data))`` bytes before raising —
        a short write either reported to the caller (``torn``, repairable by
        :meth:`_repair_tail`) or swallowed by a simulated power cut
        (``crash(F)``, left on disk for recovery to skip).
        """
        if self._failpoints is not None:
            fault = self._failpoints.hit("wal.append")
            if fault is not None:
                if fault.is_torn:
                    self._append_bytes(data[: fault.cut(len(data))])
                fault.raise_fault()
        self._append_bytes(data)

    def _repair_tail(self, start_size: int, cause: OSError) -> None:
        """Truncate a failed append back to the pre-append log size.

        If the repair itself fails the log tail is in an unknown state and
        retrying would risk interleaving garbage with real frames — that is
        escalated as an unrecoverable :class:`WalError` immediately.
        """
        try:
            if self._fd is not None:
                os.ftruncate(self._fd, start_size)
                os.lseek(self._fd, 0, os.SEEK_END)
            else:
                del self._memory_buffer[start_size:]
            self._size = start_size
        except OSError as repair_exc:
            raise WalError(
                f"WAL append failed ({cause}) and truncate-back repair "
                f"also failed ({repair_exc}); log tail state unknown"
            ) from repair_exc

    def checkpoint(self) -> None:
        """Mark everything so far as applied and reset the log.

        The caller must flush the store files *before* checkpointing.
        """
        with self._lock:
            attempt = 0
            while True:
                try:
                    if self._failpoints is not None:
                        fault = self._failpoints.hit("wal.truncate")
                        if fault is not None:
                            fault.raise_fault()
                    if self._fd is not None:
                        os.ftruncate(self._fd, 0)
                        os.lseek(self._fd, 0, os.SEEK_SET)
                        os.fsync(self._fd)
                    else:
                        self._memory_buffer.clear()
                    self._size = 0
                    return
                except SimulatedCrashError:
                    raise
                except OSError as exc:
                    if attempt >= self._io_retry_limit:
                        raise WalError(
                            f"WAL truncation failed after {attempt + 1} "
                            f"attempt(s): {exc}"
                        ) from exc
                    self.io_retries += 1
                    obs = self.obs
                    if obs is not None:
                        obs.io_retries.inc()
                    time.sleep(
                        jittered_backoff(
                            attempt,
                            base_seconds=IO_RETRY_BASE_SECONDS,
                            max_seconds=IO_RETRY_MAX_SECONDS,
                        )
                    )
                    attempt += 1

    # -- replay ----------------------------------------------------------------

    def replay(self) -> Iterator[List[Dict[str, Any]]]:
        """Yield the operation payloads of every committed batch, in order.

        Batches without a COMMIT entry (a crash mid-append) are dropped, as is
        anything after the first corrupt entry.
        """
        data = self._read_all()
        offset = 0
        current_ops: List[Dict[str, Any]] = []
        in_batch = False
        while offset < len(data):
            parsed = self._parse_entry(data, offset)
            if parsed is None:
                break
            entry_type, _txn_id, payload, offset = parsed
            if entry_type == LogRecordType.BEGIN:
                current_ops = []
                in_batch = True
            elif entry_type == LogRecordType.OPERATION:
                if in_batch:
                    try:
                        current_ops.append(json.loads(payload.decode("utf-8")))
                    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                        raise WalError(f"corrupt operation payload in log: {exc}") from exc
            elif entry_type == LogRecordType.COMMIT:
                if in_batch:
                    self.replayed_batches += 1
                    yield current_ops
                current_ops = []
                in_batch = False
            elif entry_type == LogRecordType.CHECKPOINT:
                current_ops = []
                in_batch = False

    def entry_count(self) -> int:
        """Number of well-formed entries currently in the log (for tests)."""
        data = self._read_all()
        offset = 0
        count = 0
        while offset < len(data):
            parsed = self._parse_entry(data, offset)
            if parsed is None:
                break
            offset = parsed[3]
            count += 1
        return count

    def size_bytes(self) -> int:
        """Current size of the log in bytes."""
        with self._lock:
            if self._fd is not None:
                return os.fstat(self._fd).st_size
            return len(self._memory_buffer)

    def stats(self) -> Dict[str, Any]:
        """Append-path counters (see ``StoreManager.wal_stats``)."""
        with self._lock:
            return {
                "in_memory": self._path is None,
                "sync_on_commit": self._sync_on_commit,
                "appended_batches": self.appended_batches,
                "replayed_batches": self.replayed_batches,
                "fsyncs": self.fsyncs,
                "bytes_appended": self.bytes_appended,
                "io_retries": self.io_retries,
            }

    def close(self) -> None:
        """Close the log file (in-memory logs keep their buffer for inspection)."""
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    # -- internal -----------------------------------------------------------

    def _frame(self, entry_type: int, txn_id: int, payload: bytes) -> bytes:
        header = struct.pack(_HEADER_FORMAT, _ENTRY_MAGIC, entry_type, txn_id, len(payload))
        crc = zlib.crc32(header[1:] + payload) & 0xFFFFFFFF
        return header + payload + struct.pack("<I", crc)

    def _append_bytes(self, data: bytes) -> None:
        if self._fd is not None:
            os.write(self._fd, data)
        else:
            self._memory_buffer.extend(data)

    def _read_all(self) -> bytes:
        with self._lock:
            if self._fd is not None:
                size = os.fstat(self._fd).st_size
                return os.pread(self._fd, size, 0)
            return bytes(self._memory_buffer)

    def _parse_entry(self, data: bytes, offset: int):
        if offset + _HEADER_SIZE > len(data):
            return None
        magic, entry_type, txn_id, length = struct.unpack_from(_HEADER_FORMAT, data, offset)
        if magic != _ENTRY_MAGIC:
            return None
        end = offset + _HEADER_SIZE + length + _CRC_SIZE
        if end > len(data):
            return None
        payload = data[offset + _HEADER_SIZE:offset + _HEADER_SIZE + length]
        (stored_crc,) = struct.unpack_from("<I", data, offset + _HEADER_SIZE + length)
        expected_crc = (
            zlib.crc32(data[offset + 1:offset + _HEADER_SIZE] + payload) & 0xFFFFFFFF
        )
        if stored_crc != expected_crc:
            return None
        return entry_type, txn_id, payload, end
