"""Declarative query subsystem: a Cypher-subset compiled per transaction.

Four stages, one module each:

* :mod:`repro.query.lexer` + :mod:`repro.query.parser` — tokens and a
  recursive-descent parser producing the typed AST in :mod:`repro.query.ast`,
* :mod:`repro.query.planner` — a cardinality-aware logical planner that picks
  the cheapest start point per ``MATCH`` pattern (property-index seek, label
  scan or all-nodes scan) using the engines' O(1) count fast paths, and
  orders expansions by estimated fan-out,
* :mod:`repro.query.executor` — a pull-based iterator executor whose reads
  all flow through one transaction (one snapshot under snapshot isolation),
  with expand operators built on :mod:`repro.api.traversal`,
* :mod:`repro.query.result` — lazily-pulled records, mutation statistics and
  the ``EXPLAIN`` plan with estimated vs. actual rows.

Use it through ``tx.execute(...)`` / ``db.execute(...)``; this module's
:func:`execute` is the engine-level entry point those wrap.
"""

from __future__ import annotations

import functools
from typing import Mapping, Optional

from repro.query import ast
from repro.query.cache import ParseCache, PlanCache, QueryCaches
from repro.query.parser import parse
from repro.query.planner import Plan, PlannerStatistics, plan_query
from repro.query.result import QueryResult, QueryStatistics, Record


@functools.lru_cache(maxsize=512)
def parse_cached(text: str) -> ast.Query:
    """Parse with a process-wide cache (ASTs are immutable and shareable).

    Fallback for engines without a per-database :class:`QueryCaches` bundle
    (bare engine objects constructed in tests); databases opened through
    :class:`repro.api.database.GraphDatabase` use their engine's own
    size-configurable parse cache instead.
    """
    return parse(text)


def is_read_only_query(engine, text: str) -> bool:
    """Whether ``text`` performs no writes (``EXPLAIN`` counts as read-only).

    Used by :meth:`repro.api.database.GraphDatabase.execute` to open
    read-only transactions for pure-read statements — which matters under
    serializable isolation, where read-only transactions skip SIREAD
    registration entirely and can never abort.  Parses through the engine's
    parse cache, so the subsequent execution reuses the cached AST.  A query
    that does not parse is reported read-write: the caller's normal
    execution path then raises the syntax error with its usual semantics.
    """
    from repro.errors import QueryError

    caches: Optional[QueryCaches] = getattr(engine, "query_caches", None)
    try:
        if caches is not None:
            query = caches.parse.parse(text)
        else:
            query = parse_cached(text)
    except QueryError:
        return False
    return query.explain or not query.has_writes


def execute(tx, engine, text: str,
            parameters: Optional[Mapping[str, object]] = None) -> QueryResult:
    """Parse, plan and execute one query inside ``tx``.

    ``tx`` is the user-facing :class:`repro.api.transaction.Transaction`;
    ``engine`` the :class:`repro.engine.GraphEngine` behind it (the planner
    reads its cardinality counters).  Read-only queries return a lazy result;
    write queries and ``PROFILE`` are drained before returning.  ``EXPLAIN``
    only plans — it never executes, so it is always safe on a write query.

    Plans are reused through the engine's plan cache, keyed on ``(query
    text, cardinality epoch, provided parameter names)``: when the engine's
    statistics drift enough to bump the epoch, the stale entries silently
    miss and the query is re-planned against fresh counts.  ``EXPLAIN`` and
    ``PROFILE`` always plan fresh — their per-operator actual/estimated row
    counts must describe exactly this execution, not a cached tree being
    raced by other executions.
    """
    from repro.query.executor import ExecutionContext, run_plan

    params = dict(parameters or {})
    caches: Optional[QueryCaches] = getattr(engine, "query_caches", None)
    if caches is not None:
        query = caches.parse.parse(text)
    else:
        query = parse_cached(text)
    plan_key = None
    plan: Optional[Plan] = None
    if (
        caches is not None
        and not query.explain
        and not query.profile
        and hasattr(engine, "cardinality_epoch")
    ):
        plan_key = PlanCache.key(text, engine.cardinality_epoch(), params)
        plan = caches.plan.get(plan_key)
    if plan is None:
        plan = plan_query(query, PlannerStatistics(engine), params)
        if plan_key is not None:
            caches.plan.put(plan_key, plan)
    context = ExecutionContext(tx, params, QueryStatistics())
    if query.explain:
        return QueryResult(plan.columns, iter(()), context.stats, plan=plan)
    rows = run_plan(plan, context)
    result = QueryResult(
        plan.columns, rows, context.stats,
        plan=plan if query.profile else None,
    )
    if query.has_writes or query.profile:
        # Writes are eager (Cypher semantics) and PROFILE needs the actual
        # row counts, so both drain the pipeline before returning.
        result.consume()
    return result


__all__ = [
    "ParseCache",
    "Plan",
    "PlanCache",
    "PlannerStatistics",
    "QueryCaches",
    "QueryResult",
    "QueryStatistics",
    "Record",
    "execute",
    "is_read_only_query",
    "parse",
    "parse_cached",
    "plan_query",
]
