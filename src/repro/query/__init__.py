"""Declarative query subsystem: a Cypher-subset compiled per transaction.

Four stages, one module each:

* :mod:`repro.query.lexer` + :mod:`repro.query.parser` — tokens and a
  recursive-descent parser producing the typed AST in :mod:`repro.query.ast`,
* :mod:`repro.query.planner` — a cardinality-aware logical planner that picks
  the cheapest start point per ``MATCH`` pattern (property-index seek, label
  scan or all-nodes scan) using the engines' O(1) count fast paths, and
  orders expansions by estimated fan-out,
* :mod:`repro.query.executor` + :mod:`repro.query.vectorized` — two
  operator runtimes over the same plans: the reference pull-based row
  executor and the default vectorized batch executor (columnar
  :class:`~repro.query.vectorized.RowBatch` pipelines with batched reads
  and optional morsel-parallel scans).  All reads flow through one
  transaction (one snapshot under snapshot isolation), with expand
  operators built on :mod:`repro.api.traversal`,
* :mod:`repro.query.result` — lazily-pulled records, mutation statistics and
  the ``EXPLAIN`` plan with estimated vs. actual rows.

Use it through ``tx.execute(...)`` / ``db.execute(...)``; this module's
:func:`execute` is the engine-level entry point those wrap.
"""

from __future__ import annotations

import functools
from typing import Mapping, Optional

from repro.query import ast
from repro.query.cache import ParseCache, PlanCache, QueryCaches
from repro.query.parser import parse
from repro.query.planner import Plan, PlannerStatistics, plan_query
from repro.query.result import QueryResult, QueryStatistics, Record


@functools.lru_cache(maxsize=512)
def parse_cached(text: str) -> ast.Query:
    """Parse with a process-wide cache (ASTs are immutable and shareable).

    Fallback for engines without a per-database :class:`QueryCaches` bundle
    (bare engine objects constructed in tests); databases opened through
    :class:`repro.api.database.GraphDatabase` use their engine's own
    size-configurable parse cache instead.
    """
    return parse(text)


def is_read_only_query(engine, text: str) -> bool:
    """Whether ``text`` performs no writes (``EXPLAIN`` counts as read-only).

    Used by :meth:`repro.api.database.GraphDatabase.execute` to open
    read-only transactions for pure-read statements — which matters under
    serializable isolation, where read-only transactions skip SIREAD
    registration entirely and can never abort.  Parses through the engine's
    parse cache, so the subsequent execution reuses the cached AST.  A query
    that does not parse is reported read-write: the caller's normal
    execution path then raises the syntax error with its usual semantics.
    """
    from repro.errors import QueryError

    caches: Optional[QueryCaches] = getattr(engine, "query_caches", None)
    try:
        if caches is not None:
            query = caches.parse.parse(text)
        else:
            query = parse_cached(text)
    except QueryError:
        return False
    return query.explain or not query.has_writes


def execute(tx, engine, text: str,
            parameters: Optional[Mapping[str, object]] = None) -> QueryResult:
    """Parse, plan and execute one query inside ``tx``.

    ``tx`` is the user-facing :class:`repro.api.transaction.Transaction`;
    ``engine`` the :class:`repro.engine.GraphEngine` behind it (the planner
    reads its cardinality counters).  Read-only queries return a lazy result;
    write queries and ``PROFILE`` are drained before returning.  ``EXPLAIN``
    only plans — it never executes, so it is always safe on a write query.

    Plans are reused through the engine's plan cache, keyed on ``(query
    text, cardinality epoch, provided parameter names)``: when the engine's
    statistics drift enough to bump the epoch, the stale entries silently
    miss and the query is re-planned against fresh counts.  ``EXPLAIN`` and
    ``PROFILE`` always plan fresh — their per-operator actual/estimated row
    counts must describe exactly this execution, not a cached tree being
    raced by other executions.

    Every execution reports into the engine's observability bundle: wall
    time (parse to last pulled row) and produced rows go to the metrics
    registry, plan-cache hits/misses to first-class counters, and
    executions above the slow-query threshold — statement text, parameters,
    rendered plan, snapshot timestamp — to the slow-query log.  Lazy
    results are finalised when their row stream is exhausted or closed, so
    the recorded duration covers the whole pull, not just planning.
    """
    from time import perf_counter

    from repro.query.executor import ExecutionContext, run_plan

    started = perf_counter()
    obs = getattr(engine, "obs", None)
    params = dict(parameters or {})
    caches: Optional[QueryCaches] = getattr(engine, "query_caches", None)
    if caches is not None:
        query = caches.parse.parse(text)
    else:
        query = parse_cached(text)
    plan_key = None
    plan: Optional[Plan] = None
    if (
        caches is not None
        and not query.explain
        and not query.profile
        and hasattr(engine, "cardinality_epoch")
    ):
        plan_key = PlanCache.key(text, engine.cardinality_epoch(), params)
        plan = caches.plan.get(plan_key)
        if obs is not None:
            (obs.plan_cache_hits if plan is not None else obs.plan_cache_misses).inc()
    if plan is None:
        plan = plan_query(query, PlannerStatistics(engine), params)
        if plan_key is not None:
            caches.plan.put(plan_key, plan)
    context = ExecutionContext(
        tx, params, QueryStatistics(), timed=query.profile,
        executor=getattr(engine, "query_executor", "batch"),
        batch_size=getattr(engine, "query_batch_size", 1024),
        morsel_workers=getattr(engine, "morsel_workers", 0),
        obs=obs,
    )
    if query.explain:
        return QueryResult(plan.columns, iter(()), context.stats, plan=plan)
    rows = run_plan(plan, context)
    if obs is not None:
        rows = _observed_rows(
            rows, obs, tx, query, text, params, plan, started
        )
    result = QueryResult(
        plan.columns, rows, context.stats,
        plan=plan if query.profile else None,
    )
    if query.has_writes or query.profile:
        # Writes are eager (Cypher semantics) and PROFILE needs the actual
        # row counts, so both drain the pipeline before returning.
        result.consume()
    return result


def _observed_rows(rows, obs, tx, query, text, params, plan, started):
    """Wrap a row stream so its completion reports to the observability bundle.

    The wall time and row count are recorded when the stream is exhausted,
    closed, or garbage-collected — for eager (write/``PROFILE``) queries
    that happens inside :func:`execute` itself; a lazy read result reports
    when its consumer finishes pulling.  The slow-query plan text is only
    rendered for executions that crossed the threshold.
    """
    from time import perf_counter

    produced = 0
    outcome = "ok"
    try:
        for row in rows:
            produced += 1
            yield row
    except BaseException:
        outcome = "error"
        raise
    finally:
        seconds = perf_counter() - started
        obs.query_seconds.observe(seconds)
        if produced:
            obs.query_rows.inc(produced)
        kind = "write" if query.has_writes else "read"
        obs.queries.labels(kind=kind if outcome == "ok" else "error").inc()
        slowlog = obs.slow_queries
        threshold = slowlog.threshold_seconds
        if threshold is not None and seconds >= threshold:
            inner = getattr(tx, "_txn", None)
            slowlog.observe(
                text,
                params,
                seconds,
                rows=produced,
                plan=plan.render(),
                snapshot_ts=getattr(inner, "start_ts", None),
                read_only=not query.has_writes,
            )


__all__ = [
    "ParseCache",
    "Plan",
    "PlanCache",
    "PlannerStatistics",
    "QueryCaches",
    "QueryResult",
    "QueryStatistics",
    "Record",
    "execute",
    "is_read_only_query",
    "parse",
    "parse_cached",
    "plan_query",
]
