"""Typed abstract syntax tree for the Cypher-subset query language.

The parser (:mod:`repro.query.parser`) produces exactly these nodes and the
planner (:mod:`repro.query.planner`) consumes them; nothing downstream ever
looks at query text again.  Every node is a frozen dataclass so plans can be
cached and shared between executions without defensive copying.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    """A constant: int, float, str, bool or ``None`` (Cypher ``null``)."""

    value: object


@dataclass(frozen=True)
class Parameter:
    """A ``$name`` placeholder bound at execution time."""

    name: str


@dataclass(frozen=True)
class Variable:
    """A reference to a bound pattern variable or projection alias."""

    name: str


@dataclass(frozen=True)
class PropertyAccess:
    """``variable.key`` — a property read on a bound entity."""

    entity: "Expression"
    key: str


@dataclass(frozen=True)
class ListLiteral:
    """``[e1, e2, ...]``."""

    items: Tuple["Expression", ...]


@dataclass(frozen=True)
class Comparison:
    """A binary predicate: ``=``, ``<>``, ``<``, ``<=``, ``>``, ``>=``,
    ``IN``, ``STARTS WITH``, ``ENDS WITH``, ``CONTAINS``."""

    op: str
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class IsNull:
    """``expr IS NULL`` / ``expr IS NOT NULL``."""

    operand: "Expression"
    negated: bool = False


@dataclass(frozen=True)
class BooleanOp:
    """``AND`` / ``OR`` over two or more operands."""

    op: str
    operands: Tuple["Expression", ...]


@dataclass(frozen=True)
class Not:
    """``NOT expr``."""

    operand: "Expression"


@dataclass(frozen=True)
class Arithmetic:
    """``+ - * / %`` over two operands."""

    op: str
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class Negate:
    """Unary minus."""

    operand: "Expression"


@dataclass(frozen=True)
class FunctionCall:
    """A function or aggregate call.

    Scalar functions: ``id``, ``labels``, ``type``, ``size``, ``coalesce``.
    Aggregates: ``count``, ``sum``, ``min``, ``max``, ``avg``, ``collect``.
    ``count(*)`` is represented with ``star=True`` and no arguments.
    """

    name: str
    args: Tuple["Expression", ...] = ()
    distinct: bool = False
    star: bool = False


Expression = Union[
    Literal,
    Parameter,
    Variable,
    PropertyAccess,
    ListLiteral,
    Comparison,
    IsNull,
    BooleanOp,
    Not,
    Arithmetic,
    Negate,
    FunctionCall,
]

#: Aggregate function names (lower-cased).
AGGREGATE_FUNCTIONS = frozenset({"count", "sum", "min", "max", "avg", "collect"})


def render_expression(expression: Expression) -> str:
    """A canonical textual form of an expression (aliases, EXPLAIN details)."""
    if isinstance(expression, Literal):
        if expression.value is None:
            return "null"
        if isinstance(expression.value, bool):
            return "true" if expression.value else "false"
        if isinstance(expression.value, str):
            return repr(expression.value)
        return str(expression.value)
    if isinstance(expression, Parameter):
        return f"${expression.name}"
    if isinstance(expression, Variable):
        return expression.name
    if isinstance(expression, PropertyAccess):
        return f"{render_expression(expression.entity)}.{expression.key}"
    if isinstance(expression, ListLiteral):
        return "[" + ", ".join(render_expression(item) for item in expression.items) + "]"
    if isinstance(expression, Comparison):
        return (
            f"{render_expression(expression.left)} {expression.op} "
            f"{render_expression(expression.right)}"
        )
    if isinstance(expression, IsNull):
        suffix = "IS NOT NULL" if expression.negated else "IS NULL"
        return f"{render_expression(expression.operand)} {suffix}"
    if isinstance(expression, BooleanOp):
        joiner = f" {expression.op} "
        return "(" + joiner.join(render_expression(op) for op in expression.operands) + ")"
    if isinstance(expression, Not):
        return f"NOT {render_expression(expression.operand)}"
    if isinstance(expression, Arithmetic):
        return (
            f"{render_expression(expression.left)} {expression.op} "
            f"{render_expression(expression.right)}"
        )
    if isinstance(expression, Negate):
        return f"-{render_expression(expression.operand)}"
    if isinstance(expression, FunctionCall):
        if expression.star:
            return f"{expression.name}(*)"
        inner = ", ".join(render_expression(arg) for arg in expression.args)
        if expression.distinct:
            inner = f"DISTINCT {inner}"
        return f"{expression.name}({inner})"
    return repr(expression)


def contains_aggregate(expression: Expression) -> bool:
    """Whether the expression tree contains an aggregate call."""
    if isinstance(expression, FunctionCall):
        if expression.name in AGGREGATE_FUNCTIONS:
            return True
        return any(contains_aggregate(arg) for arg in expression.args)
    if isinstance(expression, (Comparison, Arithmetic)):
        return contains_aggregate(expression.left) or contains_aggregate(expression.right)
    if isinstance(expression, BooleanOp):
        return any(contains_aggregate(operand) for operand in expression.operands)
    if isinstance(expression, (Not, Negate)):
        return contains_aggregate(expression.operand)
    if isinstance(expression, IsNull):
        return contains_aggregate(expression.operand)
    if isinstance(expression, PropertyAccess):
        return contains_aggregate(expression.entity)
    if isinstance(expression, ListLiteral):
        return any(contains_aggregate(item) for item in expression.items)
    return False


# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodePattern:
    """``(variable:Label1:Label2 {key: expr, ...})`` — all parts optional."""

    variable: Optional[str] = None
    labels: Tuple[str, ...] = ()
    properties: Tuple[Tuple[str, Expression], ...] = ()


@dataclass(frozen=True)
class RelPattern:
    """``-[variable:TYPE1|TYPE2 *min..max {key: expr}]->`` and friends.

    ``direction`` is ``"OUT"`` (``-...->``), ``"IN"`` (``<-...-``) or
    ``"BOTH"`` (``-...-``).  A fixed single hop has ``min_hops == max_hops
    == 1`` and ``var_length=False``; a variable-length pattern binds its
    variable to the *list* of traversed relationships.
    """

    variable: Optional[str] = None
    types: Tuple[str, ...] = ()
    properties: Tuple[Tuple[str, Expression], ...] = ()
    direction: str = "BOTH"
    min_hops: int = 1
    max_hops: Optional[int] = 1
    var_length: bool = False


@dataclass(frozen=True)
class PathPattern:
    """An alternating chain: ``nodes[0] rels[0] nodes[1] rels[1] ...``."""

    nodes: Tuple[NodePattern, ...]
    rels: Tuple[RelPattern, ...] = ()


# ---------------------------------------------------------------------------
# Clauses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MatchClause:
    """``MATCH pattern, pattern [WHERE expr]``."""

    patterns: Tuple[PathPattern, ...]
    where: Optional[Expression] = None


@dataclass(frozen=True)
class CreateClause:
    """``CREATE pattern, pattern``."""

    patterns: Tuple[PathPattern, ...]


@dataclass(frozen=True)
class SetProperty:
    """``SET variable.key = expr`` (``= null`` removes the property)."""

    variable: str
    key: str
    value: Expression


@dataclass(frozen=True)
class SetLabels:
    """``SET variable:Label1:Label2``."""

    variable: str
    labels: Tuple[str, ...]


@dataclass(frozen=True)
class SetClause:
    """``SET item, item``."""

    items: Tuple[Union[SetProperty, SetLabels], ...]


@dataclass(frozen=True)
class DeleteClause:
    """``[DETACH] DELETE variable, variable``."""

    variables: Tuple[str, ...]
    detach: bool = False


@dataclass(frozen=True)
class ReturnItem:
    """One projection: ``expression [AS alias]``."""

    expression: Expression
    alias: str


@dataclass(frozen=True)
class OrderItem:
    """One ``ORDER BY`` key with its direction."""

    expression: Expression
    ascending: bool = True


@dataclass(frozen=True)
class ProjectionClause:
    """``RETURN`` or ``WITH``: items plus the trailing sub-clauses.

    ``WITH`` may carry a ``WHERE`` (applied after the projection, Cypher
    semantics); ``RETURN`` never does.
    """

    items: Tuple[ReturnItem, ...]
    distinct: bool = False
    order_by: Tuple[OrderItem, ...] = ()
    skip: Optional[Expression] = None
    limit: Optional[Expression] = None
    where: Optional[Expression] = None
    is_return: bool = True


Clause = Union[MatchClause, CreateClause, SetClause, DeleteClause, ProjectionClause]


@dataclass(frozen=True)
class Query:
    """A whole query: ordered clauses plus the ``EXPLAIN``/``PROFILE`` mode.

    ``EXPLAIN`` plans without executing (Cypher semantics — it must never
    mutate the graph); ``PROFILE`` executes and records actual row counts.
    """

    clauses: Tuple[Clause, ...]
    explain: bool = False
    profile: bool = False

    @property
    def has_writes(self) -> bool:
        """Whether any clause mutates the graph (forces eager execution)."""
        return any(
            isinstance(clause, (CreateClause, SetClause, DeleteClause))
            for clause in self.clauses
        )
