"""Tokeniser for the Cypher-subset query language.

Hand-written single-pass scanner.  Keywords are case-insensitive (matching
Cypher); identifiers, string literals and parameter names keep their case.
Multi-character operators (``<=``, ``>=``, ``<>``, ``..``, ``->``, ``<-``)
are fused here *except* the pattern arrows: ``-`` ``>`` and ``<`` ``-`` are
left as single-character tokens because ``a < -1`` must stay an arithmetic
comparison — the parser fuses arrows only inside pattern context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import QuerySyntaxError

#: Reserved words, stored upper-case.
KEYWORDS = frozenset(
    {
        "MATCH", "WHERE", "RETURN", "WITH", "AS", "DISTINCT", "ORDER", "BY",
        "ASC", "DESC", "SKIP", "LIMIT", "CREATE", "SET", "DELETE", "DETACH",
        "AND", "OR", "NOT", "IN", "STARTS", "ENDS", "CONTAINS", "IS",
        "TRUE", "FALSE", "NULL", "EXPLAIN", "PROFILE",
    }
)

#: Token kinds produced by the lexer.
IDENT = "IDENT"
KEYWORD = "KEYWORD"
INTEGER = "INTEGER"
FLOAT = "FLOAT"
STRING = "STRING"
PARAMETER = "PARAMETER"
PUNCT = "PUNCT"
EOF = "EOF"

#: Two-character punctuation fused by the lexer (longest match first).
_TWO_CHAR = ("<=", ">=", "<>", "..", "+=")

#: Single-character punctuation.
_ONE_CHAR = "()[]{}:,.|*+-/%<>=^"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source offset (for error messages)."""

    kind: str
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        """Whether this token is the given keyword (case-insensitive)."""
        return self.kind == KEYWORD and self.text.upper() == word

    def is_punct(self, text: str) -> bool:
        """Whether this token is the given punctuation."""
        return self.kind == PUNCT and self.text == text


def tokenize(text: str) -> List[Token]:
    """Tokenise a query string; raises :class:`QuerySyntaxError` on bad input."""
    tokens: List[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char == "/" and text[index : index + 2] == "//":
            newline = text.find("\n", index)
            index = length if newline < 0 else newline + 1
            continue
        if char.isdigit():
            index = _scan_number(text, index, tokens)
            continue
        if char == "'" or char == '"':
            index = _scan_string(text, index, tokens)
            continue
        if char == "$":
            index = _scan_parameter(text, index, tokens)
            continue
        if char == "`":
            index = _scan_quoted_identifier(text, index, tokens)
            continue
        if char.isalpha() or char == "_":
            index = _scan_word(text, index, tokens)
            continue
        two = text[index : index + 2]
        if two in _TWO_CHAR:
            tokens.append(Token(PUNCT, two, index))
            index += 2
            continue
        if char in _ONE_CHAR:
            tokens.append(Token(PUNCT, char, index))
            index += 1
            continue
        raise QuerySyntaxError(f"unexpected character {char!r}", index)
    tokens.append(Token(EOF, "", length))
    return tokens


def _scan_number(text: str, index: int, tokens: List[Token]) -> int:
    start = index
    length = len(text)
    while index < length and text[index].isdigit():
        index += 1
    is_float = False
    # A '.' continues the number only when followed by a digit, so the
    # var-length range token `1..3` lexes as INTEGER '..' INTEGER.
    if index + 1 < length and text[index] == "." and text[index + 1].isdigit():
        is_float = True
        index += 1
        while index < length and text[index].isdigit():
            index += 1
    if index < length and text[index] in "eE":
        peek = index + 1
        if peek < length and text[peek] in "+-":
            peek += 1
        if peek < length and text[peek].isdigit():
            is_float = True
            index = peek
            while index < length and text[index].isdigit():
                index += 1
    kind = FLOAT if is_float else INTEGER
    tokens.append(Token(kind, text[start:index], start))
    return index


def _scan_string(text: str, index: int, tokens: List[Token]) -> int:
    quote = text[index]
    start = index
    index += 1
    parts: List[str] = []
    length = len(text)
    while index < length:
        char = text[index]
        if char == "\\":
            if index + 1 >= length:
                break
            escape = text[index + 1]
            parts.append({"n": "\n", "t": "\t", "\\": "\\", quote: quote}.get(escape, escape))
            index += 2
            continue
        if char == quote:
            tokens.append(Token(STRING, "".join(parts), start))
            return index + 1
        parts.append(char)
        index += 1
    raise QuerySyntaxError("unterminated string literal", start)


def _scan_parameter(text: str, index: int, tokens: List[Token]) -> int:
    start = index
    index += 1
    word_start = index
    length = len(text)
    while index < length and (text[index].isalnum() or text[index] == "_"):
        index += 1
    if index == word_start:
        raise QuerySyntaxError("'$' must be followed by a parameter name", start)
    tokens.append(Token(PARAMETER, text[word_start:index], start))
    return index


def _scan_quoted_identifier(text: str, index: int, tokens: List[Token]) -> int:
    start = index
    end = text.find("`", index + 1)
    if end < 0:
        raise QuerySyntaxError("unterminated backtick identifier", start)
    tokens.append(Token(IDENT, text[index + 1 : end], start))
    return end + 1


def _scan_word(text: str, index: int, tokens: List[Token]) -> int:
    start = index
    length = len(text)
    while index < length and (text[index].isalnum() or text[index] == "_"):
        index += 1
    word = text[start:index]
    if word.upper() in KEYWORDS:
        # Keywords keep their original spelling: in name positions (labels,
        # relationship types, property keys) they are plain identifiers.
        tokens.append(Token(KEYWORD, word, start))
    else:
        tokens.append(Token(IDENT, word, start))
    return index


class TokenStream:
    """Cursor over the token list with the lookahead helpers parsers need."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    @property
    def current(self) -> Token:
        """The token at the cursor."""
        return self._tokens[self._index]

    def peek(self, offset: int = 1) -> Token:
        """The token ``offset`` places past the cursor (EOF-saturating)."""
        target = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[target]

    def advance(self) -> Token:
        """Consume and return the current token."""
        token = self._tokens[self._index]
        if token.kind != EOF:
            self._index += 1
        return token

    def accept_keyword(self, word: str) -> Optional[Token]:
        """Consume the keyword if present, else return ``None``."""
        if self.current.is_keyword(word):
            return self.advance()
        return None

    def expect_keyword(self, word: str) -> Token:
        """Consume the keyword or raise."""
        if not self.current.is_keyword(word):
            raise QuerySyntaxError(
                f"expected {word}, found {self._describe(self.current)}",
                self.current.position,
            )
        return self.advance()

    def accept_punct(self, text: str) -> Optional[Token]:
        """Consume the punctuation if present, else return ``None``."""
        if self.current.is_punct(text):
            return self.advance()
        return None

    def expect_punct(self, text: str) -> Token:
        """Consume the punctuation or raise."""
        if not self.current.is_punct(text):
            raise QuerySyntaxError(
                f"expected {text!r}, found {self._describe(self.current)}",
                self.current.position,
            )
        return self.advance()

    def expect_identifier(self, what: str = "identifier") -> Token:
        """Consume an identifier (keywords are not identifiers) or raise."""
        if self.current.kind != IDENT:
            raise QuerySyntaxError(
                f"expected {what}, found {self._describe(self.current)}",
                self.current.position,
            )
        return self.advance()

    def expect_name(self, what: str = "name") -> Token:
        """Consume a *name* — an identifier or a keyword used as one.

        Labels, relationship types and property keys live in their own
        namespaces, so Cypher allows reserved words there (``-[:IN]->``,
        ``{limit: 3}``); the token keeps its original spelling.
        """
        if self.current.kind not in (IDENT, KEYWORD):
            raise QuerySyntaxError(
                f"expected {what}, found {self._describe(self.current)}",
                self.current.position,
            )
        return self.advance()

    def at_end(self) -> bool:
        """Whether the cursor is at EOF."""
        return self.current.kind == EOF

    def error(self, message: str) -> QuerySyntaxError:
        """A syntax error anchored at the current token."""
        return QuerySyntaxError(
            f"{message}, found {self._describe(self.current)}",
            self.current.position,
        )

    @staticmethod
    def _describe(token: Token) -> str:
        if token.kind == EOF:
            return "end of query"
        return f"{token.text!r}"
